"""Rule pack 9 — value-range analysis (WIRE004 / RANGE001 / RANGE002).

These rules sit on top of the interval abstract interpreter in
:mod:`.ranges`, which upgrades the constant-folding wire checks from
"this literal fits" to "every value that can reach this field provably
fits":

=========  =========================================================
WIRE004    a value whose *proven* interval exceeds the declared
           ``*_BITS`` field width (or admits a negative value) can
           reach a ``BitWriter.write`` call.  Complements WIRE001:
           sites whose value bound is in WIRE001's literal domain
           (folded constants, ``x & MASK``) are skipped here, so each
           overflow is reported by exactly one rule.
RANGE001   a ``WindowRange`` partition built from a bounds list whose
           invariants — first bound 0, last bound ``len(plan)``,
           monotone interior bounds — cannot be proven, i.e. the
           partition is not provably contiguous, non-overlapping and
           plan-covering.
RANGE002   arithmetic hazards in identifier-draw / estimator code
           (``core``/``flow`` packages): a divisor or modulus whose
           proven interval contains zero, a provably negative shift
           amount, a possibly-empty ``randrange`` span, and modulo
           bias when a known-span draw is reduced by a non-divisor
           modulus.
=========  =========================================================

All three rules under-approximate: a chain the interpreter cannot
resolve evaluates to TOP, and TOP never fires a finding.  Suppression
comments, the baseline, and SARIF export apply exactly as for every
other pack.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .constfold import fold_int
from .core import Finding, ProjectRule, register_project
from .ranges import (
    _MAX_SHIFT,
    Env,
    FunctionAnalysis,
    Interval,
    engine_for,
)
from .symbols import FunctionInfo, FunctionNode, ProjectContext
from .wire_rules import _bitwriter_names, _value_upper_bound, _write_calls

__all__ = [
    "DrawHazardRule",
    "PartitionInvariantRule",
    "ProvenFieldOverflowRule",
]

_PACK_ANCHOR = "pack-9--value-range-analysis-range"


@register_project
class ProvenFieldOverflowRule(ProjectRule):
    rule_id = "WIRE004"
    description = (
        "BitWriter.write() reachable by a value whose proven interval "
        "exceeds the declared field width"
    )
    help_anchor = _PACK_ANCHOR

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        engine = engine_for(project)
        for info in project.functions():
            module = project.modules[info.module]
            writers = _bitwriter_names(info.node)
            if not writers:
                continue
            analysis = engine.analysis_for(info)
            for call, method in _write_calls(info.node, writers):
                if method != "write" or len(call.args) != 2:
                    continue
                if analysis.env_at(call.args[0]) is None:
                    continue  # inside a nested def this pass never ran
                constants = module.ctx.constants
                if (
                    _value_upper_bound(call.args[0], constants) is not None
                    and fold_int(call.args[1], constants) is not None
                ):
                    # WIRE001 decides this site (it needs both the value
                    # bound and the width in its literal domain); each
                    # overflow is reported by exactly one rule.
                    continue
                width = analysis.interval_at(call.args[1]).point_value
                if width is None or not 0 < width <= _MAX_SHIFT:
                    continue
                value = analysis.interval_at(call.args[0])
                field_max = (1 << width) - 1
                if value.hi is not None and value.hi > field_max:
                    yield self.finding(
                        project,
                        module.ctx.display_path,
                        call,
                        f"value has proven range {value}, whose maximum "
                        f"{value.hi} does not fit the declared {width}-bit "
                        f"field (max {field_max})",
                    )
                elif value.lo is not None and value.lo < 0:
                    yield self.finding(
                        project,
                        module.ctx.display_path,
                        call,
                        f"value has proven range {value} and can be "
                        f"negative, which no {width}-bit field encodes",
                    )


# ----------------------------------------------------------------------
# RANGE001 — partition invariants
# ----------------------------------------------------------------------
def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _const_int(expr: Optional[ast.expr]) -> Optional[int]:
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
        and isinstance(expr.operand.value, int)
    ):
        return -expr.operand.value
    return None


def _is_adjacent_zip(iterator: ast.expr) -> Optional[str]:
    """The bounds-list name when ``iterator`` is ``zip(B[:-1], B[1:])``."""
    if not (
        isinstance(iterator, ast.Call)
        and isinstance(iterator.func, ast.Name)
        and iterator.func.id == "zip"
        and len(iterator.args) == 2
        and not iterator.keywords
    ):
        return None
    names: List[str] = []
    for sub, is_prefix in ((iterator.args[0], True), (iterator.args[1], False)):
        if not (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and isinstance(sub.slice, ast.Slice)
            and sub.slice.step is None
        ):
            return None
        if is_prefix:
            ok = sub.slice.lower is None and _const_int(sub.slice.upper) == -1
        else:
            ok = _const_int(sub.slice.lower) == 1 and sub.slice.upper is None
        if not ok:
            return None
        names.append(sub.value.id)
    if names[0] != names[1]:
        return None
    return names[0]


def _match_partition_comp(comp: ast.ListComp) -> Optional[str]:
    """Bounds-list name of a ``WindowRange``-over-adjacent-pairs comp.

    Matches ``[WindowRange(lo=a, hi=b, ...) for a, b in
    zip(B[:-1], B[1:])]`` (``lo``/``hi`` positionally or by keyword)
    and returns ``B``; anything else returns ``None``.
    """
    if len(comp.generators) != 1:
        return None
    generator = comp.generators[0]
    if generator.is_async or generator.ifs:
        return None
    bounds = _is_adjacent_zip(generator.iter)
    if bounds is None:
        return None
    target = generator.target
    if not (isinstance(target, ast.Tuple) and len(target.elts) == 2):
        return None
    lo_elt, hi_elt = target.elts
    if not (isinstance(lo_elt, ast.Name) and isinstance(hi_elt, ast.Name)):
        return None
    call = comp.elt
    if not (
        isinstance(call, ast.Call) and _callee_name(call.func) == "WindowRange"
    ):
        return None
    bound_args: Dict[str, Optional[str]] = {"lo": None, "hi": None}
    for index, arg in enumerate(call.args):
        if index < 2 and isinstance(arg, ast.Name):
            bound_args["lo" if index == 0 else "hi"] = arg.id
    for keyword in call.keywords:
        if keyword.arg in bound_args and isinstance(keyword.value, ast.Name):
            bound_args[keyword.arg] = keyword.value.id
    if bound_args["lo"] != lo_elt.id or bound_args["hi"] != hi_elt.id:
        return None
    return bounds


def _param_set(info: FunctionInfo) -> Set[str]:
    arguments = info.node.args
    return {
        arg.arg
        for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
    }


def _single_assign(node: FunctionNode, name: str) -> Optional[ast.expr]:
    """The sole ``name = <expr>`` value in ``node``, if unique."""
    found: List[ast.expr] = []
    for stmt in ast.walk(node):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        ):
            found.append(stmt.value)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == name:
                return None
    if len(found) != 1:
        return None
    return found[0]


def _is_plan_length(expr: ast.expr, info: FunctionInfo, params: Set[str]) -> bool:
    """``expr`` provably equals ``len(<parameter>)`` of this function."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "len"
        and len(expr.args) == 1
        and not expr.keywords
        and isinstance(expr.args[0], ast.Name)
        and expr.args[0].id in params
    ):
        return True
    if isinstance(expr, ast.Name):
        value = _single_assign(info.node, expr.id)
        if value is not None:
            return _is_plan_length(value, info, params)
    return False


def _var_free(node: ast.expr, var: str) -> bool:
    return not any(
        isinstance(sub, ast.Name) and sub.id == var for sub in ast.walk(node)
    )


def _monotone_in(
    expr: ast.expr, var: str, analysis: FunctionAnalysis, env: Env
) -> bool:
    """``expr`` is provably non-decreasing in the loop variable ``var``.

    Accepts ``var`` itself and ``t * c`` / ``t // d`` / ``t + c`` /
    ``t - c`` chains where the other operand is var-free with interval
    bounds that preserve monotonicity (``c >= 0`` multipliers,
    ``d >= 1`` divisors).
    """
    if isinstance(expr, ast.Name):
        return expr.id == var
    if isinstance(expr, ast.BinOp):
        left, right = expr.left, expr.right
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if _monotone_in(left, var, analysis, env) and _var_free(right, var):
                return True
            return (
                isinstance(expr.op, ast.Add)
                and _monotone_in(right, var, analysis, env)
                and _var_free(left, var)
            )
        if isinstance(expr.op, ast.Mult):
            for term, other in ((left, right), (right, left)):
                if _monotone_in(term, var, analysis, env) and _var_free(other, var):
                    factor = analysis.evaluate(other, env)
                    if factor.lo is not None and factor.lo >= 0:
                        return True
            return False
        if isinstance(expr.op, ast.FloorDiv):
            if _monotone_in(left, var, analysis, env) and _var_free(right, var):
                divisor = analysis.evaluate(right, env)
                return divisor.lo is not None and divisor.lo >= 1
            return False
    return False


def _enclosing_loop_var(node: FunctionNode, stmt: ast.stmt) -> Optional[str]:
    """The counting variable of the innermost ``for`` containing ``stmt``.

    Only loops whose iterator is ``range(...)`` (target itself) or
    ``enumerate(...)`` (first element of a tuple target) count — their
    variable strictly increases across iterations, which is what makes
    an appended ``var + 1`` frontier monotone across appends.
    """
    result: Optional[str] = None
    for loop in ast.walk(node):
        if not isinstance(loop, ast.For):
            continue
        if not any(sub is stmt for sub in ast.walk(loop)):
            continue
        if not (
            isinstance(loop.iter, ast.Call)
            and isinstance(loop.iter.func, ast.Name)
            and loop.iter.func.id in ("range", "enumerate")
        ):
            continue
        target = loop.target
        if loop.iter.func.id == "enumerate":
            if (
                isinstance(target, ast.Tuple)
                and target.elts
                and isinstance(target.elts[0], ast.Name)
            ):
                result = target.elts[0].id  # innermost match wins (walk order)
        elif isinstance(target, ast.Name):
            result = target.id
    return result


def _comp_first_is_zero(
    comp: ast.ListComp, analysis: FunctionAnalysis, env: Env
) -> Optional[str]:
    """Loop-variable name when the comp provably starts at 0, else None.

    Requires a single ``for <name> in range(<stop>)`` generator with
    ``<stop>`` provably >= 1 (the list is non-empty, so it *has* a
    first element) whose element evaluates to exactly 0 at
    ``<name> = 0``.
    """
    if len(comp.generators) != 1:
        return None
    generator = comp.generators[0]
    if generator.is_async or generator.ifs:
        return None
    iterator = generator.iter
    if not (
        isinstance(iterator, ast.Call)
        and isinstance(iterator.func, ast.Name)
        and iterator.func.id == "range"
        and len(iterator.args) == 1
        and not iterator.keywords
    ):
        return None
    stop = analysis.evaluate(iterator.args[0], env)
    if stop.lo is None or stop.lo < 1:
        return None  # possibly empty: no first element at all
    if not isinstance(generator.target, ast.Name):
        return None
    hypothesis = dict(env)
    hypothesis[generator.target.id] = Interval.point(0)
    if analysis.evaluate(comp.elt, hypothesis).point_value != 0:
        return None
    return generator.target.id


#: One bounds-list mutation: (line, kind, statement, value expression).
_BoundsEvent = Tuple[int, str, ast.stmt, ast.expr]


@register_project
class PartitionInvariantRule(ProjectRule):
    rule_id = "RANGE001"
    description = (
        "WindowRange partition not provably contiguous, non-overlapping "
        "and plan-covering"
    )
    help_anchor = _PACK_ANCHOR

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        engine = engine_for(project)
        for info in project.functions():
            module = project.modules[info.module]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.ListComp):
                    continue
                bounds = _match_partition_comp(node)
                if bounds is None:
                    continue
                analysis = engine.analysis_for(info)
                reason = self._prove(info, analysis, node, bounds)
                if reason is not None:
                    yield self.finding(
                        project,
                        module.ctx.display_path,
                        node,
                        f"bounds list {bounds!r} {reason}; the partition "
                        "is not provably contiguous, non-overlapping and "
                        "plan-covering",
                    )

    # ------------------------------------------------------------------
    def _prove(
        self,
        info: FunctionInfo,
        analysis: FunctionAnalysis,
        comp: ast.ListComp,
        bounds: str,
    ) -> Optional[str]:
        """``None`` when every bounds segment is proven, else the reason.

        Adjacent-pair construction (``zip(B[:-1], B[1:])``) makes each
        range's ``hi`` the next range's ``lo`` — contiguity is
        structural.  What remains is the bounds list itself: it must
        provably start at 0, end at ``len(<plan parameter>)``, and grow
        monotonically in between.  Statements assigning/appending to
        the list partition (in source order) into segments, one per
        assignment; every segment must close its proof independently
        (the even/cost strategy branches of ``partition_plan`` each
        form one segment).
        """
        params = _param_set(info)
        events: List[_BoundsEvent] = []
        for stmt in ast.walk(info.node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == bounds
            ):
                events.append((stmt.lineno, "assign", stmt, stmt.value))
            elif (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "append"
                and isinstance(stmt.value.func.value, ast.Name)
                and stmt.value.func.value.id == bounds
                and len(stmt.value.args) == 1
                and not stmt.value.keywords
            ):
                events.append((stmt.lineno, "append", stmt, stmt.value.args[0]))
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                target = stmt.target
                if isinstance(target, ast.Name) and target.id == bounds:
                    return "is modified by an unsupported statement form"
        events.sort(key=lambda event: event[0])
        if any(line > comp.lineno for line, _, _, _ in events):
            return "is modified after the partition is built"
        if not events or events[0][1] != "assign":
            return "has no initial assignment before it is appended to"

        segments: List[List[_BoundsEvent]] = []
        for event in events:
            if event[1] == "assign":
                segments.append([event])
            else:
                segments[-1].append(event)
        for segment in segments:
            reason = self._prove_segment(info, analysis, params, segment)
            if reason is not None:
                return reason
        return None

    def _prove_segment(
        self,
        info: FunctionInfo,
        analysis: FunctionAnalysis,
        params: Set[str],
        segment: Sequence[_BoundsEvent],
    ) -> Optional[str]:
        value = segment[0][3]
        appends = segment[1:]
        env = analysis.env_at(value)
        if env is None:
            return "is assigned where the analysis has no state"

        # --- the initial assignment -----------------------------------
        if isinstance(value, ast.List):
            if not value.elts:
                return "starts from an empty list"
            first = analysis.evaluate(value.elts[0], env)
            if first.point_value != 0:
                return f"does not provably start at 0 (first bound {first})"
            if appends:
                if len(value.elts) != 1:
                    return "mixes literal interior bounds with appends"
            elif not (
                len(value.elts) == 2
                and _is_plan_length(value.elts[1], info, params)
            ):
                return "does not provably end at len(plan)"
        elif (
            isinstance(value, ast.BinOp)
            and isinstance(value.op, ast.Add)
            and isinstance(value.left, ast.ListComp)
            and isinstance(value.right, ast.List)
            and len(value.right.elts) == 1
        ):
            if appends:
                return "mixes a comprehension with appends"
            comp = value.left
            loop_var = _comp_first_is_zero(comp, analysis, env)
            if loop_var is None:
                return "does not provably start at 0"
            if not _monotone_in(comp.elt, loop_var, analysis, env):
                return "has interior bounds not provably monotone"
            if not _is_plan_length(value.right.elts[0], info, params):
                return "does not provably end at len(plan)"
        else:
            return "is initialized from an unsupported expression form"

        # --- the appended frontier ------------------------------------
        for index, (_line, _kind, stmt, arg) in enumerate(appends):
            if index == len(appends) - 1:
                if not _is_plan_length(arg, info, params):
                    return "does not provably end at len(plan)"
                continue
            loop_var = _enclosing_loop_var(info.node, stmt)
            if loop_var is None:
                return (
                    "appends an interior bound outside a counted "
                    "(range/enumerate) loop"
                )
            frontier_ok = isinstance(arg, ast.BinOp) and isinstance(
                arg.op, ast.Add
            )
            if frontier_ok:
                assert isinstance(arg, ast.BinOp)
                frontier_ok = (
                    isinstance(arg.left, ast.Name)
                    and arg.left.id == loop_var
                    and _const_int(arg.right) == 1
                ) or (
                    isinstance(arg.right, ast.Name)
                    and arg.right.id == loop_var
                    and _const_int(arg.left) == 1
                )
            if not frontier_ok:
                return (
                    "appends an interior bound that is not the loop "
                    "frontier <var> + 1"
                )
            arg_env = analysis.env_at(arg)
            if arg_env is None:
                return "appends a bound where the analysis has no state"
            frontier = analysis.evaluate(arg, arg_env)
            if frontier.lo is None or frontier.lo < 1:
                return "appends an interior bound not provably positive"
        return None


# ----------------------------------------------------------------------
# RANGE002 — arithmetic hazards in draw / estimator code
# ----------------------------------------------------------------------
#: Packages whose identifier-draw / estimator arithmetic RANGE002 scans.
_DRAW_PACKAGES: Tuple[str, ...] = ("core", "flow")


@register_project
class DrawHazardRule(ProjectRule):
    rule_id = "RANGE002"
    description = (
        "identifier-draw / estimator arithmetic with a provable "
        "zero-divisor, negative-shift, empty-span or modulo-bias hazard"
    )
    help_anchor = _PACK_ANCHOR

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        engine = engine_for(project)
        for info in project.functions():
            module = project.modules[info.module]
            if not module.ctx.in_packages(_DRAW_PACKAGES):
                continue
            analysis = engine.analysis_for(info)
            path = module.ctx.display_path
            for node in ast.walk(info.node):
                if isinstance(node, ast.BinOp):
                    yield from self._check_binop(project, path, analysis, node)
                elif isinstance(node, ast.Call):
                    yield from self._check_randrange(project, path, analysis, node)

    def _check_binop(
        self,
        project: ProjectContext,
        path: str,
        analysis: FunctionAnalysis,
        node: ast.BinOp,
    ) -> Iterator[Finding]:
        if analysis.env_at(node.right) is None:
            return  # nested def, or dead code the interpreter skipped
        right = analysis.interval_at(node.right)
        lo, hi = right.lo, right.hi
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            if lo is not None and hi is not None and lo <= 0 <= hi:
                kind = "modulus" if isinstance(node.op, ast.Mod) else "divisor"
                yield self.finding(
                    project,
                    path,
                    node,
                    f"{kind} has proven range {right}, which contains 0",
                )
            elif isinstance(node.op, ast.Mod):
                yield from self._check_bias(project, path, analysis, node, right)
        elif isinstance(node.op, (ast.LShift, ast.RShift)):
            if hi is not None and hi < 0:
                yield self.finding(
                    project,
                    path,
                    node,
                    f"shift amount has proven range {right}, which is "
                    "always negative",
                )

    def _check_bias(
        self,
        project: ProjectContext,
        path: str,
        analysis: FunctionAnalysis,
        node: ast.BinOp,
        right: Interval,
    ) -> Iterator[Finding]:
        modulus = right.point_value
        if modulus is None or modulus <= 0:
            return
        left = node.left
        if not (
            isinstance(left, ast.Call)
            and isinstance(left.func, ast.Attribute)
            and len(left.args) == 1
            and not left.keywords
        ):
            return
        method = left.func.attr
        span: Optional[int] = None
        arg = analysis.interval_at(left.args[0])
        if method == "getrandbits":
            bits = arg.point_value
            if bits is not None and 0 <= bits <= _MAX_SHIFT:
                span = 1 << bits
        elif method == "randrange":
            span = arg.point_value
        if span is not None and span > modulus and span % modulus != 0:
            yield self.finding(
                project,
                path,
                node,
                f"draw of span {span} reduced modulo {modulus} is biased "
                f"({span} % {modulus} != 0); draw from the target span "
                "directly",
            )

    def _check_randrange(
        self,
        project: ProjectContext,
        path: str,
        analysis: FunctionAnalysis,
        node: ast.Call,
    ) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "randrange"
            and len(node.args) == 1
            and not node.keywords
        ):
            return
        if analysis.env_at(node.args[0]) is None:
            return
        span = analysis.interval_at(node.args[0])
        if span.lo is not None and span.hi is not None and span.lo <= 0:
            yield self.finding(
                project,
                path,
                node,
                f"randrange span has proven range {span} and can be "
                "empty, which raises ValueError",
            )
