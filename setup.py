"""Setup shim: `python setup.py develop` is the supported editable
install in fully offline environments (modern pip's editable installs
require the `wheel` package).  All metadata lives in setup.cfg."""

from setuptools import setup

setup()
