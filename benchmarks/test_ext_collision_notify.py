"""Extension: explicit collision notifications (Section 3.2's suggestion).

Two findings, both asserted:

1. For **per-packet AFF identifiers** the notification is marginal: each
   identifier lives one transaction, so avoiding a collided identifier
   barely changes future collisions (which land on fresh random draws
   anyway).  We bound its effect rather than claim a win.
2. For **long-lived identifiers** — codebook bindings that persist for a
   lifetime — notifications matter: a clashed code keeps destroying
   reports until it expires, unless the receiver says so and the senders
   rebind immediately.
"""

from conftest import DURATION

from repro.experiments.harness import CollisionTrialConfig, run_collision_trial
from repro.experiments.results import Table
from repro.experiments.scenarios import codebook_scenario
from repro.topology.graphs import Star


def run_aff_star():
    star = lambda n: Star(hub=n, leaves=range(n))  # noqa: E731
    out = {}
    for name, kwargs in (
        ("uniform", dict(selector="uniform")),
        ("listening", dict(selector="listening")),
        ("listening+notify", dict(selector="listening", notify_collisions=True)),
    ):
        result = run_collision_trial(
            CollisionTrialConfig(
                id_bits=5, n_senders=5, duration=DURATION, seed=13,
                topology_factory=star, **kwargs,
            )
        )
        out[name] = result.collision_loss_rate
    return out


def run_codebook():
    out = {}
    for name, notify in (("plain", False), ("notify", True)):
        out[name] = codebook_scenario(
            code_bits=6, n_senders=6, n_attributes=4, reports=300,
            notify_clashes=notify, seed=4,
        )
    return out


def test_collision_notification(benchmark, publish):
    def run():
        return run_aff_star(), run_codebook()

    aff, codebook = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        "Extension: explicit collision notifications (hidden-terminal star)",
        ["context", "variant", "loss metric", "value"],
    )
    for variant, rate in aff.items():
        table.add_row("AFF per-packet ids (H=5)", variant,
                      "collision loss rate", rate)
    for variant, r in codebook.items():
        table.add_row("codebook bindings (6-bit)", variant,
                      "undecodable reports", int(r["undecodable"]))
        table.add_row("codebook bindings (6-bit)", variant,
                      "misdecoded reports", int(r["misdecoded"]))
    publish("ext_collision_notify", table.render())

    # Finding 1: for ephemeral per-packet ids the notification changes
    # little either way (bounded effect, not a regression).
    assert abs(aff["listening+notify"] - aff["listening"]) < 0.08
    # Finding 2: for persistent codebook codes it recovers most clash losses.
    assert codebook["notify"]["undecodable"] < codebook["plain"]["undecodable"] * 0.8
