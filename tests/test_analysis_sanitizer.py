"""Tests for the DetSan runtime determinism sanitizer.

Covers the runtime slot (activation, instrumentation transparency),
the four detectors against deliberately-buggy fixtures in
``tests/fixtures/detsan_buggy.py``, the finding plumbing (suppression,
fingerprints, baseline round-trip, SARIF), and the new lint-CLI
baseline maintenance modes.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

import pytest

from repro.analysis import Baseline, Linter
from repro.analysis.cli import main as lint_main
from repro.analysis.sanitizer import (
    DetSanContext,
    active_sanitizer,
    sanitizing,
    state_snapshot,
)
from repro.analysis.sanitizer.detectors import (
    check_hash_order,
    drift_findings,
    ledger_findings,
    run_suite,
)
from repro.analysis.sanitizer.report import CONFIRMS, annotate_sarif
from repro.analysis.sanitizer.rules import SANITIZER_RULES, sanitizer_rules_by_id
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

FIXTURES = Path(__file__).resolve().parent / "fixtures"
if str(FIXTURES) not in sys.path:
    # Makes detsan_buggy importable here AND in the pinned subprocess
    # legs (the detectors forward sys.path via PYTHONPATH).
    sys.path.insert(0, str(FIXTURES))

FIXTURE_FILE = (FIXTURES / "detsan_buggy.py").as_posix()


def fixture_relpath() -> str:
    """The fixture file's path as findings display it."""
    try:
        return (FIXTURES / "detsan_buggy.py").relative_to(Path.cwd()).as_posix()
    except ValueError:
        return FIXTURE_FILE


# ----------------------------------------------------------------------
# Runtime slot
# ----------------------------------------------------------------------
class TestRuntimeSlot:
    def test_inactive_by_default(self):
        assert active_sanitizer() is None

    def test_sanitizing_installs_and_restores(self):
        ctx = DetSanContext(seed=7)
        with sanitizing(ctx) as active:
            assert active is ctx
            assert active_sanitizer() is ctx
        assert active_sanitizer() is None

    def test_nested_contexts_restore_previous(self):
        outer, inner = DetSanContext(seed=1), DetSanContext(seed=2)
        with sanitizing(outer):
            with sanitizing(inner):
                assert active_sanitizer() is inner
            assert active_sanitizer() is outer
        assert active_sanitizer() is None

    def test_global_random_unpatched_after_exit(self):
        before = random.random
        with sanitizing(DetSanContext(seed=0)):
            assert random.random is not before
        assert random.random is before

    def test_tie_rank_is_deterministic(self):
        a, b = DetSanContext(seed=3), DetSanContext(seed=3)
        ranks = [a.tie_rank(1.5, seq) for seq in range(8)]
        assert ranks == [b.tie_rank(1.5, seq) for seq in range(8)]
        assert len(set(ranks)) == len(ranks)

    def test_tie_rank_depends_on_seed(self):
        assert DetSanContext(seed=0).tie_rank(1.0, 1) != DetSanContext(
            seed=1
        ).tie_rank(1.0, 1)


# ----------------------------------------------------------------------
# Instrumentation transparency: sanitizer-off == sanitizer-on, bit for bit
# ----------------------------------------------------------------------
class TestTransparency:
    def test_stream_sequences_identical_under_instrumentation(self):
        plain = [RngRegistry(root_seed=42).stream("node.1").random() for _ in range(1)]
        plain_seq = RngRegistry(root_seed=42).stream("node.1")
        expected = [plain_seq.random() for _ in range(20)]
        with sanitizing(DetSanContext(seed=0)):
            instrumented = RngRegistry(root_seed=42).stream("node.1")
            observed = [instrumented.random() for _ in range(20)]
        assert observed == expected
        assert plain  # first draw consumed off a throwaway registry

    def test_draws_are_attributed_to_stream_and_site(self):
        with sanitizing(DetSanContext(seed=0)) as san:
            stream = RngRegistry(root_seed=1).stream("node.2")
            stream.random()
            payloads = san.observations()
        draws = {}
        for payload in payloads:
            draws.update(payload.get("draws", {}))
        assert "node.2" in draws
        assert any("test_analysis_sanitizer" in site for site in draws["node.2"])

    def test_fifo_order_preserved_when_off(self):
        order = []
        sim = Simulator()
        for name in "abcdef":
            sim.schedule(1.0, order.append, name)
        sim.run()
        assert order == list("abcdef")

    def test_perturbed_ties_shuffle_but_reproducibly(self):
        def run_once(perturb: bool):
            order = []
            with sanitizing(DetSanContext(seed=5, perturb_ties=perturb)):
                sim = Simulator()
                for name in "abcdef":
                    sim.schedule(1.0, order.append, name)
                sim.run()
            return order

        assert run_once(False) == list("abcdef")
        shuffled = run_once(True)
        assert sorted(shuffled) == list("abcdef")
        assert shuffled != list("abcdef")
        assert run_once(True) == shuffled  # same seed -> same shuffle


# ----------------------------------------------------------------------
# Detectors against the deliberately-buggy fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def buggy_suite():
    return run_suite(
        scenarios=[
            "detsan_buggy:tie_order_bug",
            "detsan_buggy:unregistered_draw",
        ],
        hash_seeds=0,
        fork_exercise=False,
    )


class TestDetectors:
    def test_tie_order_bug_yields_san002(self, buggy_suite):
        san002 = [f for f in buggy_suite.findings if f.rule_id == "SAN002"]
        assert len(san002) == 1
        finding = san002[0]
        assert finding.path == fixture_relpath()
        assert "tie_order_bug" in finding.message
        assert finding.snippet.startswith("def tie_order_bug")
        assert finding.fingerprint().startswith(f"SAN002:{finding.path}:")

    def test_unregistered_draw_yields_san001(self, buggy_suite):
        san001 = [f for f in buggy_suite.findings if f.rule_id == "SAN001"]
        assert len(san001) == 1
        finding = san001[0]
        assert finding.path == fixture_relpath()
        assert "random.random()" in finding.message
        assert "random.random()" in finding.snippet
        assert finding.fingerprint().startswith(f"SAN001:{finding.path}:")

    def test_clean_scenario_produces_no_findings(self, buggy_suite):
        checks = {
            check["scenario"]: check["ok"] for check in buggy_suite.checks
        }
        assert checks["detsan_buggy:unregistered_draw"] is True
        assert checks["detsan_buggy:tie_order_bug"] is False

    def test_hash_order_bug_yields_san003(self, tmp_path):
        findings, check = check_hash_order(
            "detsan_buggy:hash_order_bug", hash_seeds=2, workdir=tmp_path
        )
        assert not check["ok"]
        assert [f.rule_id for f in findings] == ["SAN003"]
        assert findings[0].path == fixture_relpath()
        assert "PYTHONHASHSEED" in findings[0].message

    def test_hash_order_clean_scenario_passes(self, tmp_path):
        findings, check = check_hash_order(
            "detsan_buggy:unregistered_draw", hash_seeds=2, workdir=tmp_path
        )
        assert check["ok"], check
        assert findings == []


# ----------------------------------------------------------------------
# SAN004: state drift
# ----------------------------------------------------------------------
class TestStateDrift:
    def test_unloaded_baseline_is_benign(self):
        san = DetSanContext(seed=0)
        san.fork_baseline = {"probe.x": "unloaded"}
        san.check_fork_drift({"probe.x": "abcd"})
        assert san.drift == []
        assert san.fork_baseline["probe.x"] == "abcd"

    def test_fork_drift_recorded(self):
        san = DetSanContext(seed=0)
        san.fork_baseline = {"probe.x": "aaaa"}
        san.check_fork_drift({"probe.x": "bbbb"})
        assert [d["probe"] for d in san.drift] == ["probe.x"]
        assert san.drift[0]["phase"] == "fork"

    def test_trial_drift_recorded_and_reanchored(self):
        san = DetSanContext(seed=0)
        san.fork_baseline = {"probe.x": "aaaa"}
        san.record_trial_drift(
            {"probe.x": "aaaa"}, {"probe.x": "cccc"}, site=f"{FIXTURE_FILE}:16"
        )
        assert san.drift[0]["phase"] == "trial"
        assert san.fork_baseline["probe.x"] == "cccc"  # no double report

    def test_drift_findings_anchor_at_site(self):
        san = DetSanContext(seed=0)
        san.fork_baseline = {"probe.x": "aaaa"}
        san.record_trial_drift(
            {"probe.x": "aaaa"}, {"probe.x": "cccc"}, site=f"{FIXTURE_FILE}:16"
        )
        findings = drift_findings(san.observations())
        assert [f.rule_id for f in findings] == ["SAN004"]
        assert findings[0].path == fixture_relpath()
        assert findings[0].line == 16

    def test_state_snapshot_has_builtin_probes(self):
        snapshot = state_snapshot()
        assert "random.global_state" in snapshot
        assert "sim.rng.fallback_counts" in snapshot


# ----------------------------------------------------------------------
# Suppression and baseline interplay
# ----------------------------------------------------------------------
class TestSuppressionAndBaseline:
    def _payload(self, site: str):
        return [{"pid": 1, "unregistered": {"random.random": {site: 3}}}]

    def test_inline_ignore_suppresses_sanitizer_finding(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "value = draw()  # lint: ignore[SAN001]\n", encoding="utf-8"
        )
        findings = ledger_findings(self._payload(f"{target}:1:f"))
        assert findings == []

    def test_without_ignore_the_finding_fires(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("value = draw()\n", encoding="utf-8")
        findings = ledger_findings(self._payload(f"{target}:1:f"))
        assert [f.rule_id for f in findings] == ["SAN001"]

    def test_ignoring_a_different_rule_does_not_mask(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "value = draw()  # lint: ignore[SAN002]\n", encoding="utf-8"
        )
        findings = ledger_findings(self._payload(f"{target}:1:f"))
        assert [f.rule_id for f in findings] == ["SAN001"]

    def test_sanitizer_findings_round_trip_through_baseline(self, buggy_suite):
        baseline = Baseline.from_findings(buggy_suite.findings)
        assert baseline.filter(buggy_suite.findings) == []
        # A fresh, identical run hits the same fingerprints.
        again = run_suite(
            scenarios=["detsan_buggy:unregistered_draw"],
            hash_seeds=0,
            fork_exercise=False,
        )
        assert baseline.filter(again.findings) == []


# ----------------------------------------------------------------------
# Lint CLI: --prune-baseline / --check-baseline
# ----------------------------------------------------------------------
BUGGY_SRC = (
    "import random\n"
    "def make(rng=None):\n"
    "    return rng or random.Random()\n"
)
CLEAN_SRC = "def make(rng):\n    return rng\n"


class TestBaselineMaintenance:
    def _write(self, tmp_path: Path, source: str) -> Path:
        target = tmp_path / "mod.py"
        target.write_text(source, encoding="utf-8")
        return target

    def test_check_baseline_clean_when_debt_still_fires(self, tmp_path, capsys):
        target = self._write(tmp_path, BUGGY_SRC)
        baseline = tmp_path / "bl.json"
        args = [str(target), "--baseline", str(baseline)]
        assert lint_main(args + ["--write-baseline"]) == 0
        assert lint_main(args) == 0  # grandfathered
        assert lint_main(args + ["--check-baseline"]) == 0

    def test_check_baseline_fails_on_stale_entries(self, tmp_path, capsys):
        target = self._write(tmp_path, BUGGY_SRC)
        baseline = tmp_path / "bl.json"
        args = [str(target), "--baseline", str(baseline)]
        assert lint_main(args + ["--write-baseline"]) == 0
        self._write(tmp_path, CLEAN_SRC)  # debt fixed, entry now stale
        assert lint_main(args + ["--check-baseline"]) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out

    def test_prune_baseline_drops_dead_fingerprints(self, tmp_path, capsys):
        target = self._write(tmp_path, BUGGY_SRC)
        baseline = tmp_path / "bl.json"
        args = [str(target), "--baseline", str(baseline)]
        assert lint_main(args + ["--write-baseline"]) == 0
        self._write(tmp_path, CLEAN_SRC)
        assert lint_main(args + ["--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert json.loads(baseline.read_text())["entries"] == {}
        assert lint_main(args + ["--check-baseline"]) == 0

    def test_pruned_finding_refires_when_reintroduced(self, tmp_path):
        target = self._write(tmp_path, BUGGY_SRC)
        baseline = tmp_path / "bl.json"
        args = [str(target), "--baseline", str(baseline)]
        assert lint_main(args + ["--write-baseline"]) == 0
        self._write(tmp_path, CLEAN_SRC)
        assert lint_main(args + ["--prune-baseline"]) == 0
        self._write(tmp_path, BUGGY_SRC)  # the debt comes back...
        assert lint_main(args) == 1  # ...and is reported, not masked

    def test_inline_ignore_makes_baseline_entry_stale(self, tmp_path):
        target = self._write(tmp_path, BUGGY_SRC)
        baseline = tmp_path / "bl.json"
        args = [str(target), "--baseline", str(baseline)]
        assert lint_main(args + ["--write-baseline"]) == 0
        self._write(
            tmp_path,
            BUGGY_SRC.replace(
                "return rng or random.Random()",
                "return rng or random.Random()  # lint: ignore[DET001]",
            ),
        )
        assert lint_main(args + ["--check-baseline"]) == 1

    def test_check_baseline_requires_a_baseline_file(self, tmp_path):
        target = self._write(tmp_path, CLEAN_SRC)
        missing = tmp_path / "absent.json"
        assert (
            lint_main(
                [str(target), "--baseline", str(missing), "--check-baseline"]
            )
            == 2
        )


# ----------------------------------------------------------------------
# SARIF: rule catalogue polish + sanitizer findings
# ----------------------------------------------------------------------
class TestSarif:
    def test_static_rules_carry_level_and_help_uri(self, tmp_path):
        from repro.analysis.sarif import to_sarif

        target = tmp_path / "mod.py"
        target.write_text(BUGGY_SRC, encoding="utf-8")
        report = Linter().lint_paths([target])
        document = to_sarif(report, SANITIZER_RULES)
        driver = document["runs"][0]["tool"]["driver"]
        by_id = {rule["id"]: rule for rule in driver["rules"]}
        assert by_id["SAN002"]["defaultConfiguration"]["level"] == "error"
        assert by_id["SAN002"]["helpUri"].endswith("#dynamic-analysis-detsan")

    def test_warning_level_rules_map_through(self, tmp_path):
        from repro.analysis import all_rules
        from repro.analysis.sarif import to_sarif

        target = tmp_path / "mod.py"
        target.write_text(
            "def sample():\n    import random as _r\n    return _r\n", encoding="utf-8"
        )
        report = Linter().lint_paths([target])
        assert "DET003" in [f.rule_id for f in report.findings]
        document = to_sarif(report, all_rules())
        levels = {r["ruleId"]: r["level"] for r in document["runs"][0]["results"]}
        assert levels["DET003"] == "warning"
        driver = document["runs"][0]["tool"]["driver"]
        by_id = {rule["id"]: rule for rule in driver["rules"]}
        assert by_id["DET003"]["defaultConfiguration"]["level"] == "warning"
        assert by_id["DET001"]["defaultConfiguration"]["level"] == "error"

    def test_sanitizer_findings_serialize_to_sarif(self, buggy_suite):
        from repro.analysis.core import LintReport
        from repro.analysis.sarif import to_sarif

        report = LintReport()
        report.findings = list(buggy_suite.findings)
        document = to_sarif(report, SANITIZER_RULES)
        results = document["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"SAN001", "SAN002"}
        for result in results:
            assert result["partialFingerprints"]["reproLint/v1"].startswith(
                result["ruleId"] + ":"
            )


# ----------------------------------------------------------------------
# Report mode: static SARIF x dynamic evidence
# ----------------------------------------------------------------------
class TestReport:
    def _static_sarif(self, path: str, rule_id: str = "DET001"):
        return {
            "runs": [
                {
                    "results": [
                        {
                            "ruleId": rule_id,
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {"uri": path},
                                        "region": {"startLine": 3},
                                    }
                                }
                            ],
                        }
                    ]
                }
            ]
        }

    def test_confirmed_when_san_evidence_lands_in_same_file(self, buggy_suite):
        san001 = [f for f in buggy_suite.findings if f.rule_id == "SAN001"][0]
        document = self._static_sarif(san001.path)
        counts = annotate_sarif(document, [san001])
        assert counts == {"dynamically-confirmed": 1, "not-observed": 0}
        detsan = document["runs"][0]["results"][0]["properties"]["detsan"]
        assert detsan["status"] == "dynamically-confirmed"
        assert detsan["confirmedBy"] == [san001.fingerprint()]

    def test_not_observed_without_matching_evidence(self, buggy_suite):
        san001 = [f for f in buggy_suite.findings if f.rule_id == "SAN001"][0]
        document = self._static_sarif("src/other/file.py")
        counts = annotate_sarif(document, [san001])
        assert counts == {"dynamically-confirmed": 0, "not-observed": 1}

    def test_unrelated_rule_is_not_confirmed_by_san001(self, buggy_suite):
        san001 = [f for f in buggy_suite.findings if f.rule_id == "SAN001"][0]
        document = self._static_sarif(san001.path, rule_id="WIRE001")
        counts = annotate_sarif(document, [san001])
        assert counts["dynamically-confirmed"] == 0

    def test_confirms_map_targets_known_rule_ids(self):
        from repro.analysis.core import project_registry, registry

        known = set(registry()) | set(project_registry())
        for san_id, static_ids in CONFIRMS.items():
            assert san_id in sanitizer_rules_by_id()
            assert static_ids <= known


# ----------------------------------------------------------------------
# The sanitize CLI
# ----------------------------------------------------------------------
class TestSanitizeCli:
    def _run(self, argv):
        from repro.cli import main as repro_main

        return repro_main(["sanitize", *argv])

    def test_run_reports_fixture_findings(self, tmp_path, capsys):
        sarif_path = tmp_path / "detsan.sarif"
        code = self._run(
            [
                "run",
                "--scenario",
                "detsan_buggy:unregistered_draw",
                "--hash-seeds",
                "0",
                "--no-fork-exercise",
                "--no-baseline",
                "--sarif",
                str(sarif_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "SAN001" in out
        document = json.loads(sarif_path.read_text())
        assert document["runs"][0]["results"][0]["ruleId"] == "SAN001"

    def test_baseline_round_trip_via_cli(self, tmp_path, capsys):
        baseline = tmp_path / "bl.json"
        argv = [
            "run",
            "--scenario",
            "detsan_buggy:unregistered_draw",
            "--hash-seeds",
            "0",
            "--no-fork-exercise",
            "--baseline",
            str(baseline),
        ]
        assert self._run(argv + ["--write-baseline"]) == 0
        capsys.readouterr()
        assert self._run(argv) == 0  # grandfathered now
        assert "SAN001" not in capsys.readouterr().out

    def test_bad_scenario_is_invocation_error(self, capsys):
        assert self._run(["run", "--scenario", "nope", "--no-baseline"]) == 2


# ----------------------------------------------------------------------
# Pinned re-execution entry point
# ----------------------------------------------------------------------
class TestPinnedMain:
    def test_unknown_scenario_exits_2(self, tmp_path, capsys):
        from repro.analysis.sanitizer.pinned import main

        assert main(["--scenario", "nope", "--trace", str(tmp_path / "t")]) == 2

    def test_perturb_ties_requires_seed(self, tmp_path, capsys):
        from repro.analysis.sanitizer.pinned import main

        code = main(
            [
                "--scenario",
                "collision",
                "--trace",
                str(tmp_path / "t"),
                "--perturb-ties",
            ]
        )
        assert code == 2


# ----------------------------------------------------------------------
# Constant mirrored to break the analysis <- radio import cycle
# ----------------------------------------------------------------------
def test_wire_frame_budget_matches_radio_frame():
    from repro.analysis import wire_rules
    from repro.radio import frame

    assert wire_rules.RPC_MAX_FRAME_BYTES == frame.RPC_MAX_FRAME_BYTES
