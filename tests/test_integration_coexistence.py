"""Cross-protocol coexistence: different stacks sharing one medium.

A real deployment's air is not monoculture — fragmentation traffic,
flood alarms, and interest readings share the spectrum.  Every decoder
therefore regularly receives frames of *other* protocols (which look
like line noise to it).  These tests run mixed protocol populations on
one broadcast medium and assert mutual tolerance: each protocol keeps
delivering its own traffic exactly, and foreign frames are dropped or
ignored, never crash, never fabricate deliveries.
"""

import random

import pytest

from repro.aff.driver import AffDriver
from repro.apps.flooding import FloodNode
from repro.apps.interest import InterestSink, InterestSource
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.net.packets import Packet
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.graphs import FullMesh


class TestAffPlusFlooding:
    def test_both_protocols_deliver_amid_each_other(self):
        rngs = RngRegistry(77)
        sim = Simulator()
        # Nodes 0-1 run AFF; nodes 2-4 run flooding; all share the air.
        medium = BroadcastMedium(sim, FullMesh(range(5)), rf_collisions=False,
                                 rng=rngs.stream("m"))

        aff_delivered = []
        aff_tx = AffDriver(
            Radio(medium, 0, max_frame_bytes=64),
            UniformSelector(IdentifierSpace(10), rngs.stream("aff0")),
        )
        aff_rx = AffDriver(
            Radio(medium, 1, max_frame_bytes=64),
            UniformSelector(IdentifierSpace(10), rngs.stream("aff1")),
            deliver=aff_delivered.append,
        )

        flood_delivered = {n: [] for n in (2, 3, 4)}
        flood_nodes = {}
        for n in (2, 3, 4):
            flood_nodes[n] = FloodNode(
                sim,
                Radio(medium, n, max_frame_bytes=64),
                UniformSelector(IdentifierSpace(10), rngs.stream(f"fl{n}")),
                deliver=(lambda p, n=n: flood_delivered[n].append(p)),
                rng=rngs.stream(f"fwd{n}"),
            )

        aff_payloads = [bytes([i]) * 50 for i in range(8)]
        for i, p in enumerate(aff_payloads):
            sim.schedule(i * 0.3, aff_tx.send, Packet(payload=p, origin=0))
        for i in range(6):
            sim.schedule(0.15 + i * 0.4, flood_nodes[2].originate,
                         b"alarm-%d" % i)
        sim.run(until=10.0)

        # AFF delivered everything it sent, exactly.
        assert aff_delivered == aff_payloads
        # Floods reached the other flooding nodes.
        for n in (3, 4):
            assert len(flood_delivered[n]) == 6
        # Foreign frames were dropped, not fabricated: flood nodes never
        # delivered AFF payloads and vice versa.
        for payloads in flood_delivered.values():
            assert all(p.startswith(b"alarm-") for p in payloads)
        assert all(p in aff_payloads for p in aff_delivered)

    def test_foreign_frames_counted_as_malformed_or_ignored(self):
        rngs = RngRegistry(78)
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False,
                                 rng=rngs.stream("m"))
        flood = FloodNode(
            sim,
            Radio(medium, 0, max_frame_bytes=64),
            UniformSelector(IdentifierSpace(8), rngs.stream("f")),
        )
        aff = AffDriver(
            Radio(medium, 1, max_frame_bytes=64),
            UniformSelector(IdentifierSpace(8), rngs.stream("a")),
        )
        for i in range(20):
            flood.originate(bytes([i]) * 10)
        sim.run()
        # The AFF driver saw 20 foreign frames; none delivered anything.
        assert aff.radio.frames_received == 20
        assert aff.delivered == []


class TestInterestPlusAff:
    def test_interest_loop_unharmed_by_fragmentation_traffic(self):
        rngs = RngRegistry(79)
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(4)), rf_collisions=False,
                                 rng=rngs.stream("m"))
        # Node 0: interest source; node 1: sink; nodes 2-3: AFF chatter.
        source = InterestSource(
            sim,
            Radio(medium, 0),
            UniformSelector(IdentifierSpace(8), rngs.stream("src")),
            rng=rngs.stream("srcrng"),
            base_interval=0.5,
        )
        sink = InterestSink(sim, Radio(medium, 1), id_bits=8)
        chatter_tx = AffDriver(
            Radio(medium, 2),
            UniformSelector(IdentifierSpace(8), rngs.stream("c2")),
        )
        AffDriver(
            Radio(medium, 3),
            UniformSelector(IdentifierSpace(8), rngs.stream("c3")),
        )
        source.start()
        for i in range(10):
            sim.schedule(i * 0.7, chatter_tx.send,
                         Packet(payload=bytes([i]) * 30, origin=2))
        sim.run(until=20.0)
        assert source.stats.readings_sent > 10
        assert source.stats.reinforcements_received > 0
        # All reinforcements were genuine (sink-initiated), not noise.
        assert (
            source.stats.reinforcements_correct
            + source.stats.reinforcements_misdirected
            == source.stats.reinforcements_received
        )
