"""Discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event-queue kernel.
* :func:`~repro.sim.process.spawn` and the process yield targets
  (:class:`~repro.sim.process.Timeout`,
  :class:`~repro.sim.process.Signal`,
  :class:`~repro.sim.process.WaitSignal`).
* :class:`~repro.sim.rng.RngRegistry` — named deterministic RNG streams.
* :class:`~repro.sim.trace.TraceRecorder` — structured event traces.
* Online statistics in :mod:`repro.sim.monitor`.
"""

from .engine import EventHandle, SimulationError, Simulator
from .monitor import Counter, Histogram, RunningStats, TimeWeightedValue
from .process import (
    WAIT_TIMED_OUT,
    Interrupt,
    Process,
    ProcessError,
    Signal,
    Timeout,
    WaitSignal,
    spawn,
)
from .rng import RngRegistry, derive_seed
from .trace import NullRecorder, TraceRecord, TraceRecorder

__all__ = [
    "Counter",
    "EventHandle",
    "Histogram",
    "Interrupt",
    "NullRecorder",
    "Process",
    "ProcessError",
    "RngRegistry",
    "RunningStats",
    "Signal",
    "SimulationError",
    "Simulator",
    "TimeWeightedValue",
    "Timeout",
    "TraceRecord",
    "TraceRecorder",
    "WAIT_TIMED_OUT",
    "WaitSignal",
    "derive_seed",
    "spawn",
]
