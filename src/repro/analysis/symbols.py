"""Project-wide symbol table.

The per-module rules (:mod:`.determinism`, :mod:`.wire_rules`,
:mod:`.rngstreams`) see one file at a time.  The dataflow packs
(:mod:`.seed_rules`, :mod:`.exec_rules`, :mod:`.purity`) reason about
contracts that *span* modules — "this function, defined here, is
submitted as a trial spec over there" — which needs a shared picture of
who defines what and how names travel through imports.

:class:`ProjectContext` is that picture: every parsed module keyed by
dotted name, each with its top-level functions and methods
(:class:`FunctionInfo`), its module-level assignments, and its import
bindings (both ``import x as y`` aliases and ``from m import a as b``
names, with relative imports resolved against the module's own dotted
name).  :meth:`ProjectContext.resolve_name` follows ``from``-import
chains across modules — including one-hop re-exports through package
``__init__`` files — to the :class:`FunctionInfo` a local name actually
denotes, returning ``None`` for anything it cannot prove (external
modules, attribute lookups on instances).  Conservatism contract: a
``None`` resolution makes downstream rules stay silent, never guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .core import ModuleContext

__all__ = [
    "FunctionInfo",
    "ModuleSymbols",
    "ProjectContext",
    "build_project",
    "module_name_for",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Guard against pathological ``from a import b`` re-export cycles.
_MAX_RESOLVE_DEPTH = 8


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walking up while ``__init__.py`` exists.

    ``src/repro/core/montecarlo.py`` maps to ``repro.core.montecarlo``;
    a package ``__init__.py`` maps to the package itself; a loose file
    with no enclosing package is just its stem.  Purely filesystem
    based, so fixture trees in tests get stable names for free.
    """
    path = path.resolve()
    if path.name == "__init__.py":
        parts = [path.parent.name]
        current = path.parent.parent
    else:
        parts = [path.stem]
        current = path.parent
    while (current / "__init__.py").exists() and current.name:
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, addressable project-wide."""

    #: globally unique reference: ``<module dotted name>.<qualname>``
    ref: str
    module: str
    qualname: str
    node: FunctionNode

    @property
    def name(self) -> str:
        """The bare (unqualified) function name."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleSymbols:
    """Everything the project analysis knows about one module."""

    name: str
    is_package: bool
    ctx: ModuleContext
    #: qualname -> definition, for top-level functions and class methods
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level ``NAME = <expr>`` bindings (last assignment wins)
    module_assigns: Dict[str, ast.expr] = field(default_factory=dict)
    #: local alias -> dotted module name, from ``import m [as a]``
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (dotted module, original name), from ``from m import o [as a]``
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def module_level_names(self) -> Dict[str, ast.expr]:
        """Names bound by top-level assignment (module-global state)."""
        return self.module_assigns


def _resolve_relative(
    name: str, is_package: bool, level: int, module: Optional[str]
) -> Optional[str]:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if level == 0:
        return module
    parts = name.split(".")
    if is_package:
        keep = len(parts) - (level - 1)
    else:
        keep = len(parts) - level
    if keep < 0:
        return None
    base = parts[:keep]
    if module:
        base = base + module.split(".")
    return ".".join(base) if base else None


def collect_symbols(ctx: ModuleContext, name: Optional[str] = None) -> ModuleSymbols:
    """Build the symbol table of one parsed module."""
    module_name = name if name is not None else module_name_for(ctx.path)
    is_package = ctx.path.name == "__init__.py"
    symbols = ModuleSymbols(name=module_name, is_package=is_package, ctx=ctx)

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[stmt.name] = FunctionInfo(
                ref=f"{module_name}.{stmt.name}",
                module=module_name,
                qualname=stmt.name,
                node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{stmt.name}.{item.name}"
                    symbols.functions[qualname] = FunctionInfo(
                        ref=f"{module_name}.{qualname}",
                        module=module_name,
                        qualname=qualname,
                        node=item,
                    )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    symbols.module_assigns[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                symbols.module_assigns[stmt.target.id] = stmt.value

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                symbols.import_aliases[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            source = _resolve_relative(
                module_name, is_package, node.level, node.module
            )
            if source is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                symbols.from_imports[alias.asname or alias.name] = (
                    source,
                    alias.name,
                )
    return symbols


class ProjectContext:
    """All modules of one lint invocation, cross-resolvable."""

    def __init__(self, modules: List[ModuleSymbols]):
        self.modules: Dict[str, ModuleSymbols] = {}
        for module in modules:
            self.modules[module.name] = module
        self.by_path: Dict[str, ModuleSymbols] = {
            module.ctx.display_path: module for module in self.modules.values()
        }
        self._functions: Dict[str, FunctionInfo] = {}
        for module in self.modules.values():
            for info in module.functions.values():
                self._functions[info.ref] = info

    # ------------------------------------------------------------------
    def functions(self) -> Iterator[FunctionInfo]:
        """Every known function/method, in stable (ref-sorted) order."""
        for ref in sorted(self._functions):
            yield self._functions[ref]

    def function(self, ref: Optional[str]) -> Optional[FunctionInfo]:
        if ref is None:
            return None
        return self._functions.get(ref)

    # ------------------------------------------------------------------
    def resolve_name(
        self, module: ModuleSymbols, name: str, _depth: int = 0
    ) -> Optional[str]:
        """The project-wide function ref a local ``name`` denotes.

        Checks the module's own definitions first, then follows
        ``from``-import bindings into other project modules, chasing
        re-exports (``from .runner import TrialSpec`` inside a package
        ``__init__``) up to a bounded depth.  ``None`` means "not a
        project-local function as far as we can prove" — external
        modules, instance attributes, dynamically bound names.
        """
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        info = module.functions.get(name)
        if info is not None:
            return info.ref
        imported = module.from_imports.get(name)
        if imported is not None:
            source_module, original = imported
            target = self.modules.get(source_module)
            if target is not None:
                return self.resolve_name(target, original, _depth + 1)
        return None

    def resolve_call(
        self, module: ModuleSymbols, func: ast.expr
    ) -> Optional[str]:
        """Resolve a call's function expression to a project ref.

        Handles plain names (local defs and ``from``-imports),
        ``alias.attr`` where ``alias`` is an imported project module,
        and ``Class.method`` on a same-module class.  Instance method
        calls (``self.f()``, ``obj.f()``) are unresolvable by design.
        """
        if isinstance(func, ast.Name):
            return self.resolve_name(module, func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            target_name = module.import_aliases.get(base)
            if target_name is not None and target_name in self.modules:
                return self.resolve_name(self.modules[target_name], func.attr)
            qualname = f"{base}.{func.attr}"
            if qualname in module.functions:
                return module.functions[qualname].ref
            imported = module.from_imports.get(base)
            if imported is not None:
                # ``from pkg import mod`` then ``mod.fn(...)``
                source_module, original = imported
                candidate = f"{source_module}.{original}"
                if candidate in self.modules:
                    return self.resolve_name(self.modules[candidate], func.attr)
        return None


def build_project(contexts: List[ModuleContext]) -> ProjectContext:
    """Symbol tables for every parsed module, as one project."""
    return ProjectContext([collect_symbols(ctx) for ctx in contexts])
