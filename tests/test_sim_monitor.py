"""Unit tests for online statistics."""

import json
import math

import pytest

from repro.sim.monitor import Counter, Histogram, RunningStats, TimeWeightedValue


class TestCounter:
    def test_incr_and_get(self):
        c = Counter()
        c.incr("frames")
        c.incr("frames", 4)
        assert c.get("frames") == 5
        assert c["frames"] == 5

    def test_missing_counter_is_zero(self):
        assert Counter().get("nothing") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().incr("x", -1)

    def test_as_dict_is_a_copy(self):
        c = Counter()
        c.incr("a")
        d = c.as_dict()
        d["a"] = 99
        assert c.get("a") == 1


class TestRunningStats:
    def test_matches_reference_mean_and_stdev(self):
        import statistics

        data = [1.5, 2.5, 3.0, 4.0, 10.0, -2.0]
        rs = RunningStats()
        rs.extend(data)
        assert rs.mean == pytest.approx(statistics.mean(data))
        assert rs.stdev == pytest.approx(statistics.stdev(data))
        assert rs.minimum == min(data)
        assert rs.maximum == max(data)

    def test_empty_stats_are_nan(self):
        rs = RunningStats()
        assert math.isnan(rs.mean)
        assert math.isnan(rs.stdev)
        assert math.isnan(rs.minimum)

    def test_single_observation(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.mean == 5.0
        assert math.isnan(rs.variance)

    def test_numerical_stability_large_offset(self):
        rs = RunningStats()
        rs.extend([1e9 + i for i in range(100)])
        assert rs.mean == pytest.approx(1e9 + 49.5)
        assert rs.stdev == pytest.approx(29.0115, rel=1e-3)


class TestTimeWeightedValue:
    def test_constant_signal(self):
        twv = TimeWeightedValue(time=0.0, value=3.0)
        assert twv.average(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        twv = TimeWeightedValue()
        twv.set(0.0, 1.0)
        twv.set(5.0, 3.0)  # 1.0 for [0,5), 3.0 for [5,10)
        assert twv.average(10.0) == pytest.approx(2.0)

    def test_adjust_counts_concurrency(self):
        twv = TimeWeightedValue()
        twv.adjust(0.0, +1)   # 1 txn during [0, 2)
        twv.adjust(2.0, +1)   # 2 txns during [2, 4)
        twv.adjust(4.0, -1)   # 1 txn during [4, 6)
        assert twv.average(6.0) == pytest.approx((2 + 4 + 2) / 6)

    def test_out_of_order_update_rejected(self):
        twv = TimeWeightedValue()
        twv.set(5.0, 1.0)
        with pytest.raises(ValueError):
            twv.set(4.0, 2.0)

    def test_average_before_last_update_rejected(self):
        twv = TimeWeightedValue()
        twv.set(5.0, 1.0)
        with pytest.raises(ValueError):
            twv.average(4.0)

    def test_zero_span_returns_current(self):
        twv = TimeWeightedValue(time=0.0, value=7.0)
        assert twv.average(0.0) == 7.0


class TestHistogram:
    def test_binning(self):
        h = Histogram(0.0, 10.0, bins=10)
        for x in (0.5, 1.5, 1.6, 9.9):
            h.add(x)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1

    def test_underflow_overflow(self):
        h = Histogram(0.0, 1.0, bins=2)
        h.add(-0.5)
        h.add(1.0)  # hi edge is exclusive -> overflow
        h.add(2.0)
        assert h.underflow == 1
        assert h.overflow == 2

    def test_normalized_sums_to_one(self):
        h = Histogram(0.0, 1.0, bins=4)
        for x in (0.1, 0.3, 0.6, 0.9):
            h.add(x)
        assert sum(h.normalized()) == pytest.approx(1.0)

    def test_normalized_empty_is_zeros(self):
        h = Histogram(0.0, 1.0, bins=3)
        assert h.normalized() == [0.0, 0.0, 0.0]

    def test_bin_edges(self):
        h = Histogram(0.0, 1.0, bins=2)
        assert h.bin_edges() == [0.0, 0.5, 1.0]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 0.0, bins=2)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)


class TestJsonRoundTrip:
    """Every monitor restores its exact internal state through JSON."""

    def test_counter(self):
        c = Counter()
        c.incr("frames", 5)
        c.incr("drops")
        restored = Counter.from_json(json.loads(json.dumps(c.to_json())))
        assert restored.as_dict() == c.as_dict()
        restored.incr("frames")  # restored monitor keeps accumulating
        assert restored["frames"] == 6

    def test_running_stats_continue_bit_identically(self):
        data = [1.5, 2.5, 3.0, 4.0, 10.0, -2.0]
        rs = RunningStats()
        rs.extend(data[:3])
        restored = RunningStats.from_json(json.loads(json.dumps(rs.to_json())))
        rs.extend(data[3:])
        restored.extend(data[3:])
        assert restored.n == rs.n
        assert restored.mean == rs.mean  # exact, not approx
        assert restored.variance == rs.variance
        assert restored.minimum == rs.minimum
        assert restored.maximum == rs.maximum

    def test_running_stats_empty_nonfinite_state(self):
        payload = json.loads(json.dumps(RunningStats().to_json()))
        assert payload["min"] == "inf" and payload["max"] == "-inf"
        restored = RunningStats.from_json(payload)
        assert restored.n == 0
        assert math.isnan(restored.mean)
        restored.add(2.0)
        assert restored.minimum == restored.maximum == 2.0

    def test_time_weighted_value(self):
        tw = TimeWeightedValue(time=0.0, value=1.0)
        tw.set(2.0, 3.0)
        restored = TimeWeightedValue.from_json(
            json.loads(json.dumps(tw.to_json()))
        )
        tw.adjust(4.0, -1.0)
        restored.adjust(4.0, -1.0)
        assert restored.current == tw.current
        assert restored.average(5.0) == tw.average(5.0)

    def test_histogram(self):
        h = Histogram(0.0, 1.0, bins=4)
        for x in (-0.5, 0.1, 0.3, 0.6, 2.0):
            h.add(x)
        restored = Histogram.from_json(json.loads(json.dumps(h.to_json())))
        assert restored.counts == h.counts
        assert (restored.underflow, restored.overflow, restored.n) == (1, 1, 5)
        assert restored.bin_edges() == h.bin_edges()

    def test_histogram_payload_shape_validated(self):
        payload = Histogram(0.0, 1.0, bins=4).to_json()
        payload["counts"] = [0, 0]  # wrong bin count
        with pytest.raises(ValueError):
            Histogram.from_json(payload)
