"""Extension: flow-level fidelity makes massive scenarios tractable.

The frame-level core replays every individual frame, so a 10k-node
field at sensible duty cycles (~1.2M transactions over ten minutes) is
far beyond an interactive budget.  The flow core samples collisions per
concurrency window from the calibrated analytic model instead
(``docs/flow.md``), and this benchmark quantifies the claims from the
scenario family it ships with:

* the scaling rows run the family from 1k to 1M nodes — tens of
  millions of transactions — in seconds, linear in offered load;
* on the 100k-node row the vectorised fast path
  (:mod:`repro.flow.fastpath`) is measured against the scalar loop it
  is bit-identical to, and must clear the ISSUE's ≥2.5× bar;
* the same row runs sharded across a 4-worker
  :class:`~repro.exec.TrialRunner` (:mod:`repro.flow.shard`) — the
  result is asserted equal to the serial run, and the sharded wall
  time, per-worker utilization and shard cost balance are recorded.
  The sharded *speedup* is recorded but not asserted: it is a property
  of the host's core count, not of the code (CI runners may have one
  core; the bit-identity is what must hold everywhere).

Published metrics carry ``wall_time``, a ``layer_times`` breakdown and
a ``telemetry`` block (worker utilization/tasks), so ``repro
bench-trend`` tracks the wall time, where it went, and how evenly the
shards spread.
"""

from conftest import FULL_FIDELITY
from repro.exec import TrialRunner
from repro.experiments.results import Table
from repro.flow import (
    massive_scenario,
    partition_plan,
    pure_sampling,
    scenario_peak_density,
    simulate,
    simulate_sharded,
    window_plan,
)
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.spans import SpanProfiler, layer_breakdown, profiling

SIZES = (
    (2_000, 10_000, 100_000, 1_000_000)
    if FULL_FIDELITY
    else (1_000, 10_000, 100_000, 1_000_000)
)
HORIZON = 600.0 if FULL_FIDELITY else 120.0
WALL_BUDGET = 60.0  # the ISSUE acceptance bar for the largest row
SEED = 0
#: Row on which the fast-path and sharded measurements run (the 1M row
#: would measure the same code for strictly more wall time).
MEASURE_NODES = 100_000
#: ISSUE acceptance bar: fast path vs scalar loop on the 100k row.
MIN_FASTPATH_SPEEDUP = 2.5
SHARD_WORKERS = 4


def run_flow_scaling():
    clock = SpanProfiler.clock
    profiler = SpanProfiler()
    registry = MetricsRegistry()
    rows = []
    extras = {}
    with profiling(profiler), collecting(registry):
        for n_nodes in SIZES:
            scenario = massive_scenario(n_nodes=n_nodes, horizon=HORIZON)
            t0 = clock()
            result = simulate(scenario, SEED, fidelity="flow")
            wall = clock() - t0
            rows.append(
                {
                    "nodes": n_nodes,
                    "peak_density": scenario_peak_density(scenario),
                    "transactions": result.transactions,
                    "collision_rate": result.collision_rate,
                    "wall_time": wall,
                }
            )
            if n_nodes == MEASURE_NODES:
                extras = _measure(scenario, result, wall, clock)
    counters = {
        name: registry.counter(name)
        for name in (
            "flow.windows",
            "flow.transactions",
            "flow.collisions",
            "aff.checksum_failures",
        )
    }
    return rows, profiler.to_json(), extras, counters


def _measure(scenario, serial_result, serial_wall, clock):
    """Fast-path and sharded measurements on one scenario."""
    t0 = clock()
    with pure_sampling():
        pure_result = simulate(scenario, SEED, fidelity="flow")
    pure_wall = clock() - t0
    assert pure_result == serial_result  # fastpath bit-identity

    runner = TrialRunner(workers=SHARD_WORKERS)
    t0 = clock()
    sharded_result = simulate_sharded(
        scenario, SEED, fidelity="flow", shards=SHARD_WORKERS, runner=runner
    )
    sharded_wall = clock() - t0
    assert sharded_result == serial_result  # sharded bit-identity

    ranges = partition_plan(window_plan(scenario), SHARD_WORKERS)
    costs = [r.cost for r in ranges]
    telemetry = runner.telemetry.summary()
    return {
        "nodes": MEASURE_NODES,
        "pure_wall_time": pure_wall,
        "fast_wall_time": serial_wall,
        "fastpath_speedup": pure_wall / serial_wall,
        "sharded_wall_time": sharded_wall,
        "sharded_speedup": serial_wall / sharded_wall,
        "shards": len(ranges),
        "shard_costs": costs,
        "shard_balance": max(costs) / (sum(costs) / len(costs)),
        "telemetry": {
            "worker_utilization": telemetry["worker_utilization"],
            "worker_tasks": telemetry["worker_tasks"],
        },
    }


def test_flow_scaling(benchmark, publish):
    rows, spans, extras, counters = benchmark.pedantic(
        run_flow_scaling, rounds=1, iterations=1
    )

    table = Table(
        f"Extension: flow-level wall time vs network size "
        f"({HORIZON:.0f}s horizon)",
        ["nodes", "peak density", "transactions", "collision rate",
         "wall time (s)"],
    )
    for row in rows:
        table.add_row(
            row["nodes"],
            round(row["peak_density"], 1),
            row["transactions"],
            round(row["collision_rate"], 4),
            round(row["wall_time"], 3),
        )
    total_wall = sum(row["wall_time"] for row in rows)
    layers = layer_breakdown(spans)
    publish(
        "flow_scaling",
        table.render(),
        metrics={
            "sizes": list(SIZES),
            "horizon": HORIZON,
            "rows": rows,
            "wall_time": total_wall,
            "layer_times": {k: round(v, 6) for k, v in layers.items()},
            "largest_wall_time": rows[-1]["wall_time"],
            "fastpath_speedup": extras["fastpath_speedup"],
            "sharded": extras,
            "telemetry": extras["telemetry"],
            "counters": counters,
        },
    )

    # Deterministic counters: the registry agrees with the results the
    # rows report (collision rate = collisions / transactions), and the
    # pure-flow run never exercised the frame-level checksum path.
    assert counters["flow.transactions"] >= sum(r["transactions"] for r in rows)
    assert counters["flow.collisions"] > 0
    assert counters["aff.checksum_failures"] == 0

    largest = rows[-1]
    # The acceptance bar: the 1M-node family runs in well under a
    # minute at flow fidelity (frame-level replay would be tens of
    # millions of transactions and infeasible interactively).
    assert largest["nodes"] >= 1_000_000
    assert largest["wall_time"] < WALL_BUDGET
    # Offered load scales linearly with the node count...
    ratio = SIZES[-1] / SIZES[0]
    growth = rows[-1]["transactions"] / rows[0]["transactions"]
    assert 0.5 * ratio < growth < 2.0 * ratio
    # ...and the time went to the flow layer, visibly in the breakdown.
    assert layers.get("flow", 0.0) > 0.0
    # ISSUE acceptance: ≥2.5× on the 100k-node row from the vectorised
    # fast path (hardware-independent: both sides run on this host).
    assert extras["fastpath_speedup"] >= MIN_FASTPATH_SPEEDUP
    # Cost partitioning keeps the heaviest shard near the mean (the
    # burst window dominates; 2.0 allows one shard to carry it).
    assert extras["shard_balance"] < 2.0
