"""Content-addressed, on-disk trial-result cache.

Entries live at ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
SHA-256 content address from :func:`repro.exec.keys.trial_key` — the
hash of the trial function's qualified name, its parameters, its seed,
and the package version.  Because the *address* encodes the inputs,
invalidation is free: change anything and the lookup simply misses.
Entries are versioned envelopes (see
:mod:`repro.experiments.persistence`), so a future format change makes
old files unreadable-as-envelopes rather than silently mis-parsed;
unreadable or mismatched entries are deleted and recomputed.

Values are stored in transport encoding (:func:`repro.exec.runner`'s
JSON-safe form), which is exactly what workers ship over their result
pipes — a cache hit and a fresh computation are therefore
indistinguishable to the caller, byte for byte.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["CacheStats", "ResultCache"]

_KIND = "trial-result"


@dataclass
class CacheStats:
    """Traffic counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupted: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.writes = self.corrupted = 0


class ResultCache:
    """A directory of content-addressed trial results."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, transport-encoded value)`` for ``key``.

        A corrupted entry — truncated file, wrong schema, foreign kind,
        or a key mismatch from a hash truncation bug — counts as a miss,
        is deleted, and will be rewritten by the next :meth:`put`.

        Every hit re-stamps the entry's file times, giving
        :meth:`gc` a least-recently-*read* eviction order that works
        on ``noatime`` mounts too.
        """
        from ..experiments.persistence import EnvelopeError, load_envelope

        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return False, None
        try:
            payload = load_envelope(path, _KIND)
            if payload.get("key") != key:
                raise EnvelopeError(f"{path}: stored key does not match address")
            value = payload["value"]
        except (EnvelopeError, KeyError, OSError):
            self.stats.corrupted += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        try:
            os.utime(path)
        except OSError:
            pass  # read-only cache mounts still serve hits
        return True, value

    def put(self, key: str, value: Any, meta: Optional[Dict[str, Any]] = None) -> None:
        """Store a transport-encoded ``value`` under ``key`` (atomic).

        Every entry is stamped with the writing ``repro.__version__``:
        keys already incorporate the version, so old-version entries can
        never be *read* again — the stamp is what lets :meth:`gc` find
        and drop those orphans.
        """
        from .. import __version__
        from ..experiments.persistence import save_envelope

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        stamped = dict(meta) if meta else {}
        stamped.setdefault("version", __version__)
        payload = {"key": key, "value": value, "meta": stamped}
        save_envelope(path, _KIND, payload)
        self.stats.writes += 1

    # ------------------------------------------------------------------
    # Management (python -m repro cache)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Tuple[pathlib.Path, Optional[str]]]:
        """Yield ``(path, writer_version)`` for every stored entry.

        ``writer_version`` is None for entries that predate version
        stamping or cannot be parsed — both are orphans by definition
        (their keys were minted by some other version's key schema).
        """
        from ..experiments.persistence import EnvelopeError, load_envelope

        for path in sorted(self.root.glob("*/*.json")):
            try:
                payload = load_envelope(path, _KIND)
                version = payload.get("meta", {}).get("version")
            except (EnvelopeError, OSError):
                version = None
            yield path, version if isinstance(version, str) else None

    def disk_stats(self) -> Dict[str, Any]:
        """Entry count, total bytes, and entries-per-writer-version."""
        count = 0
        total_bytes = 0
        versions: Dict[str, int] = {}
        for path, version in self.entries():
            count += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
            label = version if version is not None else "(unstamped)"
            versions[label] = versions.get(label, 0) + 1
        return {
            "root": str(self.root),
            "entries": count,
            "bytes": total_bytes,
            "versions": dict(sorted(versions.items())),
        }

    def gc(
        self,
        keep_version: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Drop unreachable entries, then enforce a size cap.

        Entries not written by ``keep_version`` (default: current) go
        first: cache keys fold ``repro.__version__`` in, so entries
        stamped by any other version are unreachable forever — pure
        disk waste.  With ``max_bytes``, surviving entries are then
        evicted least-recently-read first (:meth:`get` re-stamps file
        times on every hit) until the total is within the cap.
        Returns the number of entries removed.
        """
        if keep_version is None:
            from .. import __version__ as keep_version  # type: ignore[no-redef]
        removed = 0
        survivors: List[Tuple[float, int, pathlib.Path]] = []
        for path, version in self.entries():
            if version != keep_version:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
                continue
            if max_bytes is not None:
                try:
                    stat = path.stat()
                except OSError:
                    continue
                survivors.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            survivors.sort(key=lambda item: (item[0], str(item[2])))
            for _, size, path in survivors:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                total -= size
        self._prune_empty_dirs()
        return removed

    def purge(self) -> int:
        """Delete every entry.  Returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._prune_empty_dirs()
        return removed

    def _prune_empty_dirs(self) -> None:
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"<ResultCache {self.root} stats={self.stats}>"
