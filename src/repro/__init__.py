"""repro — Random, Ephemeral Transaction Identifiers (RETRI).

A complete, from-scratch reproduction of *"Random, Ephemeral Transaction
Identifiers in Dynamic Sensor Networks"* (Elson & Estrin, ICDCS 2001):

* the **analytic model** of identifier-collision probability and
  transmission efficiency (:mod:`repro.core.model`),
* **identifier selection** algorithms — uniform, listening, oracle
  (:mod:`repro.core.identifiers`),
* **Address-Free Fragmentation**, the paper's case-study protocol,
  with the statically-addressed IP-style baseline (:mod:`repro.aff`),
* a **discrete-event simulated radio testbed** standing in for the
  paper's Radiometrix RPC hardware (:mod:`repro.sim`, :mod:`repro.radio`,
  :mod:`repro.topology`),
* the Section 6 **application contexts** — interest reinforcement and
  codebook name compression (:mod:`repro.apps`), and
* **experiment harnesses** regenerating every figure (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import optimal_identifier_bits, p_success
>>> optimal_identifier_bits(data_bits=16, density=16)[0]   # the paper's "9 bits"
9
"""

from .core import (
    IdentifierSelector,
    IdentifierSpace,
    ListeningSelector,
    OracleSelector,
    RetriPolicy,
    StaticGlobalPolicy,
    StaticLocalPolicy,
    DynamicLocalPolicy,
    Transaction,
    TransactionLog,
    UniformSelector,
    collision_probability,
    crossover_density,
    efficiency_aff,
    efficiency_static,
    min_static_bits,
    optimal_identifier_bits,
    p_success,
)
from .aff import AffDriver, Fragmenter, InstrumentedReceiver, Reassembler, StaticDriver
from .net import BitBudget, Packet
from .radio import BroadcastMedium, Frame, Radio
from .sim import RngRegistry, Simulator
from .topology import DiskGraph, FullMesh, Star

__version__ = "1.0.0"

__all__ = [
    "AffDriver",
    "BitBudget",
    "BroadcastMedium",
    "DiskGraph",
    "DynamicLocalPolicy",
    "Fragmenter",
    "Frame",
    "FullMesh",
    "IdentifierSelector",
    "IdentifierSpace",
    "InstrumentedReceiver",
    "ListeningSelector",
    "OracleSelector",
    "Packet",
    "Radio",
    "Reassembler",
    "RetriPolicy",
    "RngRegistry",
    "Simulator",
    "Star",
    "StaticDriver",
    "StaticGlobalPolicy",
    "StaticLocalPolicy",
    "Transaction",
    "TransactionLog",
    "UniformSelector",
    "collision_probability",
    "crossover_density",
    "efficiency_aff",
    "efficiency_static",
    "min_static_bits",
    "optimal_identifier_bits",
    "p_success",
    "__version__",
]
