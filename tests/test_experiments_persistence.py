"""Tests for JSON persistence of experiment results."""

import math

import pytest

from repro.experiments.figures import figure_1
from repro.experiments.persistence import (
    figure_from_json,
    figure_to_json,
    load_json,
    save_json,
    series_from_json,
    series_to_json,
    sweep_from_json,
    sweep_to_json,
)
from repro.experiments.results import Series
from repro.experiments.sweep import grid_sweep


class TestSeriesRoundTrip:
    def test_basic(self):
        s = Series(label="curve", x=[1.0, 2.0], y=[0.5, 0.7], yerr=[0.1, 0.2])
        restored = series_from_json(series_to_json(s))
        assert restored.label == s.label
        assert restored.x == s.x
        assert restored.y == s.y
        assert restored.yerr == s.yerr

    def test_without_error_bars(self):
        s = Series(label="c", x=[1.0], y=[0.5])
        restored = series_from_json(series_to_json(s))
        assert restored.yerr is None

    def test_nan_survives(self):
        s = Series(label="gap", x=[1.0, 2.0], y=[0.5, math.nan])
        restored = series_from_json(series_to_json(s))
        assert restored.y[0] == 0.5
        assert math.isnan(restored.y[1])


class TestFigureRoundTrip:
    def test_figure_1_round_trips(self):
        fig = figure_1()
        restored = figure_from_json(figure_to_json(fig))
        assert restored.name == fig.name
        assert [s.label for s in restored.series] == [s.label for s in fig.series]
        assert restored.series_by_label("AFF T=16").peak()[0] == 9
        assert restored.table.render() == fig.table.render()


class TestSweepRoundTrip:
    def test_round_trip_preserves_queries(self):
        sweep = grid_sweep(
            lambda a, seed: float(a + seed // 1000),
            grid={"a": [1, 2]},
            trials=2,
        )
        restored = sweep_from_json(sweep_to_json(sweep))
        assert restored.axes == sweep.axes
        assert restored.mean(a=2) == sweep.mean(a=2)
        assert restored.stdev(a=1) == sweep.stdev(a=1)


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        fig = figure_1()
        path = tmp_path / "fig1.json"
        save_json(path, figure_to_json(fig))
        restored = figure_from_json(load_json(path))
        assert restored.series_by_label("AFF T=16").peak()[0] == 9

    def test_output_is_valid_strict_json(self, tmp_path):
        """NaN must be encoded portably, not as bare `NaN`."""
        import json

        s = Series(label="gap", x=[1.0], y=[math.nan])
        path = tmp_path / "s.json"
        save_json(path, series_to_json(s))
        text = path.read_text()
        json.loads(text)  # strict parse succeeds
        assert "NaN" not in text

    def test_output_is_stable_for_diffing(self, tmp_path):
        fig = figure_1()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_json(a, figure_to_json(fig))
        save_json(b, figure_to_json(figure_1()))
        assert a.read_text() == b.read_text()
