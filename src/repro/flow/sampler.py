"""Windowed flow-level collision sampling.

Partitions a :class:`~repro.flow.streams.FlowScenario`'s horizon into
fixed-width concurrency windows, computes each window's observed
transaction density ``T`` from the streams active in it
(:func:`repro.core.model.effective_density`), and draws collision
outcomes per window from the analytic model instead of replaying
frames:

* transaction count: Poisson with mean ``λ_w · width`` — the same
  arrival law the discrete core integrates event by event;
* per-transaction collision: Bernoulli with probability from Eq. 4
  (``model="eq4"``) or the exact mixed-duration Poisson thinning model
  (:func:`repro.core.model.collision_probability_mixed`,
  ``model="mixed"``, the default — it is exact for the Poisson ground
  truth the discrete core simulates, so calibration divergence is pure
  sampling noise).

Every draw comes from a named :class:`repro.sim.rng.RngRegistry` stream
(``flow.window.<k>``), one per window, derived from the run's root
seed — so windows are statistically independent, results are a pure
function of ``(scenario, seed)``, and escalating one window to frame
fidelity (:mod:`repro.flow.hybrid`) cannot perturb any other window's
draws.  Lint rule FLOW001 enforces this: flow-level sampling code must
not touch ad-hoc ``random.*`` state.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from ..core.model import collision_probability, collision_probability_mixed
from ..obs.metrics import inc
from ..obs.spans import span
from ..sim.rng import RngRegistry
from .streams import FlowScenario

__all__ = [
    "FlowResult",
    "WindowOutcome",
    "WindowSpec",
    "sample_flow",
    "sample_window",
    "window_collision_probability",
    "window_plan",
]

#: Supported collision models (see module docstring).
COLLISION_MODELS: Tuple[str, ...] = ("eq4", "mixed")

#: Knuth's product-of-uniforms Poisson sampler underflows for large
#: means; means above this are split into chunks (a sum of independent
#: Poissons is Poisson in the summed mean).
_POISSON_CHUNK = 500.0


@dataclass(frozen=True)
class WindowSpec:
    """One concurrency window's offered load.

    ``durations``/``weights`` describe the active duration mix
    (rate-weighted); ``density`` is the window's Little's-law ``T``.
    """

    index: int
    t0: float
    t1: float
    arrival_rate: float
    durations: Tuple[float, ...]
    weights: Tuple[float, ...]
    density: float

    @property
    def width(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class WindowOutcome:
    """Sampled (or simulated) outcome of one window."""

    index: int
    fidelity: str
    transactions: int
    collisions: int
    density: float


@dataclass(frozen=True)
class FlowResult:
    """Aggregate outcome of a flow-level (or hybrid) run."""

    transactions: int
    collisions: int
    windows: Tuple[WindowOutcome, ...]

    @property
    def collision_rate(self) -> float:
        if self.transactions == 0:
            return float("nan")
        return self.collisions / self.transactions

    @property
    def frame_windows(self) -> int:
        return sum(1 for w in self.windows if w.fidelity == "frame")

    @property
    def mean_density(self) -> float:
        """Transaction-weighted mean window density."""
        if self.transactions == 0:
            return 0.0
        weighted = sum(w.density * w.transactions for w in self.windows)
        return weighted / self.transactions


def window_plan(scenario: FlowScenario) -> List[WindowSpec]:
    """The scenario's concurrency windows, in time order.

    A stream active for a fraction of a window contributes that
    fraction of its rate (time-averaged offered load); its duration
    enters the mix weighted by the contributed rate.
    """
    plan: List[WindowSpec] = []
    for index in range(scenario.n_windows):
        t0 = index * scenario.window
        t1 = min(t0 + scenario.window, scenario.horizon)
        width = t1 - t0
        rate = 0.0
        durations: List[float] = []
        weights: List[float] = []
        for stream in scenario.streams:
            share = stream.overlap(t0, t1) / width
            if share <= 0:
                continue
            contributed = stream.arrival_rate * share
            if contributed <= 0:
                continue
            rate += contributed
            durations.append(stream.duration)
            weights.append(contributed)
        density = sum(d * w for d, w in zip(durations, weights))
        plan.append(
            WindowSpec(
                index=index,
                t0=t0,
                t1=t1,
                arrival_rate=rate,
                durations=tuple(durations),
                weights=tuple(weights),
                density=density,
            )
        )
    return plan


@lru_cache(maxsize=4096)
def _collision_probability_cached(
    id_bits: int,
    model: str,
    arrival_rate: float,
    durations: Tuple[float, ...],
    weights: Tuple[float, ...],
    density: float,
) -> float:
    if model == "eq4":
        return float(collision_probability(id_bits, max(density, 1.0)))
    return float(
        collision_probability_mixed(
            id_bits,
            arrival_rate,
            list(durations),
            list(weights),
        )
    )


def window_collision_probability(
    id_bits: int, window: WindowSpec, model: str = "mixed"
) -> float:
    """Collision probability of one transaction in ``window``.

    Memoized on the load mix ``(arrival_rate, durations, weights,
    density)`` rather than the window's position: a stationary stream
    offers the same mix in every window, and a calibration sweep
    re-visits the same grid point across replicates, so the mixed
    model's numeric integration runs once per distinct mix instead of
    once per window (``tests/test_flow_sampler.py`` pins equivalence).
    """
    if model not in COLLISION_MODELS:
        raise ValueError(f"unknown collision model {model!r}")
    if window.arrival_rate <= 0:
        return 0.0
    return _collision_probability_cached(
        id_bits,
        model,
        window.arrival_rate,
        window.durations,
        window.weights,
        window.density,
    )


def _poisson_knuth(rng: random.Random, mean: float) -> int:
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def poisson(rng: random.Random, mean: float) -> int:
    """A Poisson draw with the given mean, exact at any scale.

    Chunked Knuth: means past :data:`_POISSON_CHUNK` are sampled as a
    sum of independent bounded-mean Poissons, avoiding ``exp(-mean)``
    underflow while staying an exact sampler.
    """
    if mean < 0:
        raise ValueError("mean must be >= 0")
    total = 0
    remaining = mean
    while remaining > _POISSON_CHUNK:
        total += _poisson_knuth(rng, _POISSON_CHUNK)
        remaining -= _POISSON_CHUNK
    return total + _poisson_knuth(rng, remaining)


def sample_window(
    window: WindowSpec,
    id_bits: int,
    rng: random.Random,
    model: str = "mixed",
) -> WindowOutcome:
    """Draw one window's transaction count and collision count.

    Draw order (count, then one Bernoulli per transaction) is part of
    the determinism contract; reordering re-rolls recorded runs.  When
    the stream is a plain ``random.Random`` and NumPy is available the
    draws run through the vectorised fast path
    (:mod:`repro.flow.fastpath`), which is bit-identical to this loop
    including the stream's final state.
    """
    from .fastpath import sample_window_fast

    fast = sample_window_fast(window, id_bits, rng, model)
    if fast is not None:
        inc("flow.fastpath_hits")
        return fast
    n = poisson(rng, window.arrival_rate * window.width)
    if n == 0:
        return WindowOutcome(window.index, "flow", 0, 0, window.density)
    p = window_collision_probability(id_bits, window, model)
    draw = rng.random
    collisions = sum(1 for _ in range(n) if draw() < p)
    return WindowOutcome(window.index, "flow", n, collisions, window.density)


def sample_flow(
    scenario: FlowScenario, seed: int, model: str = "mixed"
) -> FlowResult:
    """Pure flow-level run: every window sampled analytically.

    Each window draws from its own derived stream
    (``RngRegistry(seed).stream(f"flow.window.{k}")``), so the result
    is a pure function of ``(scenario, seed, model)`` and individual
    windows can be re-drawn (or escalated to frame fidelity) without
    touching their neighbours.
    """
    registry = RngRegistry(seed)
    outcomes: List[WindowOutcome] = []
    with span("flow.sample"):
        for spec in window_plan(scenario):
            rng = registry.stream(f"flow.window.{spec.index}")
            outcomes.append(sample_window(spec, scenario.id_bits, rng, model))
    return FlowResult(
        transactions=sum(w.transactions for w in outcomes),
        collisions=sum(w.collisions for w in outcomes),
        windows=tuple(outcomes),
    )
