"""Unit tests for flooding with RETRI duplicate suppression."""

import random

import pytest

from repro.apps.flooding import MAX_TTL, FloodCodec, FloodNode
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh, Grid, Line


class TestFloodCodec:
    def test_round_trip(self):
        codec = FloodCodec(id_bits=8)
        encoded = codec.encode(identifier=200, ttl=7, payload=b"hello")
        assert codec.decode(encoded) == (200, 7, b"hello")

    def test_header_bits(self):
        # kind(2) + id + ttl(4) + len(8)
        assert FloodCodec(id_bits=8).header_bits == 2 + 8 + 4 + 8

    def test_rejects_foreign_kind_codepoints(self):
        """AFF frames (kinds 0-2) must never parse as floods."""
        from repro.util.bits import BitstreamError, BitWriter

        codec = FloodCodec(id_bits=8)
        for kind in (0, 1, 2):
            alien = BitWriter().write(kind, 2).write(0xFFFF, 16).getvalue()
            with pytest.raises(BitstreamError):
                codec.decode(alien)

    def test_validation(self):
        codec = FloodCodec(id_bits=4)
        with pytest.raises(ValueError):
            codec.encode(identifier=16, ttl=1, payload=b"")
        with pytest.raises(ValueError):
            codec.encode(identifier=0, ttl=MAX_TTL + 1, payload=b"")
        with pytest.raises(ValueError):
            codec.encode(identifier=0, ttl=1, payload=b"\x00" * 256)
        with pytest.raises(ValueError):
            FloodCodec(id_bits=0)


def build_mesh(topology, n, id_bits=10, seed=0, **node_kwargs):
    sim = Simulator()
    medium = BroadcastMedium(sim, topology, rf_collisions=False)
    delivered = {i: [] for i in range(n)}
    nodes = {}
    for node_id in range(n):
        radio = Radio(medium, node_id, max_frame_bytes=64)
        nodes[node_id] = FloodNode(
            sim,
            radio,
            UniformSelector(IdentifierSpace(id_bits), random.Random(seed + node_id)),
            deliver=(lambda p, node_id=node_id: delivered[node_id].append(p)),
            rng=random.Random(seed + 1000 + node_id),
            **node_kwargs,
        )
    return sim, nodes, delivered


class TestFloodPropagation:
    def test_flood_covers_a_line(self):
        sim, nodes, delivered = build_mesh(Line(6), 6)
        nodes[0].originate(b"wave")
        sim.run()
        for node_id in range(1, 6):
            assert delivered[node_id] == [b"wave"]

    def test_originator_does_not_self_deliver(self):
        sim, nodes, delivered = build_mesh(Line(3), 3)
        nodes[0].originate(b"x")
        sim.run()
        assert delivered[0] == []

    def test_each_node_forwards_once(self):
        sim, nodes, delivered = build_mesh(Grid(3, 3), 9)
        nodes[0].originate(b"grid")
        sim.run()
        for node in nodes.values():
            assert node.stats.forwarded <= 1
        # Full coverage of the grid.
        assert all(delivered[i] == [b"grid"] for i in range(1, 9))

    def test_duplicates_suppressed_in_dense_mesh(self):
        sim, nodes, delivered = build_mesh(FullMesh(range(5)), 5)
        nodes[0].originate(b"dense")
        sim.run()
        total_suppressed = sum(n.stats.suppressed_duplicates for n in nodes.values())
        assert total_suppressed > 0  # re-broadcasts heard multiple times
        assert all(len(delivered[i]) == 1 for i in range(1, 5))

    def test_ttl_limits_reach(self):
        sim, nodes, delivered = build_mesh(Line(8), 8)
        nodes[0].originate(b"short", ttl=2)
        sim.run()
        # ttl=2: hop1 delivers+forwards(ttl1), hop2 delivers+forwards(ttl0),
        # hop3 delivers but does not forward -> nodes 1..3 deliver.
        assert delivered[3] == [b"short"]
        assert delivered[4] == []

    def test_two_distinct_floods_both_cover(self):
        sim, nodes, delivered = build_mesh(Line(5), 5, id_bits=12)
        nodes[0].originate(b"first")
        nodes[4].originate(b"second")
        sim.run()
        assert set(delivered[2]) == {b"first", b"second"}


class TestIdentifierCollisions:
    def test_forced_collision_suppresses_second_flood(self):
        """Two concurrent floods sharing an identifier: nodes that saw the
        first treat the second as a duplicate — coverage loss, no mixing."""
        sim = Simulator()
        medium = BroadcastMedium(sim, Line(5), rf_collisions=False)
        delivered = {i: [] for i in range(5)}

        class Fixed(UniformSelector):
            def select(self):
                self.selections += 1
                return 3

        nodes = {}
        for node_id in range(5):
            radio = Radio(medium, node_id, max_frame_bytes=64)
            nodes[node_id] = FloodNode(
                sim, radio, Fixed(IdentifierSpace(8), random.Random(node_id)),
                deliver=(lambda p, node_id=node_id: delivered[node_id].append(p)),
                rng=random.Random(50 + node_id),
            )
        nodes[0].originate(b"AAAA")
        sim.run()
        nodes[4].originate(b"BBBB")  # same identifier, within dedup window
        sim.run()
        # Everyone already has id 3 marked seen: flood B reaches nobody.
        assert all(b"BBBB" not in delivered[i] for i in range(4))
        # But nothing was corrupted: deliveries are exact payloads.
        for payloads in delivered.values():
            assert all(p in (b"AAAA", b"BBBB") for p in payloads)

    def test_identifier_reuse_after_window_is_fine(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, Line(3), rf_collisions=False)
        delivered = {i: [] for i in range(3)}

        class Fixed(UniformSelector):
            def select(self):
                self.selections += 1
                return 3

        nodes = {}
        for node_id in range(3):
            radio = Radio(medium, node_id, max_frame_bytes=64)
            nodes[node_id] = FloodNode(
                sim, radio, Fixed(IdentifierSpace(8), random.Random(node_id)),
                dedup_window=1.0,
                deliver=(lambda p, node_id=node_id: delivered[node_id].append(p)),
            )
        nodes[0].originate(b"AAAA")
        sim.run()
        sim.schedule(5.0, nodes[0].originate, b"BBBB")  # window expired
        sim.run()
        assert delivered[2] == [b"AAAA", b"BBBB"]


class TestStaticMode:
    def test_static_identifiers_carry_source_and_seq(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, Line(2), rf_collisions=False)
        node = FloodNode(
            sim,
            Radio(medium, 0, max_frame_bytes=64),
            UniformSelector(IdentifierSpace(14), random.Random(1)),
            static_source=5,
            seq_bits=8,
        )
        Radio(medium, 1, max_frame_bytes=64)
        first = node.originate(b"a")
        second = node.originate(b"b")
        assert first == (5 << 8) | 0
        assert second == (5 << 8) | 1

    def test_static_concurrent_floods_never_collide(self):
        from repro.experiments.scenarios import flooding_scenario

        result = flooding_scenario(
            id_bits=14, static=True, rows=4, cols=4, n_floods=15, seed=2
        )
        assert result["mean_coverage"] == pytest.approx(1.0)


class TestScenario:
    def test_coverage_improves_with_identifier_bits(self):
        from repro.experiments.scenarios import flooding_scenario

        small = flooding_scenario(id_bits=4, rows=4, cols=4, n_floods=20, seed=3)
        large = flooding_scenario(id_bits=12, rows=4, cols=4, n_floods=20, seed=3)
        assert large["mean_coverage"] > small["mean_coverage"]

    def test_retri_header_cheaper_than_static(self):
        from repro.experiments.scenarios import flooding_scenario

        retri = flooding_scenario(id_bits=10, rows=4, cols=4, n_floods=15, seed=4)
        static = flooding_scenario(
            id_bits=14, static=True, rows=4, cols=4, n_floods=15, seed=4
        )
        assert (
            retri["header_bits_per_flood"] < static["header_bits_per_flood"]
        )
