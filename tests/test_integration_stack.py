"""Integration tests: the full stack under adverse conditions.

These exercise sender -> MAC -> medium -> channel -> reassembly paths
with failure injection (frame loss, bursty loss, RF collisions, churn)
and check the system degrades the way the paper assumes: losses, never
corrupted deliveries; and deterministic given a seed.
"""

import random

import pytest

from repro.aff.driver import AffDriver
from repro.aff.instrumented import InstrumentedReceiver
from repro.apps.workloads import ContinuousStreamSender, PeriodicSender
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.net.packets import Packet
from repro.radio.channel import BernoulliChannel, GilbertElliottChannel
from repro.radio.mac import AlohaMac, CsmaMac
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.graphs import DiskGraph, FullMesh, Line
from repro.topology.dynamics import ChurnProcess


def sha(payloads):
    import hashlib

    h = hashlib.sha256()
    for p in sorted(payloads):
        h.update(p)
    return h.hexdigest()


class TestLossyChannels:
    def _run_with_channel(self, channel_factory, seed=0, duration=30.0):
        rngs = RngRegistry(seed)
        sim = Simulator()
        medium = BroadcastMedium(
            sim,
            FullMesh(range(3)),
            rf_collisions=False,
            channel_factory=channel_factory,
            rng=rngs.stream("medium"),
        )
        sent, got = [], []
        drivers = []
        for node in range(3):
            radio = Radio(medium, node)
            drivers.append(
                AffDriver(
                    radio,
                    UniformSelector(IdentifierSpace(16), rngs.stream(f"sel{node}")),
                    deliver=(lambda p, node=node: got.append((node, p))),
                    reassembly_timeout=2.0,
                )
            )
        rng = rngs.stream("traffic")
        for i in range(40):
            payload = rng.randbytes(60)
            sent.append(payload)
            sim.schedule(i * 0.5, drivers[0].send, Packet(payload=payload, origin=0))
        sim.run(until=duration)
        return sent, [p for node, p in got if node == 1]

    def test_bernoulli_loss_drops_packets_but_never_corrupts(self):
        sent, received = self._run_with_channel(
            lambda s, r: BernoulliChannel(0.15), seed=1
        )
        assert 0 < len(received) < len(sent)
        sent_set = set(sent)
        assert all(p in sent_set for p in received)

    def test_bursty_loss_also_never_corrupts(self):
        sent, received = self._run_with_channel(
            lambda s, r: GilbertElliottChannel(p_good_to_bad=0.05, p_bad_to_good=0.2),
            seed=2,
        )
        assert 0 < len(received) < len(sent)
        assert all(p in set(sent) for p in received)

    def test_higher_loss_delivers_fewer(self):
        _, light = self._run_with_channel(lambda s, r: BernoulliChannel(0.05), seed=3)
        _, heavy = self._run_with_channel(lambda s, r: BernoulliChannel(0.40), seed=3)
        assert len(heavy) < len(light)


class TestRfCollisionsWithCsma:
    def test_contending_senders_still_deliver_with_csma(self):
        rngs = RngRegistry(7)
        sim = Simulator()
        medium = BroadcastMedium(
            sim, FullMesh(range(4)), rf_collisions=True, rng=rngs.stream("m")
        )
        got = []
        receivers_radio = Radio(
            medium, 3, mac=CsmaMac(rng=rngs.stream("mac3"))
        )
        AffDriver(
            receivers_radio,
            UniformSelector(IdentifierSpace(16), rngs.stream("sel3")),
            deliver=got.append,
        )
        for node in range(3):
            radio = Radio(
                medium, node,
                mac=CsmaMac(rng=rngs.stream(f"mac{node}"), max_attempts=200),
            )
            driver = AffDriver(
                radio, UniformSelector(IdentifierSpace(16), rngs.stream(f"sel{node}"))
            )
            sender = PeriodicSender(
                sim, driver, node_id=node, packet_bytes=40, duration=30.0,
                rng=rngs.stream(f"t{node}"), interval=1.0, jitter=0.5,
            )
            sender.start()
        sim.run(until=35.0)
        assert len(got) > 50  # most of ~90 packets arrive despite contention


class TestChurnDuringTraffic:
    def test_nodes_leaving_mid_transfer_is_survivable(self):
        rngs = RngRegistry(11)
        sim = Simulator()
        topo = FullMesh(range(5))
        medium = BroadcastMedium(sim, topo, rf_collisions=False,
                                 rng=rngs.stream("m"))
        got = []
        drivers = {}
        for node in range(5):
            radio = Radio(medium, node)
            drivers[node] = AffDriver(
                radio,
                UniformSelector(IdentifierSpace(12), rngs.stream(f"s{node}")),
                deliver=(lambda p, node=node: got.append((node, p))),
            )
            if node > 0:
                sender = PeriodicSender(
                    sim, drivers[node], node_id=node, packet_bytes=60,
                    duration=30.0, rng=rngs.stream(f"t{node}"), interval=0.5,
                )
                sender.start()

        # Node 4 fails at t=10 (radio detached, topology unchanged first,
        # then removed — as a crashed node would be).
        def fail_node():
            drivers[4].radio.shutdown()
            topo.remove_node(4)

        sim.schedule(10.0, fail_node)
        sim.run(until=31.0)
        receivers_of_0 = [p for node, p in got if node == 0]
        assert len(receivers_of_0) > 30  # traffic from survivors flows on

    def test_churned_topology_with_poisson_churn_process(self):
        rngs = RngRegistry(13)
        sim = Simulator()
        topo = FullMesh(range(4))
        medium = BroadcastMedium(sim, topo, rf_collisions=False,
                                 rng=rngs.stream("m"))
        got = []
        for node in range(4):
            radio = Radio(medium, node)
            driver = AffDriver(
                radio,
                UniformSelector(IdentifierSpace(12), rngs.stream(f"s{node}")),
                deliver=got.append,
            )
            if node != 0:
                PeriodicSender(
                    sim, driver, node_id=node, packet_bytes=30, duration=20.0,
                    rng=rngs.stream(f"t{node}"), interval=1.0,
                ).start()
        churn = ChurnProcess(
            sim, topo, join_rate=0.5, rng=rngs.stream("churn")
        )
        churn.start()
        sim.run(until=21.0)
        assert got  # the network kept working while the topology changed


class TestMultihopVisibility:
    def test_line_topology_scopes_delivery(self):
        """AFF is single-hop: on a line, only direct neighbours receive."""
        rngs = RngRegistry(17)
        sim = Simulator()
        medium = BroadcastMedium(sim, Line(4), rf_collisions=False,
                                 rng=rngs.stream("m"))
        got = {n: [] for n in range(4)}
        drivers = {}
        for node in range(4):
            radio = Radio(medium, node)
            drivers[node] = AffDriver(
                radio,
                UniformSelector(IdentifierSpace(12), rngs.stream(f"s{node}")),
                deliver=got[node].append,
            )
        drivers[0].send(Packet(payload=b"hop" * 20, origin=0))
        sim.run()
        assert got[1] == [b"hop" * 20]
        assert got[2] == [] and got[3] == []

    def test_spatial_reuse_on_disconnected_segments(self):
        """Far-apart senders may use the same identifier simultaneously
        without any interference — RETRI's spatial locality."""
        rngs = RngRegistry(19)
        sim = Simulator()
        graph = DiskGraph(radio_range=0.2)
        graph.place(0, 0.0, 0.0)
        graph.place(1, 0.1, 0.0)   # pair A
        graph.place(2, 0.9, 0.9)
        graph.place(3, 0.8, 0.9)   # pair B, out of range of pair A
        medium = BroadcastMedium(sim, graph, rf_collisions=True,
                                 rng=rngs.stream("m"))
        got = {n: [] for n in range(4)}
        drivers = {}

        class Fixed(UniformSelector):
            def select(self):
                return 5  # everyone picks the same identifier

        for node in range(4):
            radio = Radio(medium, node)
            drivers[node] = AffDriver(
                radio,
                Fixed(IdentifierSpace(4), rngs.stream(f"s{node}")),
                deliver=got[node].append,
            )
        drivers[0].send(Packet(payload=b"A" * 50, origin=0))
        drivers[2].send(Packet(payload=b"B" * 50, origin=2))
        sim.run()
        assert got[1] == [b"A" * 50]
        assert got[3] == [b"B" * 50]


class TestDeterminism:
    def _full_run(self, seed):
        rngs = RngRegistry(seed)
        sim = Simulator()
        medium = BroadcastMedium(
            sim,
            FullMesh(range(4)),
            rf_collisions=False,
            channel_factory=lambda s, r: BernoulliChannel(0.1),
            rng=rngs.stream("m"),
        )
        receiver = InstrumentedReceiver(Radio(medium, 3), id_bits=6)
        for node in range(3):
            radio = Radio(medium, node, mac=AlohaMac(gap=0.02))
            driver = AffDriver(
                radio, UniformSelector(IdentifierSpace(6), rngs.stream(f"s{node}"))
            )
            ContinuousStreamSender(
                sim, driver, node_id=node, packet_bytes=80, duration=10.0,
                rng=rngs.stream(f"t{node}"),
            ).start()
        sim.run(until=11.0)
        return (
            receiver.counts.received_unique,
            receiver.counts.would_be_lost,
            receiver.counts.received_aff,
            sim.events_processed,
        )

    def test_identical_seeds_identical_universes(self):
        assert self._full_run(123) == self._full_run(123)

    def test_different_seeds_diverge(self):
        assert self._full_run(123) != self._full_run(321)
