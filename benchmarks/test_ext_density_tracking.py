"""Extension: adaptive density estimation under a load step.

The listening window is "the most recent 2T transactions" with T
estimated online (Section 5.1); the estimate is only useful if it tracks
*changes* in load.  A passive listener watches 2 senders for 20 s, then
10 senders for 20 s; its internal EWMA estimate must settle near each
phase's true density.
"""

from conftest import FULL_FIDELITY

from repro.experiments.results import Table
from repro.experiments.scenarios import density_step_tracking

PHASE = 30.0 if FULL_FIDELITY else 20.0


def test_density_step_tracking(benchmark, publish):
    result = benchmark.pedantic(
        density_step_tracking,
        kwargs=dict(low_senders=2, high_senders=10, phase_seconds=PHASE, seed=1),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Extension: listening node's T estimate tracking a load step "
        f"(2 senders -> 10 senders at t={PHASE:.0f}s)",
        ["window", "true T", "mean estimate"],
    )
    table.add_row("steady low", result["phase1_truth"],
                  result["phase1_mean_estimate"])
    table.add_row("steady high", result["phase2_truth"],
                  result["phase2_mean_estimate"])
    publish("ext_density_tracking", table.render())

    # The estimate separates the phases decisively...
    assert result["phase2_mean_estimate"] > 3 * result["phase1_mean_estimate"]
    # ...and lands within ~40% of each phase's truth.
    assert abs(result["phase1_mean_estimate"] - 2) <= 0.8
    assert abs(result["phase2_mean_estimate"] - 10) <= 4.0
