"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import (
    WAIT_TIMED_OUT,
    Interrupt,
    ProcessError,
    Signal,
    Timeout,
    WaitSignal,
    all_finished,
    spawn,
)


class TestTimeout:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield Timeout(2.0)
            times.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert times == [0.0, 2.0]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        times = []

        def proc():
            for _ in range(3):
                yield Timeout(1.5)
                times.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert times == [1.5, 3.0, 4.5]

    def test_zero_timeout_allowed(self):
        sim = Simulator()
        done = []

        def proc():
            yield Timeout(0.0)
            done.append(True)

        spawn(sim, proc())
        sim.run()
        assert done == [True]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ProcessError):
            Timeout(-1.0)


class TestSignal:
    def test_fire_wakes_waiter_with_value(self):
        sim = Simulator()
        sig = Signal(sim, "data")
        got = []

        def waiter():
            value = yield sig
            got.append(value)

        def firer():
            yield Timeout(1.0)
            sig.fire("payload")

        spawn(sim, waiter())
        spawn(sim, firer())
        sim.run()
        assert got == ["payload"]

    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []

        def waiter(tag):
            value = yield sig
            got.append((tag, value))

        for i in range(3):
            spawn(sim, waiter(i))
        sim.schedule(1.0, sig.fire, 42)
        sim.run()
        assert sorted(got) == [(0, 42), (1, 42), (2, 42)]

    def test_signal_is_reusable(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []

        def waiter():
            got.append((yield sig))
            got.append((yield sig))

        spawn(sim, waiter())
        sim.schedule(1.0, sig.fire, "a")
        sim.schedule(2.0, sig.fire, "b")
        sim.run()
        assert got == ["a", "b"]

    def test_fire_with_no_waiters_returns_zero(self):
        sim = Simulator()
        sig = Signal(sim)
        assert sig.fire() == 0
        assert sig.fire_count == 1

    def test_waiter_count(self):
        sim = Simulator()
        sig = Signal(sim)

        def waiter():
            yield sig

        spawn(sim, waiter())
        sim.run(max_events=1)  # let the process reach its yield
        assert sig.waiter_count == 1


class TestWaitSignalTimeout:
    def test_wait_times_out_with_sentinel(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []

        def waiter():
            value = yield WaitSignal(sig, timeout=2.0)
            got.append((value, sim.now))

        spawn(sim, waiter())
        sim.run()
        assert got == [(WAIT_TIMED_OUT, 2.0)]

    def test_fire_before_timeout_delivers_value(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []

        def waiter():
            value = yield WaitSignal(sig, timeout=5.0)
            got.append(value)

        spawn(sim, waiter())
        sim.schedule(1.0, sig.fire, "early")
        sim.run()
        assert got == ["early"]
        # The pending timeout must not wake the process a second time.
        assert sim.now < 5.0 or got == ["early"]

    def test_timeout_removes_process_from_signal_waiters(self):
        sim = Simulator()
        sig = Signal(sim)

        def waiter():
            yield WaitSignal(sig, timeout=1.0)

        spawn(sim, waiter())
        sim.run()
        assert sig.waiter_count == 0


class TestJoin:
    def test_join_receives_return_value(self):
        sim = Simulator()
        got = []

        def worker():
            yield Timeout(3.0)
            return "result"

        def parent():
            child = spawn(sim, worker())
            value = yield child
            got.append((value, sim.now))

        spawn(sim, parent())
        sim.run()
        assert got == [("result", 3.0)]

    def test_join_already_finished_process(self):
        sim = Simulator()
        got = []

        def worker():
            return "done"
            yield  # pragma: no cover

        def parent():
            child = spawn(sim, worker())
            yield Timeout(5.0)
            value = yield child
            got.append(value)

        spawn(sim, parent())
        sim.run()
        assert got == ["done"]

    def test_self_join_rejected(self):
        sim = Simulator()
        holder = {}

        def selfish():
            yield holder["proc"]

        holder["proc"] = spawn(sim, selfish())
        with pytest.raises(ProcessError):
            sim.run()

    def test_all_finished(self):
        sim = Simulator()

        def quick():
            yield Timeout(1.0)

        procs = [spawn(sim, quick()) for _ in range(3)]
        assert not all_finished(procs)
        sim.run()
        assert all_finished(procs)


class TestInterrupt:
    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield Timeout(100.0)
            except Interrupt as exc:
                caught.append((exc.cause, sim.now))

        p = spawn(sim, proc())
        sim.schedule(2.0, p.interrupt, "reason")
        sim.run()
        assert caught == [("reason", 2.0)]
        assert p.finished

    def test_unhandled_interrupt_finishes_process_cleanly(self):
        sim = Simulator()

        def proc():
            yield Timeout(100.0)

        p = spawn(sim, proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert p.finished
        assert p.error is None

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        p = spawn(sim, proc())
        sim.run()
        p.interrupt()
        sim.run()
        assert p.finished

    def test_interrupt_cancels_pending_timeout(self):
        sim = Simulator()

        def proc():
            try:
                yield Timeout(100.0)
            except Interrupt:
                pass

        p = spawn(sim, proc())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        # the 100 s timeout must not still be live
        assert sim.now < 100.0


class TestErrors:
    def test_bad_yield_value_raises(self):
        sim = Simulator()

        def proc():
            yield 42

        spawn(sim, proc())
        with pytest.raises(ProcessError):
            sim.run()

    def test_spawn_requires_generator(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            spawn(sim, lambda: None)  # type: ignore[arg-type]

    def test_exception_recorded_and_propagated(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            raise ValueError("inner")

        p = spawn(sim, proc())
        with pytest.raises(ValueError):
            sim.run()
        assert p.finished
        assert isinstance(p.error, ValueError)

    def test_process_return_value_recorded(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return 99

        p = spawn(sim, proc())
        sim.run()
        assert p.value == 99
