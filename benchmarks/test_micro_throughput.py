"""Microbenchmarks: throughput of the core primitives.

Not a paper figure — these time the building blocks so performance
regressions in the simulator or codec are caught: event-queue rate,
fragmentation/reassembly throughput, selector draw rate, the analytic
model's sweep speed, and the Monte Carlo single-trial path (fast event
core vs the pre-optimisation implementation, plus horizon-shard
scaling).  The Monte Carlo benchmark publishes ``micro_throughput``
(→ ``micro_throughput.txt`` + ``BENCH_micro_throughput.json``), which
``python -m repro bench-trend`` tracks across runs.
"""

import itertools
import random
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.aff.fragmenter import Fragmenter
from repro.aff.reassembler import Reassembler
from repro.aff.wire import FragmentCodec
from repro.core import model
from repro.core.identifiers import IdentifierSpace, ListeningSelector, UniformSelector
from repro.sim.engine import Simulator


def test_event_queue_throughput(benchmark):
    def run():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return counter[0]

    assert benchmark(run) == 10_000


def test_fragmentation_throughput(benchmark):
    frag = Fragmenter(FragmentCodec(9), mtu_bytes=27)
    payload = bytes(range(256)) * 4  # 1 KiB

    def run():
        plan = frag.fragment(payload, identifier=13)
        return sum(len(frag.codec.encode(f)) for f in plan.fragments)

    assert benchmark(run) > 0


def test_reassembly_throughput(benchmark):
    frag = Fragmenter(FragmentCodec(9), mtu_bytes=27)
    payload = bytes(range(256)) * 4
    fragments = frag.fragment(payload, identifier=13).fragments

    def run():
        reasm = Reassembler()
        out = None
        for f in fragments:
            result = reasm.accept(f, now=0.0)
            if result is not None:
                out = result
        return out

    assert benchmark(run) == payload


def test_uniform_selector_rate(benchmark):
    selector = UniformSelector(IdentifierSpace(9), random.Random(1))

    def run():
        return [selector.select() for _ in range(1000)]

    assert len(benchmark(run)) == 1000


def test_listening_selector_rate(benchmark):
    selector = ListeningSelector(
        IdentifierSpace(9), random.Random(1), density_hint=16
    )
    for i in range(64):
        selector.observe(i % 512)

    def run():
        return [selector.select() for _ in range(1000)]

    assert len(benchmark(run)) == 1000


def test_model_sweep_rate(benchmark):
    def run():
        total = 0.0
        for density in (4, 16, 64, 256, 1024):
            _, eff = model.sweep_aff_efficiency(16, density, (1, 48))
            total += float(eff.sum())
        return total

    assert benchmark(run) > 0


# ----------------------------------------------------------------------
# Monte Carlo single-trial throughput: fast event core + horizon shards
# ----------------------------------------------------------------------
# Baseline: a frozen replica of the Monte Carlo path as it stood before
# the fast event core landed — dict-backed field-equality Transaction,
# delegating TimeWeightedValue.adjust, and the build-list/double/sort
# replay.  Embedded here (rather than imported) so the current package
# can keep improving without dragging the baseline along with it.

_seed_txn_seq = itertools.count(1)


@dataclass
class _SeedTransaction:
    owner: int
    identifier: int
    start: float
    audience: Optional[frozenset] = None
    end: Optional[float] = None
    uid: int = field(default_factory=lambda: next(_seed_txn_seq))

    @property
    def open(self) -> bool:
        return self.end is None

    def shares_audience(self, other: "_SeedTransaction") -> bool:
        if self.audience is None or other.audience is None:
            return True
        return bool(self.audience & other.audience)


class _SeedTimeWeightedValue:
    def __init__(self, time: float = 0.0, value: float = 0.0):
        self._start = time
        self._last_time = time
        self._value = value
        self._integral = 0.0

    def set(self, time: float, value: float) -> None:
        if time < self._last_time:
            raise ValueError("TimeWeightedValue updates must be time-ordered")
        self._integral += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value

    def adjust(self, time: float, delta: float) -> None:
        self.set(time, self._value + delta)

    def average(self, now: float) -> float:
        integral = self._integral + self._value * (now - self._last_time)
        span = now - self._start
        return integral / span if span > 0 else self._value


class _SeedTransactionLog:
    def __init__(self) -> None:
        self._all: List[_SeedTransaction] = []
        self._open_by_id: Dict[int, List[_SeedTransaction]] = {}
        self._collided: Set[int] = set()
        self._density = _SeedTimeWeightedValue()
        self._last_time = 0.0

    def begin(self, owner, identifier, time, audience=None):
        txn = _SeedTransaction(
            owner=owner,
            identifier=identifier,
            start=time,
            audience=frozenset(audience) if audience is not None else None,
        )
        for peer in self._open_by_id.get(identifier, ()):
            if peer.owner != owner and txn.shares_audience(peer):
                self._collided.add(txn.uid)
                self._collided.add(peer.uid)
        self._all.append(txn)
        self._open_by_id.setdefault(identifier, []).append(txn)
        self._density.adjust(time, +1)
        self._last_time = max(self._last_time, time)
        return txn

    def end(self, txn, time):
        if not txn.open:
            raise ValueError("already ended")
        txn.end = time
        open_list = self._open_by_id.get(txn.identifier, [])
        if txn in open_list:
            open_list.remove(txn)
            if not open_list:
                del self._open_by_id[txn.identifier]
        self._density.adjust(time, -1)
        self._last_time = max(self._last_time, time)

    def collided(self, txn) -> bool:
        return txn.uid in self._collided

    def measured_density(self) -> float:
        return self._density.average(self._last_time)


def _seed_simulate(id_bits, arrival_rate, duration_sampler, horizon, rng, warmup=0.0):
    """The pre-fast-core simulate_collision_rate, verbatim semantics."""
    space = IdentifierSpace(id_bits)
    log = _SeedTransactionLog()
    events = []
    time = 0.0
    owner = 0
    while True:
        time += rng.expovariate(arrival_rate)
        if time >= horizon:
            break
        duration = duration_sampler(rng)
        events.append((time, 0, owner, duration))
        owner += 1
    stream = []
    for start, _, who, duration in events:
        stream.append((start, 1, who, duration))
        stream.append((start + duration, 0, who, duration))
    stream.sort(key=lambda e: (e[0], e[1]))

    open_txns = {}
    tracked = []
    for when, kind, who, duration in stream:
        if kind == 1:
            txn = log.begin(owner=who, identifier=space.sample(rng), time=when)
            open_txns[who] = txn
            if when >= warmup:
                tracked.append(txn)
        else:
            txn = open_txns.pop(who, None)
            if txn is not None:
                log.end(txn, when)
    collided = sum(1 for t in tracked if log.collided(t))
    return len(tracked), collided / len(tracked), log.measured_density()


_MC_ID_BITS = 10
_MC_RATE = 12.0
_MC_HORIZON = 2000.0
_MC_SEED = 9
_MC_SHARDS = 4


def _best_of(fn, repeats=3):
    """(best_wall_seconds, last_result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = _time.perf_counter()
        result = fn()
        wall = _time.perf_counter() - t0
        if wall < best:
            best = wall
    return best, result


def test_montecarlo_trial_throughput(benchmark, publish):
    """Fast event core vs the pre-change baseline, plus shard scaling.

    Three measurements on one long-horizon trial (~24k transactions):

    * the frozen pre-optimisation implementation above;
    * the current fast event core (also timed by pytest-benchmark, so
      its mean feeds ``bench-trend``) — asserted bit-identical to the
      baseline;
    * the sharded path at ``shards=4`` with ``workers=1``, giving
      honest isolated per-segment walls on any machine; the projected
      speedup is the critical path ``serial / (slowest segment +
      stitch overhead)``, i.e. what ``shards`` workers achieve when
      each segment really gets its own core.
    """
    from repro.core.montecarlo import ExponentialDuration, simulate_collision_rate
    from repro.exec import TrialRunner

    sampler = ExponentialDuration(1.0)

    def run_seed():
        return _seed_simulate(
            _MC_ID_BITS, _MC_RATE, sampler, _MC_HORIZON, random.Random(_MC_SEED)
        )

    def run_fast():
        r = simulate_collision_rate(
            _MC_ID_BITS, _MC_RATE, sampler, horizon=_MC_HORIZON, seed=_MC_SEED
        )
        return r.transactions, r.collision_rate, r.measured_density

    seed_wall, seed_result = _best_of(run_seed)
    fast_wall, fast_result = _best_of(run_fast)
    assert fast_result == seed_result, "fast core must be bit-identical"
    speedup = seed_wall / fast_wall

    def run_sharded():
        runner = TrialRunner(workers=1)
        r = simulate_collision_rate(
            _MC_ID_BITS,
            _MC_RATE,
            sampler,
            horizon=_MC_HORIZON,
            seed=_MC_SEED,
            shards=_MC_SHARDS,
            runner=runner,
        )
        return (r.transactions, r.collision_rate, r.measured_density), runner

    best_sharded = float("inf")
    segs: Dict[str, float] = {}
    sharded_result = None
    for _ in range(3):
        t0 = _time.perf_counter()
        result, runner = run_sharded()
        wall = _time.perf_counter() - t0
        if sharded_result is None:
            sharded_result = result
        assert result == sharded_result, "sharded result must be deterministic"
        if wall < best_sharded:
            best_sharded = wall
            segs = runner.last_telemetry.shard_timings()

    seg_walls = sorted(segs.values())
    overhead = best_sharded - sum(seg_walls)
    projected = fast_wall / (max(seg_walls) + overhead)

    # timing stream for bench-trend: the fast core, measured properly
    bench_result = benchmark(run_fast)
    assert bench_result == seed_result

    lines = [
        "Monte Carlo single-trial throughput "
        f"(id_bits={_MC_ID_BITS}, rate={_MC_RATE}, horizon={_MC_HORIZON}, "
        f"seed={_MC_SEED}, ~{seed_result[0]} transactions)",
        f"  pre-change baseline : {seed_wall * 1000:8.1f} ms",
        f"  fast event core     : {fast_wall * 1000:8.1f} ms  "
        f"({speedup:.2f}x, bit-identical)",
        f"  shards={_MC_SHARDS} (workers=1): {best_sharded * 1000:8.1f} ms wall, "
        f"segments {[round(s * 1000, 1) for s in seg_walls]} ms, "
        f"stitch overhead {overhead * 1000:.1f} ms",
        f"  projected speedup at {_MC_SHARDS} cores: {projected:.2f}x "
        "(serial / (slowest segment + overhead))",
    ]
    publish(
        "micro_throughput",
        "\n".join(lines),
        metrics={
            "transactions": seed_result[0],
            "collision_rate": seed_result[1],
            "seed_wall": seed_wall,
            "fast_wall": fast_wall,
            "fast_core_speedup": speedup,
            "sharded_wall": best_sharded,
            "shard_segment_walls": seg_walls,
            "shard_overhead": overhead,
            "projected_shard_speedup": projected,
            "shards": _MC_SHARDS,
        },
    )
    assert speedup >= 1.3, f"fast core speedup {speedup:.2f}x below the 1.3x floor"
    assert projected >= 2.5, (
        f"projected shard speedup {projected:.2f}x below the 2.5x floor"
    )
