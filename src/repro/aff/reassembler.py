"""AFF receiver side: reconstruct packets from identifier-keyed fragments.

The receiver's *only* key is the AFF identifier — no source address
exists (that is the whole point).  Consequences the paper calls out, all
modelled here:

* Two concurrent packets with the same identifier interleave into one
  reassembly entry; the checksum then fails (or spans conflict) and the
  corrupted packet "is never delivered" (Section 5).
* A lost introduction leaves data fragments orphaned until timeout.
* Stale entries must be evicted (we reuse
  :class:`~repro.net.reassembly.ReassemblyBuffer`'s timeout machinery).

Delivered packets are handed to a callback with their byte payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..net.checksum import ChecksumFn, fletcher16
from ..net.reassembly import ReassemblyBuffer
from ..obs.metrics import active_metrics
from ..obs.spans import active_profiler
from .wire import DataFragment, Fragment, IntroFragment

__all__ = ["Reassembler", "ReassemblerStats"]

DeliveryCallback = Callable[[bytes], None]


@dataclass
class ReassemblerStats:
    """Receiver-side outcome counters."""

    fragments_accepted: int = 0
    packets_delivered: int = 0
    checksum_failures: int = 0
    span_conflicts: int = 0
    intro_conflicts: int = 0
    evictions: int = 0


class Reassembler:
    """Reassembles AFF fragments keyed solely by AFF identifier.

    Parameters
    ----------
    checksum:
        Must match the sender's function.
    timeout:
        Idle seconds before a partial packet is evicted.
    deliver:
        Called with each successfully verified payload.
    """

    def __init__(
        self,
        checksum: ChecksumFn = fletcher16,
        timeout: float = 30.0,
        deliver: Optional[DeliveryCallback] = None,
        max_entries: int = 1024,
        on_conflict: Optional[Callable[[int], None]] = None,
        keep_orphan_spans: bool = False,
    ):
        self.checksum = checksum
        self.deliver = deliver
        #: called with the identifier whenever a collision is detected
        #: (intro or span conflict) — drivers hook collision notification
        #: broadcasts here (Section 3.2).
        self.on_conflict = on_conflict
        #: Orphan-span policy when an introduction arrives over data that
        #: has no introduction yet.  False (default): discard them — an
        #: introduction is transmitted first, so on an in-order radio
        #: (like the RPC's FIFO packet controller) orphans are always a
        #: stale or colliding packet's leftovers, and discarding keeps
        #: identifier reuse harmless.  True: keep them and let the final
        #: checksum arbitrate — required when the host reorders delivery
        #: (a packet's own data can then precede its introduction), at
        #: the cost of more losses under heavy identifier reuse.
        self.keep_orphan_spans = keep_orphan_spans
        self.stats = ReassemblerStats()
        self._buffer: ReassemblyBuffer[int] = ReassemblyBuffer(
            timeout=timeout, max_entries=max_entries
        )
        self._delivered: List[bytes] = []
        # Observational-only span profiling, bound at construction.
        self._profiler = active_profiler()
        # Deterministic counters (fragments, conflicts, checksum fates);
        # bound once here, one None-check per accept when off.
        self._metrics = active_metrics()

    # ------------------------------------------------------------------
    @property
    def delivered(self) -> List[bytes]:
        """All payloads delivered so far (also passed to the callback)."""
        return list(self._delivered)

    @property
    def pending(self) -> int:
        """Partial packets currently buffered."""
        return len(self._buffer)

    # ------------------------------------------------------------------
    def accept(self, fragment: Fragment, now: float = 0.0) -> Optional[bytes]:
        """Feed one received fragment; returns the payload if one completes.

        Collision pathologies are handled as the paper prescribes — the
        entry is dropped, nothing is delivered:

        * a second introduction disagreeing on length/checksum
          ("other inconsistencies"),
        * overlapping spans with different bytes,
        * a completed packet whose checksum fails.
        """
        prof = self._profiler
        if prof is None:
            return self._accept(fragment, now)
        t0 = prof.clock()
        payload = self._accept(fragment, now)
        prof.add("aff.reassemble", prof.clock() - t0)
        return payload

    def _accept(self, fragment: Fragment, now: float) -> Optional[bytes]:
        metrics = self._metrics
        self.stats.evictions += self._buffer.evict_stale(now)
        if not isinstance(fragment, (IntroFragment, DataFragment)):
            # Control fragments (e.g. collision notifications) carry no
            # reassembly state; they are the driver's business.
            return None
        self.stats.fragments_accepted += 1
        if metrics is not None:
            metrics.inc("aff.fragments_rx")
        entry = self._buffer.get_or_create(fragment.identifier, now)

        if isinstance(fragment, IntroFragment):
            # An introduction always begins a transaction (the sender
            # transmits it first), so any pre-existing state under this
            # identifier is a stale or colliding transaction.  Newest
            # wins: the old packet is lost (counted), the new one gets a
            # clean slate — identifier reuse over time stays harmless.
            if entry.total_length is not None and (
                entry.total_length != fragment.total_length
                or entry.expected_checksum != fragment.checksum
            ):
                self.stats.intro_conflicts += 1
                if metrics is not None:
                    metrics.inc("aff.id_collisions")
                if self.on_conflict is not None:
                    self.on_conflict(fragment.identifier)
                entry = self._reset_entry(fragment.identifier, now)
            elif (
                entry.total_length is None
                and entry.spans
                and not self.keep_orphan_spans
            ):
                # In-order radios: data never precedes its own intro, so
                # these spans belong to a stale or colliding packet.
                entry = self._reset_entry(fragment.identifier, now)
            entry.total_length = fragment.total_length
            entry.expected_checksum = fragment.checksum
        elif isinstance(fragment, DataFragment):
            if not entry.add_span(fragment.offset, fragment.payload):
                # Conflicting bytes: two packets share the identifier.
                # Keep only the newest fragment; the older packet is lost.
                self.stats.span_conflicts += 1
                if metrics is not None:
                    metrics.inc("aff.id_collisions")
                if self.on_conflict is not None:
                    self.on_conflict(fragment.identifier)
                entry = self._reset_entry(fragment.identifier, now)
                entry.add_span(fragment.offset, fragment.payload)

        if entry.is_complete():
            payload = entry.assemble()
            self._buffer.complete(fragment.identifier)
            if self.checksum(payload) != entry.expected_checksum:
                self.stats.checksum_failures += 1
                if metrics is not None:
                    metrics.inc("aff.checksum_failures")
                return None
            self.stats.packets_delivered += 1
            if metrics is not None:
                metrics.inc("aff.packets_delivered")
            self._delivered.append(payload)
            if self.deliver is not None:
                self.deliver(payload)
            return payload
        return None

    def _reset_entry(self, identifier: int, now: float):
        """Discard the entry for ``identifier`` and start a fresh one."""
        self._buffer.drop(identifier)
        return self._buffer.get_or_create(identifier, now)

    def flush_stale(self, now: float) -> int:
        """Explicitly evict idle partial packets (also done on accept)."""
        evicted = self._buffer.evict_stale(now)
        self.stats.evictions += evicted
        return evicted
