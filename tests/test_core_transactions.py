"""Unit tests for ground-truth transaction tracking."""

import math

import pytest

from repro.core.transactions import TransactionLog


class TestCollisionDetection:
    def test_same_id_overlapping_collides_both(self):
        log = TransactionLog()
        a = log.begin(owner=1, identifier=5, time=0.0)
        b = log.begin(owner=2, identifier=5, time=1.0)
        assert log.collided(a)
        assert log.collided(b)
        assert log.collision_count == 2

    def test_different_ids_never_collide(self):
        log = TransactionLog()
        a = log.begin(owner=1, identifier=5, time=0.0)
        b = log.begin(owner=2, identifier=6, time=0.0)
        assert not log.collided(a)
        assert not log.collided(b)

    def test_same_id_sequential_does_not_collide(self):
        """Ephemeral reuse over time is the whole point of RETRI."""
        log = TransactionLog()
        a = log.begin(owner=1, identifier=5, time=0.0)
        log.end(a, time=1.0)
        b = log.begin(owner=2, identifier=5, time=2.0)
        assert not log.collided(a)
        assert not log.collided(b)

    def test_same_owner_reuse_does_not_collide(self):
        """A node conflicting with itself is not an identifier collision
        (it would never confuse a receiver about *who* sent what)."""
        log = TransactionLog()
        a = log.begin(owner=1, identifier=5, time=0.0)
        b = log.begin(owner=1, identifier=5, time=0.5)
        assert not log.collided(a)
        assert not log.collided(b)

    def test_disjoint_audiences_do_not_collide(self):
        """Spatial reuse: far-apart nodes may share an identifier."""
        log = TransactionLog()
        a = log.begin(owner=1, identifier=5, time=0.0, audience={10, 11})
        b = log.begin(owner=2, identifier=5, time=0.0, audience={20, 21})
        assert not log.collided(a)
        assert not log.collided(b)

    def test_shared_receiver_collides(self):
        log = TransactionLog()
        a = log.begin(owner=1, identifier=5, time=0.0, audience={10, 11})
        b = log.begin(owner=2, identifier=5, time=0.0, audience={11, 12})
        assert log.collided(a) and log.collided(b)

    def test_none_audience_is_global(self):
        log = TransactionLog()
        a = log.begin(owner=1, identifier=5, time=0.0, audience=None)
        b = log.begin(owner=2, identifier=5, time=0.0, audience={99})
        assert log.collided(a) and log.collided(b)

    def test_three_way_collision_marks_all(self):
        log = TransactionLog()
        txns = [log.begin(owner=i, identifier=7, time=0.0) for i in range(3)]
        assert all(log.collided(t) for t in txns)
        assert log.collision_count == 3

    def test_collision_rate(self):
        log = TransactionLog()
        a = log.begin(owner=1, identifier=1, time=0.0)
        log.begin(owner=2, identifier=1, time=0.0)
        log.begin(owner=3, identifier=2, time=0.0)
        log.begin(owner=4, identifier=3, time=0.0)
        assert log.collision_rate() == pytest.approx(0.5)

    def test_empty_log_rate_is_nan(self):
        assert math.isnan(TransactionLog().collision_rate())

    def test_successes_and_failures_partition(self):
        log = TransactionLog()
        log.begin(owner=1, identifier=1, time=0.0)
        log.begin(owner=2, identifier=1, time=0.0)
        log.begin(owner=3, identifier=2, time=0.0)
        assert len(log.successes()) == 1
        assert len(log.failures()) == 2
        assert len(log.successes()) + len(log.failures()) == log.total


class TestLifecycle:
    def test_end_before_start_rejected(self):
        log = TransactionLog()
        t = log.begin(owner=1, identifier=1, time=5.0)
        with pytest.raises(ValueError):
            log.end(t, time=4.0)

    def test_double_end_rejected(self):
        log = TransactionLog()
        t = log.begin(owner=1, identifier=1, time=0.0)
        log.end(t, time=1.0)
        with pytest.raises(ValueError):
            log.end(t, time=2.0)

    def test_open_count(self):
        log = TransactionLog()
        a = log.begin(owner=1, identifier=1, time=0.0)
        log.begin(owner=2, identifier=2, time=0.0)
        assert log.open_count() == 2
        log.end(a, time=1.0)
        assert log.open_count() == 1


class TestDensityMeasurement:
    def test_sequential_transactions_density_one(self):
        log = TransactionLog()
        for i in range(4):
            t = log.begin(owner=1, identifier=i, time=float(i))
            log.end(t, time=float(i) + 1.0)
        assert log.measured_density() == pytest.approx(1.0)

    def test_fully_overlapping_density_n(self):
        log = TransactionLog()
        txns = [log.begin(owner=i, identifier=i, time=0.0) for i in range(5)]
        for t in txns:
            log.end(t, time=10.0)
        assert log.measured_density() == pytest.approx(5.0)

    def test_half_overlap(self):
        log = TransactionLog()
        a = log.begin(owner=1, identifier=1, time=0.0)
        b = log.begin(owner=2, identifier=2, time=5.0)
        log.end(a, time=10.0)
        log.end(b, time=10.0)
        # concurrency: 1 over [0,5), 2 over [5,10) -> 1.5 average
        assert log.measured_density() == pytest.approx(1.5)


class TestTransactionRepresentation:
    def test_slots_and_identity_equality(self):
        """The fast event core allocates one Transaction per arrival;
        __slots__ keeps them compact, and equality is identity (uids are
        unique, so field equality was identity in disguise anyway)."""
        log = TransactionLog()
        a = log.begin(owner=1, identifier=3, time=0.0)
        b = log.begin(owner=1, identifier=3, time=0.0)
        assert not hasattr(a, "__dict__")
        assert a == a
        assert a != b
        assert a.uid != b.uid

    def test_repr_reflects_state(self):
        log = TransactionLog()
        txn = log.begin(owner=2, identifier=7, time=1.0)
        assert "open" in repr(txn)
        log.end(txn, time=2.0)
        assert "end=2.000" in repr(txn)
