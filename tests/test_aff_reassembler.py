"""Unit tests for the AFF reassembler, especially collision pathologies."""

import pytest

from repro.aff.fragmenter import Fragmenter
from repro.aff.reassembler import Reassembler
from repro.aff.wire import DataFragment, FragmentCodec, IntroFragment
from repro.net.checksum import fletcher16


def plan_for(payload, identifier, id_bits=8, mtu=27):
    frag = Fragmenter(FragmentCodec(id_bits), mtu_bytes=mtu)
    return frag.fragment(payload, identifier=identifier)


def feed(reasm, fragments, now=0.0):
    delivered = []
    for f in fragments:
        out = reasm.accept(f, now=now)
        if out is not None:
            delivered.append(out)
    return delivered


class TestHappyPath:
    def test_delivers_exactly_once(self):
        payload = b"the quick brown fox jumps over the lazy dog" * 2
        reasm = Reassembler()
        delivered = feed(reasm, plan_for(payload, 5).fragments)
        assert delivered == [payload]
        assert reasm.stats.packets_delivered == 1

    def test_delivery_callback_invoked(self):
        got = []
        reasm = Reassembler(deliver=got.append)
        payload = b"x" * 50
        feed(reasm, plan_for(payload, 5).fragments)
        assert got == [payload]

    def test_duplicate_fragments_are_harmless(self):
        payload = b"abcdef" * 10
        plan = plan_for(payload, 9)
        reasm = Reassembler()
        doubled = [f for f in plan.fragments for _ in range(2)]
        delivered = feed(reasm, doubled)
        assert payload in delivered

    def test_interleaved_different_ids_both_deliver(self):
        a = plan_for(b"A" * 60, identifier=1).fragments
        b = plan_for(b"B" * 60, identifier=2).fragments
        interleaved = [f for pair in zip(a, b) for f in pair]
        reasm = Reassembler()
        delivered = feed(reasm, interleaved)
        assert set(delivered) == {b"A" * 60, b"B" * 60}

    def test_pending_counts_partial_packets(self):
        plan = plan_for(b"x" * 60, 3)
        reasm = Reassembler()
        feed(reasm, plan.fragments[:-1])
        assert reasm.pending == 1


class TestCollisionPathologies:
    def test_interleaved_same_id_loses_at_least_one(self):
        """Two concurrent packets on one identifier: the collision is
        detected and at most one packet survives; none is corrupted."""
        a = plan_for(b"A" * 60, identifier=7).fragments
        b = plan_for(b"B" * 60, identifier=7).fragments
        interleaved = [f for pair in zip(a, b) for f in pair]
        reasm = Reassembler()
        delivered = feed(reasm, interleaved)
        assert len(delivered) <= 1
        for payload in delivered:
            assert payload in (b"A" * 60, b"B" * 60)  # never a mix
        assert (
            reasm.stats.intro_conflicts
            + reasm.stats.span_conflicts
            + reasm.stats.checksum_failures
        ) >= 1

    def test_newest_intro_wins_cleanly_after_sequential_reuse(self):
        """Identifier reuse over time must not poison the later packet."""
        first = plan_for(b"first" * 10, identifier=4).fragments
        second = plan_for(b"second" * 10, identifier=4).fragments
        reasm = Reassembler()
        # First packet's intro arrives but its data is lost entirely.
        reasm.accept(first[0], now=0.0)
        # Later, a new packet reuses identifier 4.
        delivered = feed(reasm, second, now=1.0)
        assert delivered == [b"second" * 10]

    def test_orphan_spans_do_not_block_new_packet(self):
        """Data fragments whose introduction was lost are discarded when a
        fresh introduction claims the identifier."""
        lost = plan_for(b"L" * 60, identifier=2).fragments
        fresh = plan_for(b"F" * 60, identifier=2).fragments
        reasm = Reassembler()
        feed(reasm, lost[1:3])  # orphan data spans, no intro
        delivered = feed(reasm, fresh, now=0.5)
        assert delivered == [b"F" * 60]

    def test_mixed_packet_fails_checksum_not_delivered(self):
        """If interleaving happens to produce a complete-looking packet of
        mixed content, the checksum gate must reject it."""
        a = plan_for(b"A" * 44, identifier=1).fragments  # intro + 2 data
        b = plan_for(b"B" * 44, identifier=1).fragments
        reasm = Reassembler()
        reasm.accept(a[0], now=0.0)   # intro A (length 44, checksum over A)
        reasm.accept(b[1], now=0.0)   # data B offset 0
        out = reasm.accept(b[2], now=0.0)  # data B offset 22 -> complete
        # Payload is all B but the checksum came from A's intro... identical
        # length; contents differ -> must not deliver.
        assert out is None
        assert reasm.stats.checksum_failures == 1


class TestOrphanPolicy:
    def test_default_discards_orphans_for_id_reuse(self):
        """In-order default: stale orphan spans never poison a reusing
        packet (see test_orphan_spans_do_not_block_new_packet)."""
        lost = plan_for(b"L" * 60, identifier=2).fragments
        fresh = plan_for(b"F" * 60, identifier=2).fragments
        reasm = Reassembler()  # keep_orphan_spans=False
        feed(reasm, lost[1:3])
        assert feed(reasm, fresh, now=0.5) == [b"F" * 60]

    def test_keep_policy_reassembles_data_before_intro(self):
        """keep_orphan_spans=True: a reordered packet whose data arrived
        before its own introduction still reassembles."""
        plan = plan_for(b"reordered!" * 6, identifier=4)
        intro, data = plan.fragments[0], plan.fragments[1:]
        reasm = Reassembler(keep_orphan_spans=True)
        delivered = feed(reasm, data)  # data first (host reordering)
        assert delivered == []
        delivered = feed(reasm, [intro])
        assert delivered == [b"reordered!" * 6]

    def test_default_policy_loses_that_reordered_packet(self):
        """The documented cost of the in-order default."""
        plan = plan_for(b"reordered!" * 6, identifier=4)
        intro, data = plan.fragments[0], plan.fragments[1:]
        reasm = Reassembler()
        feed(reasm, data)
        assert feed(reasm, [intro]) == []  # orphans were discarded

    def test_keep_policy_rejects_stale_mix_by_checksum(self):
        """keep_orphan_spans=True 's safety net: a poisoned mix is caught
        by the checksum, never delivered corrupted."""
        stale = plan_for(b"S" * 60, identifier=2).fragments
        fresh = plan_for(b"F" * 60, identifier=2).fragments
        reasm = Reassembler(keep_orphan_spans=True)
        feed(reasm, stale[1:2])  # one stale orphan span at offset 0
        delivered = feed(reasm, fresh, now=0.5)
        assert b"S" * 60 not in delivered
        assert all(p == b"F" * 60 for p in delivered)


class TestTimeouts:
    def test_stale_partial_evicted(self):
        plan = plan_for(b"x" * 60, 3)
        reasm = Reassembler(timeout=5.0)
        feed(reasm, plan.fragments[:2], now=0.0)
        reasm.flush_stale(now=10.0)
        assert reasm.pending == 0
        assert reasm.stats.evictions == 1

    def test_eviction_happens_on_accept_too(self):
        old = plan_for(b"x" * 60, 3)
        fresh = plan_for(b"y" * 60, 9)
        reasm = Reassembler(timeout=5.0)
        feed(reasm, old.fragments[:2], now=0.0)
        feed(reasm, fresh.fragments, now=10.0)
        assert reasm.pending == 0
        assert reasm.stats.evictions == 1

    def test_active_entry_not_evicted(self):
        plan = plan_for(b"x" * 60, 3)
        reasm = Reassembler(timeout=5.0)
        feed(reasm, plan.fragments[:2], now=0.0)
        feed(reasm, [plan.fragments[2]], now=4.0)  # activity refreshes
        assert reasm.flush_stale(now=8.0) == 0


class TestZeroLength:
    def test_zero_length_packet_delivers_on_intro(self):
        reasm = Reassembler()
        intro = IntroFragment(identifier=1, total_length=0, checksum=fletcher16(b""))
        assert reasm.accept(intro, now=0.0) == b""
