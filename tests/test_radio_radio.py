"""Unit tests for the radio device."""

import pytest

from repro.radio.frame import Frame, FrameTooLargeError
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


def setup(n=2, **radio_kwargs):
    sim = Simulator()
    medium = BroadcastMedium(sim, FullMesh(range(n)))
    radios = {i: Radio(medium, i, **radio_kwargs) for i in range(n)}
    return sim, medium, radios


class TestSendValidation:
    def test_oversized_frame_rejected(self):
        sim, medium, radios = setup(max_frame_bytes=27)
        with pytest.raises(FrameTooLargeError):
            radios[0].send(Frame(payload=b"\x00" * 28, origin=0))

    def test_exactly_max_size_accepted(self):
        sim, medium, radios = setup(max_frame_bytes=27)
        radios[0].send(Frame(payload=b"\x00" * 27, origin=0))
        sim.run()
        assert radios[0].frames_sent == 1

    def test_wrong_origin_rejected(self):
        sim, medium, radios = setup()
        with pytest.raises(ValueError):
            radios[0].send(Frame(payload=b"x", origin=1))

    def test_double_attach_rejected(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(1)))
        Radio(medium, 0)
        with pytest.raises(ValueError):
            Radio(medium, 0)


class TestReceivePaths:
    def test_handler_and_listeners_both_called(self):
        sim, medium, radios = setup()
        handled, sniffed = [], []
        radios[1].set_receive_handler(handled.append)
        radios[1].add_listener(sniffed.append)
        radios[0].send(Frame(payload=b"x", origin=0))
        sim.run()
        assert len(handled) == 1
        assert len(sniffed) == 1

    def test_listener_called_before_handler(self):
        sim, medium, radios = setup()
        order = []
        radios[1].set_receive_handler(lambda f: order.append("handler"))
        radios[1].add_listener(lambda f: order.append("listener"))
        radios[0].send(Frame(payload=b"x", origin=0))
        sim.run()
        assert order == ["listener", "handler"]

    def test_remove_listener(self):
        sim, medium, radios = setup()
        sniffed = []
        radios[1].add_listener(sniffed.append)
        radios[1].remove_listener(sniffed.append.__self__ if False else sniffed.append)
        radios[0].send(Frame(payload=b"x", origin=0))
        sim.run()
        assert sniffed == []

    def test_no_handler_is_fine(self):
        sim, medium, radios = setup()
        radios[0].send(Frame(payload=b"x", origin=0))
        sim.run()
        assert radios[1].frames_received == 1

    def test_tx_listener_sees_own_transmissions(self):
        sim, medium, radios = setup()
        transmitted = []
        radios[0].add_tx_listener(transmitted.append)
        radios[0].send(Frame(payload=b"x", origin=0))
        sim.run()
        assert len(transmitted) == 1


class TestEnergy:
    def test_tx_and_rx_charged(self):
        sim, medium, radios = setup()
        radios[1].set_receive_handler(lambda f: None)
        radios[0].send(Frame(payload=b"\x00" * 10, origin=0))
        sim.run()
        assert radios[0].energy.tx_joules > 0
        assert radios[1].energy.rx_joules > 0
        assert radios[0].energy.rx_joules == 0
        assert radios[1].energy.tx_joules == 0

    def test_bigger_frames_cost_more(self):
        sim, medium, radios = setup()
        radios[0].send(Frame(payload=b"\x00" * 5, origin=0))
        sim.run()
        small = radios[0].energy.tx_joules
        radios[0].send(Frame(payload=b"\x00" * 25, origin=0))
        sim.run()
        assert radios[0].energy.tx_joules - small > small
