"""The paper's analytic model (Section 4).

Implements, exactly as published:

* Eq. 1 — efficiency ``E = useful bits received / total bits transmitted``
  (computed from ledgers by :class:`~repro.net.packets.BitBudget`; here we
  provide the closed forms).
* Eq. 2 — static allocation: ``E_static = D / (D + H)``.
* Eq. 3 — AFF: ``E_aff = D * P(success) / (D + H)``.
* Eq. 4 — ``P(success) = (1 - 2^-H)^(2(T-1))``: with all transactions the
  same length, each overlaps the start or end of at most ``2(T-1)``
  others; identifiers drawn uniformly and independently.

plus the derived quantities the figures need: the optimal identifier
size for a given data size and transaction density, the efficiency at
that optimum, and the static-vs-AFF crossover.  All functions accept
scalars or numpy arrays (they are pure numpy expressions), which is what
makes regenerating the figures' sweeps instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

__all__ = [
    "ModelPoint",
    "collision_probability",
    "collision_probability_mixed",
    "effective_density",
    "efficiency_aff",
    "efficiency_static",
    "expected_useful_bits",
    "min_static_bits",
    "network_lifetime_gain",
    "optimal_identifier_bits",
    "p_success",
    "p_success_listening",
    "p_success_mixed",
    "static_space_exhausted",
    "sweep_aff_efficiency",
    "crossover_density",
]

ArrayLike = Union[float, int, np.ndarray]


def p_success(id_bits: ArrayLike, density: ArrayLike) -> ArrayLike:
    """Eq. 4: probability a transaction avoids all identifier collisions.

    Parameters
    ----------
    id_bits:
        Identifier size ``H`` in bits (>= 0; 0 bits means a single shared
        identifier, so any contention kills the transaction).
    density:
        Transaction density ``T`` — the average number of concurrent
        transactions visible at one point in the network (>= 1).

    Notes
    -----
    The worst-case overlap count ``2(T-1)`` assumes every transaction
    spans the same duration (the paper's simplifying assumption).  With
    ``T = 1`` there is no contention and success is certain.
    """
    id_bits = np.asarray(id_bits, dtype=float)
    density = np.asarray(density, dtype=float)
    if np.any(id_bits < 0):
        raise ValueError("identifier size must be >= 0 bits")
    if np.any(density < 1):
        raise ValueError("transaction density must be >= 1")
    result = (1.0 - 2.0 ** (-id_bits)) ** (2.0 * (density - 1.0))
    if result.ndim == 0:
        return float(result)
    return result


def collision_probability(id_bits: ArrayLike, density: ArrayLike) -> ArrayLike:
    """``1 - P(success)``: the quantity plotted in the paper's Figure 4."""
    ps = p_success(id_bits, density)
    return 1.0 - ps


def efficiency_static(data_bits: ArrayLike, addr_bits: ArrayLike) -> ArrayLike:
    """Eq. 2: ``D / (D + H)`` for guaranteed-unique addressing.

    Ratio of data bits to total bits over an entire transaction; static
    allocation never loses transactions to identifier collisions.
    """
    data_bits = np.asarray(data_bits, dtype=float)
    addr_bits = np.asarray(addr_bits, dtype=float)
    if np.any(data_bits < 0) or np.any(addr_bits < 0):
        raise ValueError("bit counts must be >= 0")
    denom = data_bits + addr_bits
    result = np.where(denom > 0, data_bits / np.where(denom > 0, denom, 1.0), np.nan)
    if result.ndim == 0:
        return float(result)
    return result


def efficiency_aff(
    data_bits: ArrayLike, id_bits: ArrayLike, density: ArrayLike
) -> ArrayLike:
    """Eq. 3: ``D * P(success) / (D + H)`` for RETRI/AFF identifiers."""
    data_bits = np.asarray(data_bits, dtype=float)
    id_bits_arr = np.asarray(id_bits, dtype=float)
    e_header = efficiency_static(data_bits, id_bits_arr)
    result = np.asarray(e_header) * np.asarray(p_success(id_bits, density))
    if result.ndim == 0:
        return float(result)
    return result


def expected_useful_bits(
    data_bits: ArrayLike, id_bits: ArrayLike, density: ArrayLike
) -> ArrayLike:
    """Expected useful bits delivered per transaction: ``D * P(success)``."""
    data_bits = np.asarray(data_bits, dtype=float)
    result = data_bits * np.asarray(p_success(id_bits, density))
    if result.ndim == 0:
        return float(result)
    return result


def min_static_bits(n_nodes: int) -> int:
    """Smallest address size that can uniquely number ``n_nodes`` nodes.

    The "optimal allocation" bound of Section 4.2: tens of thousands of
    nodes -> about 16 bits.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    return max(1, math.ceil(math.log2(n_nodes)))


def static_space_exhausted(addr_bits: ArrayLike, density: ArrayLike) -> ArrayLike:
    """Figure 3's cliff: static allocation is undefined once ``T > 2^H``.

    More concurrent transactions than distinct addresses means unique
    assignment is impossible; the paper plots static efficiency as
    undefined beyond that load.
    """
    addr_bits = np.asarray(addr_bits, dtype=float)
    density = np.asarray(density, dtype=float)
    result = density > 2.0**addr_bits
    if result.ndim == 0:
        return bool(result)
    return result


def p_success_listening(
    id_bits: float,
    density: float,
    window_factor: float = 2.0,
    vulnerability: float = 0.16,
) -> float:
    """First-order model of the listening heuristic's success probability.

    The paper models only memoryless selection (Eq. 4) and defers
    listening to future work ("capturing the effects of listening ...
    will require a model of the system topology").  This is the
    first-order fully-connected version, built from two observations:

    1. **Residual pool.** A listener avoids the identifiers heard in the
       last ``w = window_factor * T`` transactions.  Those ``w``
       hearings contain duplicates; the expected number of *distinct*
       avoided identifiers out of a space of ``S = 2^H`` is
       ``S(1 - (1 - 1/S)^w)``, leaving a residual pool ``S_eff``.
    2. **Vulnerability window.** Hearing is not instantaneous: a peer
       that selects before it hears our introduction cannot avoid us.
       Only a fraction ``vulnerability`` of the ``2(T-1)`` potential
       overlaps fall in that blind window; those behave like uniform
       draws from the residual pool.

    Hence::

        P(success) = (1 - 1/S_eff)^(2 * vulnerability * (T-1))

    ``vulnerability`` depends on MAC timing (selection-to-introduction
    delay over transaction duration); the default 0.16 is calibrated
    once against the simulated RPC testbed and then predicts the
    measured listening rates within a factor of ~2 across identifier
    sizes — compared with Eq. 4's ~5x overestimate.  Treat it as a
    first-order engineering estimate, not an exact law (topology effects
    — hidden terminals — push results toward plain Eq. 4; see the
    hidden-terminal benchmark).
    """
    if id_bits < 0:
        raise ValueError("identifier size must be >= 0 bits")
    if density < 1:
        raise ValueError("transaction density must be >= 1")
    if window_factor < 0:
        raise ValueError("window_factor must be >= 0")
    if not 0.0 <= vulnerability <= 1.0:
        raise ValueError("vulnerability must be in [0, 1]")
    size = 2.0 ** float(id_bits)
    if size <= 1:
        return 0.0 if density > 1 else 1.0
    window = window_factor * density
    distinct_avoided = size * (1.0 - (1.0 - 1.0 / size) ** window)
    pool = max(2.0, size - min(distinct_avoided, size - 2.0))
    exponent = 2.0 * vulnerability * (density - 1.0)
    return float((1.0 - 1.0 / pool) ** exponent)


def network_lifetime_gain(
    data_bits: float, static_bits: float, density: float
) -> float:
    """Expected lifetime multiplier of AFF over static allocation.

    "AFF can result in a increase in efficiency and thus network
    lifetime" (Section 4.3): with energy proportional to bits
    transmitted, delivering the same useful data costs ``1/E`` of it, so
    the lifetime ratio is ``E_aff* / E_static`` with AFF at its optimal
    identifier size.  Values above 1 mean AFF extends the network's
    life; exactly the Figure 1 comparison collapsed to one number.

    Examples
    --------
    >>> round(network_lifetime_gain(16, 32, 16), 2)   # vs 32-bit addresses
    1.81
    """
    _bits, best_eff = optimal_identifier_bits(data_bits, density)
    e_static = efficiency_static(data_bits, static_bits)
    if e_static == 0:
        return math.inf
    return float(best_eff / e_static)


# ----------------------------------------------------------------------
# Non-uniform transaction lengths (the paper's stated future work:
# "capturing the effects of ... non-uniform transaction lengths in our
# model").
# ----------------------------------------------------------------------
def effective_density(arrival_rate: float, durations, weights=None) -> float:
    """Little's-law transaction density for a mixed-length workload.

    With transactions arriving as a Poisson process of rate ``λ`` and
    i.i.d. durations ``D``, the average number concurrently in progress
    is ``T = λ·E[D]`` — the quantity the paper's single parameter ``T``
    summarises.
    """
    if arrival_rate < 0:
        raise ValueError("arrival_rate must be >= 0")
    durations = np.asarray(durations, dtype=float)
    if np.any(durations < 0):
        raise ValueError("durations must be >= 0")
    mean_duration = float(np.average(durations, weights=weights))
    return arrival_rate * mean_duration


def p_success_mixed(
    id_bits: float, arrival_rate: float, durations, weights=None
) -> float:
    """Success probability under Poisson arrivals with mixed durations.

    A tagged transaction of duration ``d`` overlaps every transaction
    that starts during ``[t - D_other, t + d]``; under Poisson arrivals
    the number of overlappers is Poisson with mean ``λ(d + E[D])``, and
    independent uniform identifier choice thins the *colliding* ones to
    a Poisson with mean ``λ(d + E[D])·2^-H``.  Hence::

        P(success | d) = exp(-λ (d + E[D]) 2^-H)
        P(success)     = E_d[ P(success | d) ]

    For a single duration ``τ`` this reduces to ``exp(-2T·2^-H)`` with
    ``T = λτ``, matching Eq. 4's ``(1 - 2^-H)^(2(T-1))`` to first order
    (the paper's form counts ``2(T-1)`` worst-case overlaps; both agree
    as ``2^-H → 0``).

    The point of the extension: with heavy-tailed durations, *long*
    transactions collide far more than the mean suggests, so the
    duration-weighted success rate falls below what Eq. 4 predicts from
    ``T`` alone.
    """
    if arrival_rate < 0:
        raise ValueError("arrival_rate must be >= 0")
    if id_bits < 0:
        raise ValueError("identifier size must be >= 0 bits")
    durations = np.asarray(durations, dtype=float)
    if durations.size == 0:
        raise ValueError("need at least one duration")
    if np.any(durations < 0):
        raise ValueError("durations must be >= 0")
    mean_duration = float(np.average(durations, weights=weights))
    q = 2.0 ** (-float(id_bits))
    per_duration = np.exp(-arrival_rate * (durations + mean_duration) * q)
    return float(np.average(per_duration, weights=weights))


def collision_probability_mixed(
    id_bits: float, arrival_rate: float, durations, weights=None
) -> float:
    """``1 - p_success_mixed``: the mixed-length collision rate."""
    return 1.0 - p_success_mixed(id_bits, arrival_rate, durations, weights)


@dataclass(frozen=True)
class ModelPoint:
    """One evaluated model configuration (used by figure harnesses)."""

    data_bits: int
    id_bits: int
    density: float
    p_success: float
    efficiency: float


def optimal_identifier_bits(
    data_bits: float, density: float, max_bits: int = 64
) -> Tuple[int, float]:
    """The identifier size maximising Eq. 3, by exhaustive integer search.

    Identifier sizes are physically integral (you transmit whole bits),
    and the search space is tiny, so exhaustive search over
    ``H in [0, max_bits]`` is exact and instant.

    Returns
    -------
    (best_bits, best_efficiency)

    Examples
    --------
    The paper's headline number — 16-bit data, ``T = 16`` — gives 9 bits::

        >>> optimal_identifier_bits(16, 16)[0]
        9
    """
    if max_bits < 0:
        raise ValueError("max_bits must be >= 0")
    candidates = np.arange(0, max_bits + 1, dtype=float)
    efficiencies = efficiency_aff(data_bits, candidates, density)
    best_index = int(np.argmax(efficiencies))
    return int(candidates[best_index]), float(efficiencies[best_index])


def sweep_aff_efficiency(
    data_bits: float, density: float, bits_range: Tuple[int, int] = (1, 32)
) -> Tuple[np.ndarray, np.ndarray]:
    """Efficiency of AFF across identifier sizes — one curve of Figure 1/2.

    Returns ``(bits, efficiency)`` arrays over the inclusive range.
    """
    lo, hi = bits_range
    if lo > hi:
        raise ValueError("bits_range must be (lo, hi) with lo <= hi")
    bits = np.arange(lo, hi + 1, dtype=float)
    return bits, np.asarray(efficiency_aff(data_bits, bits, density))


def crossover_density(
    data_bits: float, static_bits: float, max_density: float = 2.0**40
) -> float:
    """The transaction density above which AFF stops beating static.

    For densities below the returned value, AFF at its *optimal*
    identifier size is strictly more efficient than static allocation
    with ``static_bits``-bit addresses; above it, static wins (or ties).
    Found by bisection on monotone-decreasing optimal-AFF efficiency.

    Returns ``inf`` if AFF wins at every density up to ``max_density``
    (e.g. against 48-bit Ethernet addresses with small data), and ``1.0``
    if AFF never wins.
    """
    e_static = efficiency_static(data_bits, static_bits)

    def aff_best(density: float) -> float:
        # Optimal H grows slowly with T; 64 bits is beyond any crossover
        # against realistic static sizes.
        return optimal_identifier_bits(data_bits, density)[1]

    lo, hi = 1.0, 2.0
    if aff_best(lo) <= e_static:
        return 1.0
    while aff_best(hi) > e_static:
        hi *= 2.0
        if hi > max_density:
            return math.inf
    # Invariant: aff_best(lo) > e_static >= aff_best(hi).
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if aff_best(mid) > e_static:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-6:
            break
    return (lo + hi) / 2.0
