"""Integration under realistic air: RF collisions + CSMA + loss together.

The model-validation runs isolate identifier collisions by disabling RF
collisions.  These tests turn the real physics back on — carrier-sensed
radios, collisions corrupting overlapping frames, background loss — and
check the protocols keep their contracts: substantial delivery, graceful
degradation, no corruption.
"""

import random

import pytest

from repro.aff.driver import AffDriver
from repro.apps.flooding import FloodNode
from repro.apps.workloads import PeriodicSender
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.net.packets import Packet
from repro.radio.channel import BernoulliChannel
from repro.radio.mac import CsmaMac
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.graphs import Grid


class TestFloodingOnRealisticAir:
    def _run(self, rf_collisions, loss=0.0, seed=101):
        rngs = RngRegistry(seed)
        sim = Simulator()
        grid = Grid(4, 4)
        medium = BroadcastMedium(
            sim,
            grid,
            rf_collisions=rf_collisions,
            channel_factory=(
                (lambda s, r: BernoulliChannel(loss)) if loss else None
            ),
            rng=rngs.stream("m"),
        )
        delivered = {n: set() for n in grid.nodes}
        nodes = {}
        for n in sorted(grid.nodes):
            radio = Radio(
                medium, n, max_frame_bytes=64,
                mac=CsmaMac(rng=rngs.stream(f"mac{n}"), max_attempts=200),
            )
            nodes[n] = FloodNode(
                sim, radio,
                UniformSelector(IdentifierSpace(12), rngs.stream(f"s{n}")),
                deliver=(lambda p, n=n: delivered[n].add(p)),
                rng=rngs.stream(f"f{n}"),
                forward_jitter=0.05,
            )
        payloads = [b"flood-%02d" % i for i in range(10)]
        for i, p in enumerate(payloads):
            sim.schedule(i * 1.0, nodes[i % 16].originate, p)
        sim.run(until=30.0)
        coverage = [
            (sum(1 for n in grid.nodes if p in delivered[n]) + 1) / 16
            for p in payloads
        ]
        return payloads, delivered, coverage

    def test_flooding_survives_rf_collisions(self):
        _payloads, _delivered, coverage = self._run(rf_collisions=True)
        # Forward jitter + CSMA keep the broadcast storm survivable.
        assert sum(coverage) / len(coverage) > 0.8

    def test_loss_degrades_coverage_gracefully(self):
        _p, _d, clean = self._run(rf_collisions=True, loss=0.0)
        _p, _d, lossy = self._run(rf_collisions=True, loss=0.25)
        assert sum(lossy) <= sum(clean)
        assert sum(lossy) / len(lossy) > 0.3  # floods still spread

    def test_never_delivers_foreign_payloads(self):
        payloads, delivered, _cov = self._run(rf_collisions=True, loss=0.1)
        valid = set(payloads)
        for received in delivered.values():
            assert received <= valid


class TestAffOnRealisticAir:
    def test_periodic_traffic_mostly_delivers_under_contention(self):
        rngs = RngRegistry(103)
        sim = Simulator()
        from repro.topology.graphs import FullMesh

        n = 6
        medium = BroadcastMedium(
            sim, FullMesh(range(n + 1)), rf_collisions=True,
            rng=rngs.stream("m"),
        )
        got = []
        AffDriver(
            Radio(medium, n, mac=CsmaMac(rng=rngs.stream("macr"),
                                         max_attempts=200)),
            UniformSelector(IdentifierSpace(12), rngs.stream("selr")),
            deliver=got.append,
        )
        offered = 0
        senders = []
        for node in range(n):
            radio = Radio(
                medium, node,
                mac=CsmaMac(rng=rngs.stream(f"mac{node}"), max_attempts=200),
            )
            driver = AffDriver(
                radio, UniformSelector(IdentifierSpace(12), rngs.stream(f"s{node}"))
            )
            sender = PeriodicSender(
                sim, driver, node_id=node, packet_bytes=40, duration=40.0,
                rng=rngs.stream(f"t{node}"), interval=2.0, jitter=1.0,
            )
            sender.start()
            senders.append(sender)
        sim.run(until=45.0)
        offered = sum(s.packets_offered for s in senders)
        assert offered > 80
        # CSMA keeps the medium usable: >70% of packets fully deliver at
        # the receiver despite six contending senders.
        assert len(got) / offered > 0.7
