"""Flow-level / hybrid-fidelity simulation (``repro.flow``).

The fourth execution fidelity of the stack, one level above the frame
simulator and the Monte Carlo event core: transaction *streams*
(arrival rate + duration descriptors, :mod:`~repro.flow.streams`) are
sampled per concurrency window from the paper's analytic collision
models (:mod:`~repro.flow.sampler`), with an optional hybrid switch
that replays only contended windows through the discrete event core
(:mod:`~repro.flow.hybrid`).  :mod:`~repro.flow.calibrate` pins the
flow sampler against the discrete ground truth on the Figure-4 grid.

Scale target (ROADMAP): 10k–1M-node scenarios, millions of
transactions, seconds of wall clock.  See ``docs/flow.md``.
"""

from .calibrate import (
    CalibrationPoint,
    CalibrationReport,
    calibrate,
    replicate_flow,
)
from .hybrid import DEFAULT_SWITCH_THRESHOLD, FIDELITY_MODES, simulate
from .sampler import (
    FlowResult,
    WindowOutcome,
    WindowSpec,
    sample_flow,
    sample_window,
    window_plan,
)
from .streams import (
    FlowScenario,
    TransactionStream,
    aggregate_node_workload,
    figure4_scenario,
    massive_scenario,
    scenario_peak_density,
)

__all__ = [
    "CalibrationPoint",
    "CalibrationReport",
    "DEFAULT_SWITCH_THRESHOLD",
    "FIDELITY_MODES",
    "FlowResult",
    "FlowScenario",
    "TransactionStream",
    "WindowOutcome",
    "WindowSpec",
    "aggregate_node_workload",
    "calibrate",
    "figure4_scenario",
    "massive_scenario",
    "replicate_flow",
    "sample_flow",
    "sample_window",
    "scenario_peak_density",
    "simulate",
    "window_plan",
]
