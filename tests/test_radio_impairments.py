"""Tests for receive-path fault injection and protocol robustness to it."""

import random

import pytest

from repro.aff.driver import AffDriver
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.net.packets import Packet
from repro.radio.frame import Frame
from repro.radio.impairments import ReceiveImpairments
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


def setup_link():
    sim = Simulator()
    medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False)
    tx = Radio(medium, 0)
    rx = Radio(medium, 1)
    return sim, tx, rx


class TestInjector:
    def test_requires_bound_handler(self):
        sim, tx, rx = setup_link()
        with pytest.raises(ValueError):
            ReceiveImpairments(rx)

    def test_transparent_at_zero_probabilities(self):
        sim, tx, rx = setup_link()
        got = []
        rx.set_receive_handler(got.append)
        ReceiveImpairments(rx, rng=random.Random(1))
        for i in range(10):
            tx.send(Frame(payload=bytes([i]), origin=0))
        sim.run()
        assert len(got) == 10

    def test_duplicates_injected_at_probability_one(self):
        sim, tx, rx = setup_link()
        got = []
        rx.set_receive_handler(got.append)
        imp = ReceiveImpairments(rx, duplicate_prob=1.0, rng=random.Random(2))
        tx.send(Frame(payload=b"x", origin=0))
        sim.run()
        assert len(got) == 2
        assert imp.stats.duplicates_injected == 1

    def test_reordering_delays_frames(self):
        sim, tx, rx = setup_link()
        got = []
        rx.set_receive_handler(lambda f: got.append(f.payload))

        class FlipFlop(random.Random):
            """Reorder exactly the first frame."""

            def __init__(self):
                super().__init__(0)
                self._calls = 0

            def random(self):
                self._calls += 1
                return 0.0 if self._calls == 1 else 1.0

        ReceiveImpairments(
            rx, reorder_prob=0.5, reorder_delay=0.5, rng=FlipFlop()
        )
        tx.send(Frame(payload=b"first", origin=0))
        tx.send(Frame(payload=b"second", origin=0))
        sim.run()
        assert got == [b"second", b"first"]

    def test_remove_restores_handler(self):
        sim, tx, rx = setup_link()
        got = []
        rx.set_receive_handler(got.append)
        imp = ReceiveImpairments(rx, duplicate_prob=1.0, rng=random.Random(3))
        imp.remove()
        tx.send(Frame(payload=b"x", origin=0))
        sim.run()
        assert len(got) == 1

    def test_invalid_parameters(self):
        sim, tx, rx = setup_link()
        rx.set_receive_handler(lambda f: None)
        with pytest.raises(ValueError):
            ReceiveImpairments(rx, duplicate_prob=1.5)
        with pytest.raises(ValueError):
            ReceiveImpairments(rx, reorder_delay=-1.0)


class TestProtocolRobustness:
    def _run_aff_under_impairment(self, **imp_kwargs):
        sim, tx_radio, rx_radio = setup_link()
        sender = AffDriver(
            tx_radio, UniformSelector(IdentifierSpace(12), random.Random(1))
        )
        delivered = []
        AffDriver(
            rx_radio,
            UniformSelector(IdentifierSpace(12), random.Random(2)),
            deliver=delivered.append,
            # A reordering host can deliver a packet's data before its own
            # introduction; keep orphan spans so the checksum arbitrates.
            keep_orphan_spans=True,
        )
        ReceiveImpairments(rx_radio, rng=random.Random(3), **imp_kwargs)
        payloads = [bytes([i]) * 60 for i in range(15)]
        for i, p in enumerate(payloads):
            sim.schedule(i * 0.1, sender.send, Packet(payload=p, origin=0))
        sim.run(until=10.0)
        return payloads, delivered

    def test_aff_survives_heavy_duplication(self):
        payloads, delivered = self._run_aff_under_impairment(duplicate_prob=0.8)
        assert delivered == payloads  # every packet once, intact, in order

    def test_aff_survives_reordering(self):
        payloads, delivered = self._run_aff_under_impairment(
            reorder_prob=0.4, reorder_delay=0.02
        )
        # Reordering within a packet is fine (offsets); delivery set intact.
        assert sorted(delivered) == sorted(payloads)

    def test_aff_survives_both_at_once(self):
        payloads, delivered = self._run_aff_under_impairment(
            duplicate_prob=0.5, reorder_prob=0.3, reorder_delay=0.01
        )
        assert sorted(delivered) == sorted(payloads)
