"""Unit tests for topology structural analysis."""

import math

from repro.topology.analysis import (
    connected_components,
    hidden_terminal_fraction,
    hidden_terminal_pairs,
    is_connected,
    mean_degree,
)
from repro.topology.graphs import ExplicitGraph, FullMesh, Line, Star


class TestHiddenTerminals:
    def test_full_mesh_has_none(self):
        assert hidden_terminal_pairs(FullMesh(range(5))) == set()
        assert hidden_terminal_fraction(FullMesh(range(5))) == 0.0

    def test_star_is_fully_hidden(self):
        star = Star(hub=9, leaves=range(4))
        pairs = hidden_terminal_pairs(star)
        # every pair of the 4 leaves is hidden at the hub: C(4,2) = 6
        assert len(pairs) == 6
        assert all(receiver == 9 for _, _, receiver in pairs)
        assert hidden_terminal_fraction(star) == 1.0

    def test_line_of_three_is_the_canonical_triple(self):
        line = Line(3)
        assert hidden_terminal_pairs(line) == {(0, 2, 1)}

    def test_fraction_nan_when_no_shared_receivers(self):
        g = ExplicitGraph(edges=[(0, 1)])
        assert math.isnan(hidden_terminal_fraction(g))

    def test_partial_hiding(self):
        # 0-1-2 plus edge 0-2 closed: triangle has no hidden pairs;
        # adding a pendant 3 on 1 creates hidden pairs at 1.
        g = ExplicitGraph(edges=[(0, 1), (1, 2), (0, 2), (1, 3)])
        pairs = hidden_terminal_pairs(g)
        assert (0, 3, 1) in pairs and (2, 3, 1) in pairs
        frac = hidden_terminal_fraction(g)
        assert 0.0 < frac < 1.0


class TestComponents:
    def test_single_component(self):
        assert is_connected(Line(5))
        assert len(connected_components(Line(5))) == 1

    def test_disconnected_graph(self):
        g = ExplicitGraph(edges=[(0, 1), (2, 3)])
        components = connected_components(g)
        assert len(components) == 2
        assert {frozenset(c) for c in components} == {
            frozenset({0, 1}),
            frozenset({2, 3}),
        }
        assert not is_connected(g)

    def test_isolated_nodes_are_singleton_components(self):
        g = ExplicitGraph(edges=[(0, 1)], nodes=[5])
        assert len(connected_components(g)) == 2

    def test_empty_graph_is_trivially_connected(self):
        assert is_connected(ExplicitGraph())


class TestMeanDegree:
    def test_full_mesh(self):
        assert mean_degree(FullMesh(range(6))) == 5.0

    def test_star(self):
        star = Star(hub=4, leaves=range(4))
        # hub degree 4, four leaves of degree 1 -> (4 + 4) / 5
        assert mean_degree(star) == (4 + 4) / 5

    def test_empty(self):
        assert mean_degree(ExplicitGraph()) == 0.0
