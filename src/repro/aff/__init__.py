"""Address-Free Fragmentation — the paper's RETRI case study.

* :mod:`repro.aff.wire` — bit-packed fragment formats.
* :mod:`repro.aff.fragmenter` / :mod:`repro.aff.reassembler` — the pure
  protocol halves.
* :mod:`repro.aff.driver` — binds them to a radio (the paper's Linux
  driver, reproduced).
* :mod:`repro.aff.instrumented` — the ground-truth receiver used to
  measure collision losses (Section 5.1's methodology).
* :mod:`repro.aff.static_frag` — the IP-style statically-addressed
  baseline.
"""

from .driver import AffDriver, AffDriverStats
from .fragmenter import Fragmenter, FragmentPlan
from .instrumented import InstrumentedCounts, InstrumentedReceiver
from .reassembler import Reassembler, ReassemblerStats
from .static_frag import StaticCodec, StaticData, StaticDriver, StaticIntro
from .wire import (
    DataFragment,
    FragmentCodec,
    IntroFragment,
    KIND_DATA,
    KIND_INTRO,
    KIND_NOTIFY,
    MalformedFragmentError,
    NotifyFragment,
)

__all__ = [
    "AffDriver",
    "AffDriverStats",
    "DataFragment",
    "FragmentCodec",
    "Fragmenter",
    "FragmentPlan",
    "InstrumentedCounts",
    "InstrumentedReceiver",
    "IntroFragment",
    "KIND_DATA",
    "KIND_INTRO",
    "KIND_NOTIFY",
    "MalformedFragmentError",
    "NotifyFragment",
    "Reassembler",
    "ReassemblerStats",
    "StaticCodec",
    "StaticData",
    "StaticDriver",
    "StaticIntro",
]
