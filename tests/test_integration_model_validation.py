"""Statistical validation: the simulated stack reproduces Eq. 4.

These are the test-suite versions of the Figure 4 benchmark: shorter
runs with tolerant bounds, checking the *relationships* the paper
asserts rather than exact rates.
"""

import pytest

from repro.core import model
from repro.experiments.harness import CollisionTrialConfig, run_collision_trial


def trial(id_bits, selector="uniform", seed=0, duration=25.0, n_senders=5):
    return run_collision_trial(
        CollisionTrialConfig(
            id_bits=id_bits,
            n_senders=n_senders,
            duration=duration,
            selector=selector,
            seed=seed,
        )
    )


class TestModelAgreement:
    @pytest.mark.parametrize("id_bits", [3, 4, 5, 6])
    def test_uniform_rate_tracks_model_from_below(self, id_bits):
        """Eq. 4 is the pessimistic bound for uniform selection: the
        measured rate must sit below it but within the same regime."""
        result = trial(id_bits, seed=17)
        bound = float(model.collision_probability(id_bits, 5))
        measured = result.collision_loss_rate
        assert measured <= bound + 0.05
        # Same regime: at least a third of the bound (the bound uses the
        # worst-case overlap count 2(T-1); real overlap is a bit lower).
        assert measured >= bound * 0.3

    def test_measured_density_close_to_sender_count(self):
        result = trial(5, seed=23)
        assert result.measured_density == pytest.approx(5.0, abs=0.8)

    def test_rate_scales_with_density(self):
        """More concurrent senders -> more collisions, as 2(T-1) predicts."""
        small = trial(5, n_senders=2, seed=29)
        large = trial(5, n_senders=8, seed=29)
        assert large.collision_loss_rate > small.collision_loss_rate

    def test_halving_the_space_roughly_doubles_small_rates(self):
        """In the small-rate regime, 1-(1-2^-H)^k ~ k*2^-H: one bit less
        of identifier should roughly double the collision rate."""
        r6 = trial(6, seed=31, duration=40.0)
        r7 = trial(7, seed=31, duration=40.0)
        ratio = r6.collision_loss_rate / max(r7.collision_loss_rate, 1e-9)
        assert 1.2 < ratio < 4.0

    def test_ground_truth_log_matches_model_too(self):
        result = trial(4, seed=37)
        bound = float(model.collision_probability(4, 5))
        assert result.ground_truth_collision_rate == pytest.approx(bound, abs=0.12)


class TestListeningImprovement:
    def test_listening_substantially_below_uniform_at_small_spaces(self):
        uniform = trial(4, selector="uniform", seed=41)
        listening = trial(4, selector="listening", seed=41)
        assert listening.collision_loss_rate < uniform.collision_loss_rate * 0.8

    def test_listening_below_model_bound(self):
        """The paper: 'Heuristics such as listening can improve
        significantly on this bound in practice.'"""
        listening = trial(5, selector="listening", seed=43)
        bound = float(model.collision_probability(5, 5))
        assert listening.collision_loss_rate < bound

    def test_oracle_is_the_floor(self):
        oracle = trial(4, selector="oracle", seed=47)
        listening = trial(4, selector="listening", seed=47)
        assert oracle.collision_loss_rate == 0.0
        assert listening.collision_loss_rate >= 0.0
