"""Ablation: does fewer bits mean less energy?  (Section 4.4)

The paper: saving ~20 header bits matters on radios with simple framing
(Radiometrix RPC) and 'becomes meaningless if used with a MAC layer such
as 802.11 that adds hundreds of bits of overhead per packet'.  We run
the same AFF-vs-static workload under both energy profiles and compare
joules per delivered packet.
"""

import random

from conftest import DURATION

from repro.aff.driver import AffDriver
from repro.aff.static_frag import StaticDriver
from repro.apps.workloads import PeriodicSender
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.core.policies import StaticGlobalPolicy
from repro.experiments.results import Table
from repro.radio.energy import RPC_PROFILE, WIFI_LIKE_PROFILE
from repro.radio.mac import CsmaMac
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.graphs import FullMesh


def run_one(scheme, id_bits, profile, seed=21):
    rngs = RngRegistry(seed)
    sim = Simulator()
    medium = BroadcastMedium(sim, FullMesh(range(6)), rf_collisions=False,
                             rng=rngs.stream("m"))
    delivered = []
    rx_radio = Radio(medium, 5, energy_model=profile,
                     mac=CsmaMac(rng=rngs.stream("macrx")))
    if scheme == "aff":
        AffDriver(rx_radio,
                  UniformSelector(IdentifierSpace(id_bits), rngs.stream("selrx")),
                  deliver=delivered.append)
        policy = None
    else:
        policy = StaticGlobalPolicy(addr_bits=id_bits, rng=rngs.stream("policy"))
        StaticDriver(rx_radio, policy, deliver=delivered.append)

    tx_radios = []
    for node in range(5):
        radio = Radio(medium, node, energy_model=profile,
                      mac=CsmaMac(rng=rngs.stream(f"mac{node}")))
        tx_radios.append(radio)
        if scheme == "aff":
            driver = AffDriver(
                radio,
                UniformSelector(IdentifierSpace(id_bits), rngs.stream(f"s{node}")),
            )
        else:
            driver = StaticDriver(radio, policy)
        PeriodicSender(sim, driver, node_id=node, packet_bytes=2,
                       duration=DURATION, rng=rngs.stream(f"t{node}"),
                       interval=0.5, jitter=0.2).start()
    sim.run(until=DURATION + 2.0)
    tx_joules = sum(r.energy.tx_joules for r in tx_radios)
    return tx_joules / max(1, len(delivered))


def test_energy_regimes(benchmark, publish):
    def run_all():
        out = {}
        for profile_name, profile in (("rpc", RPC_PROFILE),
                                      ("wifi-like", WIFI_LIKE_PROFILE)):
            for scheme, bits in (("aff", 9), ("static", 32)):
                out[(profile_name, scheme)] = run_one(scheme, bits, profile)
        return out

    joules = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        "Ablation: energy per delivered packet, AFF(9-bit) vs static(32-bit), "
        "2-byte readings",
        ["radio profile", "AFF J/pkt", "static J/pkt", "AFF saving"],
    )
    for profile_name in ("rpc", "wifi-like"):
        aff = joules[(profile_name, "aff")]
        static = joules[(profile_name, "static")]
        table.add_row(profile_name, aff, static, 1 - aff / static)
    publish("ext_energy_profiles", table.render())

    saving_rpc = 1 - joules[("rpc", "aff")] / joules[("rpc", "static")]
    saving_wifi = 1 - joules[("wifi-like", "aff")] / joules[("wifi-like", "static")]
    # Section 4.4: the saving is real on simple radios and washes out
    # under heavy per-frame MAC overhead.
    assert saving_rpc > 0.1
    assert saving_wifi < saving_rpc / 2
