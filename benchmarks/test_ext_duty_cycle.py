"""Ablation: listening effectiveness vs radio duty cycle.

"Packet loss may also prevent perfect listening.  In addition, some
nodes may choose to minimize the time they spend listening because of
the significant power requirements of running a radio" (Section 3.2).
This ablation sweeps the fraction of introductions a listening sender
actually overhears: at 0% it degenerates to uniform selection, at 100%
it is the full heuristic, and the in-between curve shows listening
degrades *gracefully* — partial listening still buys a real reduction.
"""

from conftest import DURATION

from repro.core.model import collision_probability
from repro.experiments.harness import CollisionTrialConfig, run_collision_trial
from repro.experiments.results import Table

DUTY_CYCLES = (0.0, 0.25, 0.5, 0.75, 1.0)
ID_BITS = 4


def run_sweep():
    rows = []
    for duty in DUTY_CYCLES:
        result = run_collision_trial(
            CollisionTrialConfig(
                id_bits=ID_BITS,
                duration=DURATION,
                selector="listening",
                listen_duty_cycle=duty,
                seed=31,
            )
        )
        rows.append((duty, result.collision_loss_rate))
    uniform = run_collision_trial(
        CollisionTrialConfig(
            id_bits=ID_BITS, duration=DURATION, selector="uniform", seed=31
        )
    )
    return rows, uniform.collision_loss_rate


def test_duty_cycle(benchmark, publish):
    rows, uniform_rate = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        f"Ablation: listening vs radio duty cycle (H={ID_BITS}, T=5; "
        f"uniform baseline {uniform_rate:.4f}, "
        f"model bound {float(collision_probability(ID_BITS, 5)):.4f})",
        ["duty cycle", "collision loss rate"],
    )
    for duty, rate in rows:
        table.add_row(duty, rate)
    publish("ext_duty_cycle", table.render())

    by_duty = dict(rows)
    # Zero listening ~ uniform selection.
    assert abs(by_duty[0.0] - uniform_rate) < 0.08
    # Full listening is the best point of the sweep (within noise).
    assert by_duty[1.0] <= min(by_duty.values()) + 0.02
    # Even half-time listening beats not listening.
    assert by_duty[0.5] < by_duty[0.0]
