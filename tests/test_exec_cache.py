"""Tests for the content-addressed result cache and envelope format."""

import json

import pytest

import repro
from repro.exec import ResultCache, TrialRunner, TrialSpec, trial_key
from repro.experiments.persistence import (
    EnvelopeError,
    load_envelope,
    save_envelope,
    sweep_to_json,
)
from repro.experiments.sweep import grid_sweep


def counting_trial(log):
    """A trial fn that records every actual execution in ``log``."""

    def trial(x, seed):
        log.append((x, seed))
        return x + (seed % 11) * 0.5

    return trial


class TestTrialKey:
    def test_stable_for_identical_inputs(self):
        a = trial_key("pkg.fn", {"x": 1, "y": 2.5}, seed=9, version="1.0.0")
        b = trial_key("pkg.fn", {"y": 2.5, "x": 1}, seed=9, version="1.0.0")
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_any_input_change_misses(self):
        base = trial_key("pkg.fn", {"x": 1}, seed=9, version="1.0.0")
        assert trial_key("pkg.fn", {"x": 2}, seed=9, version="1.0.0") != base
        assert trial_key("pkg.fn", {"x": 1}, seed=8, version="1.0.0") != base
        assert trial_key("pkg.fn", {"x": 1}, seed=9, version="1.0.1") != base
        assert trial_key("pkg.other", {"x": 1}, seed=9, version="1.0.0") != base


class TestResultCache:
    def test_round_trip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = trial_key("fn", {"x": 1}, 0, repro.__version__)
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, {"value": 1.5}, meta={"label": "t"})
        hit, stored = cache.get(key)
        assert hit
        assert stored == {"value": 1.5}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1
        assert len(cache) == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = trial_key("fn", {"x": 1}, 0, repro.__version__)
        cache.put(key, 3.0)
        path = cache.path_for(key)
        path.write_text("{not json at all")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.corrupted == 1
        assert not path.exists()  # deleted, next put rewrites it
        cache.put(key, 3.0)
        assert cache.get(key) == (True, 3.0)

    def test_wrong_kind_and_key_mismatch_count_as_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = trial_key("fn", {"x": 1}, 0, repro.__version__)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_envelope(path, "run-telemetry", {"key": key, "value": 1})
        assert cache.get(key) == (False, None)
        save_envelope(path, "trial-result", {"key": "somebody-else", "value": 1})
        assert cache.get(key) == (False, None)
        assert cache.stats.corrupted == 2


class TestRunnerCacheIntegration:
    def test_identical_sweep_is_served_from_cache(self, tmp_path):
        log = []
        trial = counting_trial(log)
        grid = {"x": [1, 2]}

        cold_runner = TrialRunner(cache=ResultCache(tmp_path / "c"))
        cold = grid_sweep(trial, grid=grid, trials=2, runner=cold_runner)
        assert len(log) == 4
        assert cold_runner.telemetry.cache_hits == 0
        assert cold_runner.telemetry.cache_writes == 4

        warm_runner = TrialRunner(cache=ResultCache(tmp_path / "c"))
        warm = grid_sweep(trial, grid=grid, trials=2, runner=warm_runner)
        assert len(log) == 4  # nothing recomputed
        assert warm_runner.telemetry.cache_hits == 4
        assert warm_runner.telemetry.computed == 0
        assert json.dumps(sweep_to_json(cold), sort_keys=True) == json.dumps(
            sweep_to_json(warm), sort_keys=True
        )

    def test_changed_params_or_base_seed_miss(self, tmp_path):
        log = []
        trial = counting_trial(log)
        cache_dir = tmp_path / "c"

        grid_sweep(
            trial, grid={"x": [1]}, trials=1,
            runner=TrialRunner(cache=ResultCache(cache_dir)),
        )
        grid_sweep(
            trial, grid={"x": [2]}, trials=1,
            runner=TrialRunner(cache=ResultCache(cache_dir)),
        )
        grid_sweep(
            trial, grid={"x": [1]}, trials=1, base_seed=5,
            runner=TrialRunner(cache=ResultCache(cache_dir)),
        )
        assert len(log) == 3  # every variant computed fresh

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        log = []
        trial = counting_trial(log)
        cache_dir = tmp_path / "c"
        grid_sweep(
            trial, grid={"x": [1]}, trials=1,
            runner=TrialRunner(cache=ResultCache(cache_dir)),
        )
        # Patch the version binding grid_sweep keys its cache entries on.
        monkeypatch.setattr("repro.experiments.sweep.__version__", "999.0.0")
        grid_sweep(
            trial, grid={"x": [1]}, trials=1,
            runner=TrialRunner(cache=ResultCache(cache_dir)),
        )
        assert len(log) == 2

    def test_corrupted_entry_recomputed_end_to_end(self, tmp_path):
        log = []
        trial = counting_trial(log)
        cache_dir = tmp_path / "c"
        grid_sweep(
            trial, grid={"x": [1]}, trials=1,
            runner=TrialRunner(cache=ResultCache(cache_dir)),
        )
        (entry,) = list(cache_dir.glob("*/*.json"))
        entry.write_text('{"schema": 999}')

        runner = TrialRunner(cache=ResultCache(cache_dir))
        grid_sweep(trial, grid={"x": [1]}, trials=1, runner=runner)
        assert len(log) == 2  # recomputed exactly once
        assert log[0] == log[1]  # with the same derived seed
        assert runner.telemetry.cache_corrupted == 1

        # The rewritten entry is valid again: a third run computes nothing.
        third = TrialRunner(cache=ResultCache(cache_dir))
        grid_sweep(trial, grid={"x": [1]}, trials=1, runner=third)
        assert len(log) == 2
        assert third.telemetry.cache_hits == 1


class TestCacheManagement:
    def test_entries_are_version_stamped(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = trial_key("fn", {"x": 1}, 0, repro.__version__)
        cache.put(key, 1.0)
        ((path, version),) = list(cache.entries())
        assert path == cache.path_for(key)
        assert version == repro.__version__

    def test_disk_stats_counts_by_version(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(trial_key("fn", {"x": 1}, 0, "v"), 1.0)
        cache.put(trial_key("fn", {"x": 2}, 0, "v"), 2.0)
        cache.put(trial_key("fn", {"x": 3}, 0, "v"), 3.0, meta={"version": "0.9"})
        stats = cache.disk_stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["versions"] == {repro.__version__: 2, "0.9": 1}

    def test_gc_drops_other_version_entries_only(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keep = trial_key("fn", {"x": 1}, 0, "v")
        cache.put(keep, 1.0)
        cache.put(trial_key("fn", {"x": 2}, 0, "v"), 2.0, meta={"version": "0.9"})
        assert cache.gc() == 1
        assert len(cache) == 1
        assert cache.get(keep) == (True, 1.0)
        assert cache.gc() == 0  # idempotent

    def test_gc_drops_unstamped_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = trial_key("fn", {"x": 1}, 0, "v")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_envelope(path, "trial-result", {"key": key, "value": 1.0})
        assert cache.gc() == 1
        assert len(cache) == 0

    def test_gc_max_bytes_evicts_least_recently_read(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "c")
        keys = [trial_key("fn", {"x": x}, 0, "v") for x in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, float(i))
            stamp = 1000.0 + i
            os.utime(cache.path_for(key), (stamp, stamp))
        # Reading the oldest entry re-stamps it: it becomes the most
        # recently *read* and must survive the eviction below.
        hit, _ = cache.get(keys[0])
        assert hit
        entry_bytes = cache.path_for(keys[0]).stat().st_size
        removed = cache.gc(keep_version=repro.__version__,
                           max_bytes=2 * entry_bytes)
        assert removed == 2
        assert cache.path_for(keys[0]).exists()   # re-read: kept
        assert cache.path_for(keys[3]).exists()   # newest write: kept
        assert not cache.path_for(keys[1]).exists()
        assert not cache.path_for(keys[2]).exists()

    def test_gc_max_bytes_zero_empties_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for x in range(3):
            cache.put(trial_key("fn", {"x": x}, 0, "v"), float(x))
        assert cache.gc(keep_version=repro.__version__, max_bytes=0) == 3
        assert len(cache) == 0
        assert list(cache.root.glob("*")) == []  # shard dirs pruned

    def test_gc_without_cap_never_size_evicts(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for x in range(3):
            cache.put(trial_key("fn", {"x": x}, 0, "v"), float(x))
        assert cache.gc(keep_version=repro.__version__) == 0
        assert len(cache) == 3

    def test_purge_removes_everything_and_prunes_dirs(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for x in range(3):
            cache.put(trial_key("fn", {"x": x}, 0, "v"), float(x))
        assert cache.purge() == 3
        assert len(cache) == 0
        assert list(cache.root.glob("*")) == []  # shard dirs pruned


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "e.json"
        save_envelope(path, "benchmark", {"a": 1, "b": [1, 2]})
        assert load_envelope(path, "benchmark") == {"a": 1, "b": [1, 2]}
        raw = json.loads(path.read_text())
        assert raw["schema"] == 1
        assert raw["kind"] == "benchmark"

    def test_kind_mismatch_raises(self, tmp_path):
        path = tmp_path / "e.json"
        save_envelope(path, "benchmark", {"a": 1})
        with pytest.raises(EnvelopeError):
            load_envelope(path, "trial-result")

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "e.json"
        path.write_text('{"schema": 2, "kind": "benchmark", "payload": {}}')
        with pytest.raises(EnvelopeError):
            load_envelope(path, "benchmark")

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "e.json"
        path.write_text("not json")
        with pytest.raises(EnvelopeError):
            load_envelope(path, "benchmark")
        path.write_text("[1, 2, 3]")
        with pytest.raises(EnvelopeError):
            load_envelope(path, "benchmark")
