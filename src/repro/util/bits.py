"""Bit-level packing for wire formats.

The paper's whole argument is about *bits*: a 9-bit AFF identifier vs a
16- or 32-bit static address.  Byte-aligned encodings would round those
savings away, so the AFF wire format bit-packs its headers.
:class:`BitWriter` and :class:`BitReader` provide MSB-first bit streams
over bytes, with explicit padding on flush.
"""

from __future__ import annotations

__all__ = ["BitReader", "BitWriter", "BitstreamError"]


class BitstreamError(ValueError):
    """Raised on malformed reads (past end, oversized values)."""


class BitWriter:
    """Accumulates values MSB-first into a byte string.

    ``write(value, bits)`` appends the ``bits`` low-order bits of
    ``value``.  ``getvalue()`` zero-pads the final partial byte.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accum = 0
        self._accum_bits = 0
        self.bits_written = 0

    def write(self, value: int, bits: int) -> "BitWriter":
        """Append ``bits`` bits of ``value`` (must fit)."""
        if bits < 0:
            raise BitstreamError("bit count must be >= 0")
        if value < 0 or (bits < 63 and value >= (1 << bits)):
            raise BitstreamError(f"value {value} does not fit in {bits} bits")
        self._accum = (self._accum << bits) | value
        self._accum_bits += bits
        self.bits_written += bits
        while self._accum_bits >= 8:
            self._accum_bits -= 8
            self._buffer.append((self._accum >> self._accum_bits) & 0xFF)
        self._accum &= (1 << self._accum_bits) - 1
        return self

    def write_bytes(self, data: bytes) -> "BitWriter":
        """Append whole bytes (8 bits each, preserving bit alignment)."""
        for byte in data:
            self.write(byte, 8)
        return self

    def getvalue(self) -> bytes:
        """The packed bytes, final partial byte zero-padded on the right."""
        out = bytes(self._buffer)
        if self._accum_bits:
            out += bytes([(self._accum << (8 - self._accum_bits)) & 0xFF])
        return out


class BitReader:
    """Reads values MSB-first from a byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._bit_pos = 0

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self._bit_pos

    def read(self, bits: int) -> int:
        """Read ``bits`` bits as an unsigned integer."""
        if bits < 0:
            raise BitstreamError("bit count must be >= 0")
        if bits > self.bits_remaining:
            raise BitstreamError(
                f"read of {bits} bits with only {self.bits_remaining} remaining"
            )
        value = 0
        remaining = bits
        while remaining > 0:
            byte_index, bit_offset = divmod(self._bit_pos, 8)
            available = 8 - bit_offset
            take = min(available, remaining)
            chunk = self._data[byte_index]
            chunk >>= available - take
            chunk &= (1 << take) - 1
            value = (value << take) | chunk
            self._bit_pos += take
            remaining -= take
        return value

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes."""
        return bytes(self.read(8) for _ in range(count))
