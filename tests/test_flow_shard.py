"""Sharded flow execution: partition properties, bit-identity, caching.

The contract under test (``repro.flow.shard``): the decomposition of a
run — worker count, shard count, partition strategy — is an execution
detail.  Results and exported traces are bit-identical to the serial
path at every combination, and different decompositions never alias in
the result cache.
"""

import pathlib

import pytest

from repro.exec import TrialRunner
from repro.exec.cache import ResultCache
from repro.flow.hybrid import simulate
from repro.flow.sampler import window_plan
from repro.flow.shard import (
    PARTITION_STRATEGIES,
    merge_range_values,
    partition_plan,
    range_trial_key,
    simulate_sharded,
    simulate_traced,
    window_range_trial,
)
from repro.flow.streams import figure4_scenario, massive_scenario

#: Small massive-family scenario with an escalating burst: its baseline
#: windows sit at density ~12, the burst at ~21, so hybrid runs at
#: threshold 15 escalate exactly the burst windows to frame fidelity.
SCENARIO = massive_scenario(n_nodes=2_000, horizon=120.0)
THRESHOLD = 15.0
SEED = 11


class TestPartitionPlan:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("shards", [1, 2, 4, 7, 100])
    def test_cover_contiguous_nonempty(self, strategy, shards):
        plan = window_plan(SCENARIO)
        ranges = partition_plan(plan, shards, strategy=strategy)
        assert len(ranges) == min(shards, len(plan))
        assert ranges[0].lo == 0
        assert ranges[-1].hi == len(plan)
        for left, right in zip(ranges[:-1], ranges[1:]):
            assert left.hi == right.lo
        assert all(r.windows > 0 for r in ranges)

    def test_cost_strategy_balances_burst(self):
        # The burst windows dominate the cost; the cost strategy must
        # not leave one shard with the burst plus half the plan.
        plan = window_plan(SCENARIO)
        ranges = partition_plan(plan, 4, strategy="cost")
        costs = [r.cost for r in ranges]
        assert max(costs) / (sum(costs) / len(costs)) < 2.0

    def test_frame_escalation_raises_cost(self):
        plan = window_plan(SCENARIO)
        flow = partition_plan(plan, 3, strategy="cost", fidelity="flow")
        hybrid = partition_plan(
            plan, 3, strategy="cost", fidelity="hybrid",
            switch_threshold=THRESHOLD,
        )
        assert sum(r.cost for r in hybrid) > sum(r.cost for r in flow)

    def test_rejects_bad_arguments(self):
        plan = window_plan(SCENARIO)
        with pytest.raises(ValueError):
            partition_plan(plan, 0)
        with pytest.raises(ValueError):
            partition_plan(plan, 2, strategy="random")

    def test_empty_plan(self):
        assert partition_plan([], 4) == []


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("fidelity", ["flow", "hybrid"])
    def test_sharded_equals_serial(self, strategy, workers, fidelity):
        serial = simulate(
            SCENARIO, SEED, fidelity=fidelity, switch_threshold=THRESHOLD
        )
        if fidelity == "hybrid":
            assert serial.frame_windows > 0  # the burst must escalate
        sharded = simulate_sharded(
            SCENARIO,
            SEED,
            fidelity=fidelity,
            switch_threshold=THRESHOLD,
            shards=workers * 2,
            strategy=strategy,
            runner=TrialRunner(workers=workers),
        )
        assert sharded == serial

    def test_shard_count_does_not_enter_seeds(self):
        # Different shard counts replay the same window streams: each
        # decomposition must reproduce the exact serial outcome, which
        # is only possible if seeds derive from the run, not the shards.
        results = {
            shards: simulate_sharded(SCENARIO, SEED, shards=shards)
            for shards in (1, 3, 5)
        }
        assert len({tuple(r.windows) for r in results.values()}) == 1

    def test_range_trial_validates_bounds(self):
        with pytest.raises(ValueError):
            window_range_trial(SCENARIO, SEED, 5, 2)
        with pytest.raises(ValueError):
            window_range_trial(SCENARIO, SEED, 0, 10_000)

    def test_merge_detects_missing_windows(self):
        value = window_range_trial(SCENARIO, SEED, 0, 2)
        from repro.exec import ExecError

        with pytest.raises(ExecError):
            merge_range_values([value], expected_windows=len(window_plan(SCENARIO)))


class TestTraceIdentity:
    def test_merged_trace_bytes_independent_of_decomposition(self, tmp_path):
        paths = []
        for name, shards, workers in (("a", 1, 1), ("b", 3, 2), ("c", 5, 4)):
            path = tmp_path / f"{name}.jsonl"
            simulate_traced(
                SCENARIO,
                SEED,
                path,
                fidelity="hybrid",
                switch_threshold=THRESHOLD,
                shards=shards,
                runner=TrialRunner(workers=workers),
            )
            paths.append(path)
            assert not (tmp_path / f"{name}.jsonl.spool").exists()
        blobs = [p.read_bytes() for p in paths]
        assert blobs[0] == blobs[1] == blobs[2]

    def test_trace_carries_all_three_categories(self, tmp_path):
        from repro.obs.envelope import read_trace

        path = tmp_path / "t.jsonl"
        result = simulate_traced(
            SCENARIO, SEED, path, fidelity="hybrid",
            switch_threshold=THRESHOLD, shards=2,
        )
        records = list(read_trace(path))
        by_cat = {}
        for record in records:
            by_cat.setdefault(record.category, []).append(record)
        assert len(by_cat["flow.window"]) == len(result.windows)
        assert len(by_cat["flow.outcome"]) == len(result.windows)
        # Per-transaction records only for the escalated windows.
        frame_txns = sum(
            w.transactions for w in result.windows if w.fidelity == "frame"
        )
        assert len(by_cat["flow.txn"]) == frame_txns
        times = [record.time for record in records]
        assert times == sorted(times)


class TestCacheDiscipline:
    def test_no_aliasing_between_decompositions(self):
        scenario = figure4_scenario(10, 5.0, horizon=100.0)
        keys = set()
        for shards, strategy in ((2, "cost"), (2, "even"), (4, "cost")):
            for window_range in partition_plan(
                window_plan(scenario), shards, strategy=strategy
            ):
                keys.add(
                    range_trial_key(
                        scenario,
                        SEED,
                        window_range.lo,
                        window_range.hi,
                        shards=shards,
                        strategy=strategy,
                        fidelity="flow",
                        switch_threshold=THRESHOLD,
                        model="mixed",
                    )
                )
        # cost/even at 2 shards may cut identically; the key material
        # still must not collide because the strategy is part of it.
        assert len(keys) == 2 + 2 + 4

    def test_cached_rerun_hits_and_agrees(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = TrialRunner(workers=2, cache=cache)
        first = simulate_sharded(SCENARIO, SEED, shards=3, runner=runner)
        runner2 = TrialRunner(workers=2, cache=ResultCache(tmp_path / "cache"))
        second = simulate_sharded(SCENARIO, SEED, shards=3, runner=runner2)
        assert first == second
        assert runner2.last_telemetry is not None
        assert runner2.last_telemetry.cache_hits == 3
        # A different decomposition of the same run recomputes (no
        # aliasing) but still agrees bit-for-bit.
        runner3 = TrialRunner(workers=2, cache=ResultCache(tmp_path / "cache"))
        third = simulate_sharded(SCENARIO, SEED, shards=2, runner=runner3)
        assert third == first
        assert runner3.last_telemetry is not None
        assert runner3.last_telemetry.cache_hits == 0

    def test_traced_ranges_bypass_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = TrialRunner(cache=cache)
        out = tmp_path / "t.jsonl"
        simulate_traced(SCENARIO, SEED, out, shards=2, runner=runner)
        first = out.read_bytes()
        out.unlink()
        simulate_traced(SCENARIO, SEED, out, shards=2, runner=runner)
        # The second run re-executed (a cache hit would skip the trace
        # side effect and leave no shard files to merge).
        assert out.read_bytes() == first


class TestCalibrateSharding:
    def test_replicate_flow_sharded_equals_serial(self):
        from repro.flow.calibrate import replicate_flow

        serial = replicate_flow(10, 5.0, trials=2, horizon=100.0)
        for shards, strategy, workers in ((3, "cost", 2), (2, "even", 1)):
            sharded = replicate_flow(
                10,
                5.0,
                trials=2,
                horizon=100.0,
                runner=TrialRunner(workers=workers),
                flow_shards=shards,
                partition=strategy,
            )
            assert sharded == serial

    def test_replicate_flow_sharded_hybrid(self):
        from repro.flow.calibrate import replicate_flow

        serial = replicate_flow(
            10, 16.0, trials=2, horizon=100.0, fidelity="hybrid",
            switch_threshold=8.0,
        )
        assert serial[2][0]["frame_windows"] > 0
        sharded = replicate_flow(
            10, 16.0, trials=2, horizon=100.0, fidelity="hybrid",
            switch_threshold=8.0, runner=TrialRunner(workers=2),
            flow_shards=2,
        )
        assert sharded == serial
