#!/usr/bin/env python3
"""Quickstart: the RETRI model and an address-free packet in flight.

Walks through the library's two entry points:

1.  The **analytic model** (Section 4 of the paper): how big should a
    probabilistically unique identifier be, and how does it compare with
    static addressing?
2.  The **simulated testbed**: two sensor nodes with 27-byte-frame
    radios, one Address-Free Fragmentation driver each, one packet sent
    and reassembled with no addresses anywhere on the wire.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    AffDriver,
    BroadcastMedium,
    FullMesh,
    IdentifierSpace,
    Packet,
    Radio,
    Simulator,
    UniformSelector,
    efficiency_aff,
    efficiency_static,
    optimal_identifier_bits,
    p_success,
)


def explore_the_model() -> None:
    print("=== 1. The analytic model ===")
    print()
    print("A sensor network with ~16 concurrent transactions in radio range,")
    print("sending 16-bit readings.  How many identifier bits are optimal?")
    best_bits, best_eff = optimal_identifier_bits(data_bits=16, density=16)
    print(f"  optimal identifier size : {best_bits} bits   (paper: 9 bits)")
    print(f"  efficiency at optimum   : {best_eff:.3f}")
    print(f"  P(transaction survives) : {p_success(best_bits, 16):.4f}")
    print()
    print("Compared with guaranteed-unique static addresses:")
    for addr_bits in (16, 32, 48):
        print(
            f"  static {addr_bits:2d}-bit addresses : "
            f"E = {efficiency_static(16, addr_bits):.3f}"
        )
    print(
        f"  RETRI {best_bits}-bit identifiers : "
        f"E = {efficiency_aff(16, best_bits, 16):.3f}   <- wins"
    )
    print()


def send_one_packet() -> None:
    print("=== 2. One address-free packet over the simulated radio ===")
    print()
    sim = Simulator()
    # Two nodes, fully connected, RPC-like radios (27-byte frames).
    medium = BroadcastMedium(sim, FullMesh([0, 1]), rf_collisions=False)

    delivered = []
    sender = AffDriver(
        Radio(medium, 0),
        UniformSelector(IdentifierSpace(9), random.Random(7)),
    )
    receiver = AffDriver(
        Radio(medium, 1),
        UniformSelector(IdentifierSpace(9), random.Random(8)),
        deliver=delivered.append,
    )

    payload = b"motion detected in the north-east quadrant"
    identifier = sender.send(Packet(payload=payload, origin=0))
    print(f"  sender drew ephemeral identifier {identifier} "
          f"(9-bit space, fresh per packet)")

    sim.run()

    print(f"  fragments on the air    : {sender.stats.fragments_sent} "
          f"(intro + data, 27-byte frames)")
    print(f"  receiver reassembled    : {delivered[0]!r}")
    print(f"  header bits transmitted : {sender.budget.transmitted('header')}")
    print(f"  payload bits transmitted: {sender.budget.transmitted('payload')}")
    print()
    print("No node address appeared in any frame - the random identifier")
    print("alone tied the fragments together.")


if __name__ == "__main__":
    explore_the_model()
    send_one_packet()
