"""Extension: RETRI in the Section 6 application contexts.

Interest reinforcement ('whoever just sent data with identifier 4, send
more of that') and attribute-codebook compression, each compared between
RETRI identifiers and static unique identifiers.
"""

from conftest import DURATION

from repro.experiments.results import Table
from repro.experiments.scenarios import codebook_scenario, interest_scenario


def test_interest_reinforcement(benchmark, publish):
    def run():
        retri = interest_scenario(id_bits=6, n_sources=8, duration=DURATION * 2,
                                  seed=3)
        static = interest_scenario(id_bits=6, n_sources=8, duration=DURATION * 2,
                                   static=True, seed=3)
        wide = interest_scenario(id_bits=12, n_sources=8, duration=DURATION * 2,
                                 seed=3)
        return retri, static, wide

    retri, static, wide = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        "Extension: interest reinforcement (8 sources)",
        ["mode", "readings", "reinforcements", "misdirected",
         "misdirection rate", "header bits/correct"],
    )
    for name, r in (("RETRI 6-bit", retri), ("static 6-bit", static),
                    ("RETRI 12-bit", wide)):
        table.add_row(name, int(r["readings_sent"]), int(r["reinforcements"]),
                      int(r["misdirected"]), r["misdirection_rate"],
                      r["header_bits_per_correct"])
    publish("ext_interest", table.render())

    # Static identifiers never misdirect; RETRI pays a small, tunable rate.
    assert static["misdirected"] == 0
    assert retri["misdirection_rate"] >= 0.0
    assert wide["misdirection_rate"] <= retri["misdirection_rate"] + 1e-9


def test_codebook_compression(benchmark, publish):
    """Sweep RETRI code sizes against guaranteed-unique 16-bit codes.

    The sweep shows Figure 1's tradeoff transplanted to this context:
    too few code bits and clash losses dominate; at the right size RETRI
    beats unique codes on bits per decoded report.
    """
    retri_bits = (6, 8, 10, 12)

    def run():
        retri = {
            bits: codebook_scenario(code_bits=bits, n_senders=6,
                                    n_attributes=4, reports=300, seed=4)
            for bits in retri_bits
        }
        # A guaranteed-unique static code must be wide enough for every
        # (node, attribute) pair that could ever exist - model that with
        # 16-bit codes.
        static = codebook_scenario(code_bits=16, n_senders=6, n_attributes=4,
                                   reports=300, static=True, seed=4)
        return retri, static

    retri, static = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        "Extension: attribute-codebook compression (6 senders, 4 attributes)",
        ["mode", "decoded", "misdecoded", "undecodable", "clashes",
         "bits/decoded report"],
    )
    for bits in retri_bits:
        r = retri[bits]
        table.add_row(f"RETRI {bits}-bit codes", int(r["decoded"]),
                      int(r["misdecoded"]), int(r["undecodable"]),
                      int(r["clashes_detected"]), r["bits_per_decoded"])
    table.add_row("unique 16-bit codes", int(static["decoded"]),
                  int(static["misdecoded"]), int(static["undecodable"]),
                  int(static["clashes_detected"]), static["bits_per_decoded"])
    publish("ext_codebook", table.render())

    # Static never errs.
    assert static["misdecoded"] == 0 and static["undecodable"] == 0
    # Undersized RETRI codes lose reports to clashes...
    assert retri[6]["undecodable"] > retri[12]["undecodable"]
    # ...but appropriately sized RETRI codes beat unique codes on cost.
    best = min(r["bits_per_decoded"] for r in retri.values())
    assert best < static["bits_per_decoded"]
