"""The four DetSan detectors and the pinned-scenario suite driver.

This is the heavy half of the sanitizer (the light half is
:mod:`.runtime`): it drives real scenarios through the exec layer under
an active :class:`~.runtime.DetSanContext` and turns what the
instrumentation observed into ordinary
:class:`repro.analysis.core.Finding` objects:

SAN001
    Draws through the :mod:`random` module's hidden global instance,
    and registered streams whose per-process call-site sets diverge —
    both read off the draw ledger payloads the exec layer shipped back
    from every process.
SAN002
    The tie-order perturber: run a pinned scenario with FIFO
    tie-breaking (the reference), re-run it with same-timestamp events
    deterministically shuffled, and byte-compare both the canonical
    trace (via :func:`repro.obs.diff.diff_traces`) and the canonical
    result line.  Any difference is a real tie-order dependency; the
    finding message carries the first divergent record.  Both legs run
    in fresh interpreters (same pinned ``PYTHONHASHSEED``): module
    state such as the radio frame sequence counter survives in-process
    re-runs and would otherwise masquerade as tie-order divergence.
SAN003
    The hash-order perturber: re-execute a pinned scenario under K
    different ``PYTHONHASHSEED`` values in fresh interpreters (hash
    randomization is fixed at startup, so ``subprocess`` — not fork —
    is required) and diff result and trace bytes across runs.
SAN004
    The fork-state differ: module-state snapshots taken by
    :func:`~.runtime.state_snapshot` at fork time and around each
    trial, reported when they drift.

Findings anchor to real source lines — the drawing call site, the
scenario function's ``def``, the mutating trial function — so the
usual ``# lint: ignore[SAN00x]`` suppression and baseline fingerprints
apply unchanged.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core import Finding, Rule, _suppressed_rules
from . import runtime
from .pinned import PinnedScenario, SCENARIOS, resolve_scenario
from .rules import sanitizer_rules_by_id

__all__ = [
    "SanitizeResult",
    "check_hash_order",
    "check_tie_order",
    "drift_findings",
    "ledger_findings",
    "run_suite",
]


# ----------------------------------------------------------------------
# Finding construction: anchor, suppress, fingerprint like static lint
# ----------------------------------------------------------------------
def _display_path(filename: str) -> str:
    path = Path(filename)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except (ValueError, OSError):
        return path.as_posix()


def _source_line(filename: str, line: int) -> str:
    try:
        lines = Path(filename).read_text(encoding="utf-8").splitlines()
    except OSError:
        return ""
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def _make_finding(
    rule: Rule, filename: str, line: int, message: str
) -> Optional[Finding]:
    """A finding anchored at ``filename:line``, or None if suppressed.

    The anchored line's source text becomes the snippet, so the
    fingerprint is the same recipe static findings use and an inline
    ``# lint: ignore[SAN00x]`` on that line suppresses it.
    """
    snippet = _source_line(filename, line)
    suppressed = _suppressed_rules(snippet)
    if suppressed is not None and (not suppressed or rule.rule_id in suppressed):
        return None
    return Finding(
        rule_id=rule.rule_id,
        path=_display_path(filename),
        line=int(line),
        col=0,
        message=message,
        snippet=snippet,
    )


def _parse_site(site: str) -> Tuple[str, int]:
    """``(filename, line)`` from a ``path:line[:func]`` ledger call site."""
    head, _, tail = site.rpartition(":")
    if tail.isdigit():  # "path:line"
        return head, int(tail)
    path, _, line = head.rpartition(":")  # "path:line:func"
    if line.isdigit():
        return path, int(line)
    return site, 1


def _scenario_anchor(scenario: PinnedScenario) -> Tuple[str, int]:
    """The scenario function's ``def`` site (SAN002/SAN003 anchor)."""
    code = getattr(scenario.run, "__code__", None)
    if code is None:
        return __file__, 1
    return code.co_filename, int(code.co_firstlineno)


# ----------------------------------------------------------------------
# SAN001 — the draw ledger
# ----------------------------------------------------------------------
def ledger_findings(payloads: Sequence[Mapping[str, Any]]) -> List[Finding]:
    """SAN001 findings from exported draw-ledger payloads."""
    rule = sanitizer_rules_by_id()["SAN001"]
    findings: List[Finding] = []

    # Draws through the module-level global RNG, by (function, site).
    unregistered: Dict[Tuple[str, str], int] = {}
    for payload in payloads:
        for func, sites in payload.get("unregistered", {}).items():
            for site, count in sites.items():
                key = (func, site)
                unregistered[key] = unregistered.get(key, 0) + int(count)
    for (func, site), count in sorted(unregistered.items()):
        filename, line = _parse_site(site)
        finding = _make_finding(
            rule,
            filename,
            line,
            f"{func}() drawn {count} time(s) from the module-level global "
            "RNG; route the draw through a registered repro.sim.rng stream",
        )
        if finding is not None:
            findings.append(finding)

    # Registered streams whose call-site sets differ between processes.
    sites_by_stream: Dict[str, Dict[int, Set[str]]] = {}
    for payload in payloads:
        pid = int(payload.get("pid", 0))
        for stream, sites in payload.get("draws", {}).items():
            by_pid = sites_by_stream.setdefault(stream, {})
            by_pid.setdefault(pid, set()).update(sites)
    for stream, by_pid in sorted(sites_by_stream.items()):
        site_sets = [sites for sites in by_pid.values() if sites]
        if len(site_sets) < 2:
            continue
        union = set().union(*site_sets)
        common = set.intersection(*site_sets)
        divergent = sorted(union - common)
        if not divergent:
            continue
        filename, line = _parse_site(divergent[0])
        finding = _make_finding(
            rule,
            filename,
            line,
            f"stream '{stream}' drawn from differing call-site sets across "
            f"{len(by_pid)} processes; divergent site(s): "
            + ", ".join(divergent[:3]),
        )
        if finding is not None:
            findings.append(finding)
    return findings


# ----------------------------------------------------------------------
# SAN004 — fork-state drift
# ----------------------------------------------------------------------
def drift_findings(payloads: Sequence[Mapping[str, Any]]) -> List[Finding]:
    """SAN004 findings from exported state-drift observations."""
    rule = sanitizer_rules_by_id()["SAN004"]
    findings: List[Finding] = []
    seen: Set[Tuple[str, str, Optional[str]]] = set()
    for payload in payloads:
        for entry in payload.get("drift", []):
            probe = str(entry.get("probe"))
            phase = str(entry.get("phase"))
            site = entry.get("site")
            key = (probe, phase, site)
            if key in seen:
                continue
            seen.add(key)
            if site:
                filename, line = _parse_site(str(site))
            else:
                filename, line = _probe_anchor(probe)
            phase_text = (
                "across one trial call"
                if phase == "trial"
                else "between trials (state inherited dirty at the fork point)"
            )
            finding = _make_finding(
                rule,
                filename,
                line,
                f"module state probe '{probe}' drifted {phase_text}: "
                f"{entry.get('before')} -> {entry.get('after')}",
            )
            if finding is not None:
                findings.append(finding)
    return findings


def _probe_anchor(probe: str) -> Tuple[str, int]:
    """Anchor a site-less drift finding at the probe's definition."""
    fn = runtime._STATE_PROBES.get(probe)
    code = getattr(fn, "__code__", None)
    if code is None:
        return runtime.__file__, 1
    return code.co_filename, int(code.co_firstlineno)


# ----------------------------------------------------------------------
# SAN002 — the event-queue tie perturber
# ----------------------------------------------------------------------
def _pinned_env() -> Dict[str, str]:
    """Subprocess environment for pinned re-execution legs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


def _run_pinned_leg(
    scenario_spec: str,
    trace: Path,
    ledger: Path,
    tie_seed: int,
    perturb: bool,
    env: Mapping[str, str],
) -> "subprocess.CompletedProcess[bytes]":
    """One sanitized scenario run in a fresh interpreter."""
    cmd = [
        sys.executable,
        "-m",
        "repro.analysis.sanitizer.pinned",
        "--scenario",
        scenario_spec,
        "--trace",
        str(trace),
        "--detsan-seed",
        str(tie_seed),
        "--ledger-out",
        str(ledger),
    ]
    if perturb:
        cmd.append("--perturb-ties")
    return subprocess.run(cmd, capture_output=True, env=dict(env))


def check_tie_order(
    scenario_spec: str,
    san: Optional[runtime.DetSanContext],
    tie_seed: int,
    workdir: Path,
) -> Tuple[List[Finding], Dict[str, Any]]:
    """Run a scenario unperturbed then tie-shuffled; diff both runs.

    Each leg runs in a fresh interpreter (via :mod:`.pinned`'s
    ``__main__``) with the *same* pinned ``PYTHONHASHSEED``, so the only
    variable between them is the tie-break order of same-timestamp
    events.  In-process back-to-back runs would also differ on any
    module state that survives a run — e.g. the radio frame sequence
    counter — which is state drift, not tie sensitivity.  Each leg's
    draw-ledger observations are absorbed into ``san`` (when given) so
    SAN001/SAN004 see them.
    """
    rule = sanitizer_rules_by_id()["SAN002"]
    scenario = resolve_scenario(scenario_spec)
    slug = _slug(scenario_spec)
    env = _pinned_env()
    env["PYTHONHASHSEED"] = "0"  # pinned equal: isolate the tie variable

    legs: Dict[str, Tuple[Path, Path]] = {
        "base": (workdir / f"{slug}.tie-base.jsonl", workdir / f"{slug}.tie-base.ledger.json"),
        "perturbed": (workdir / f"{slug}.tie-pert.jsonl", workdir / f"{slug}.tie-pert.ledger.json"),
    }
    outputs: Dict[str, bytes] = {}
    errors: List[str] = []
    for leg, (trace, ledger) in legs.items():
        proc = _run_pinned_leg(
            scenario_spec, trace, ledger, tie_seed, leg == "perturbed", env
        )
        if proc.returncode != 0:
            errors.append(
                f"{leg} leg failed (exit {proc.returncode}): "
                + proc.stderr.decode("utf-8", "replace").strip()[-500:]
            )
            continue
        outputs[leg] = proc.stdout
        if san is not None:
            _absorb_ledger_file(san, ledger)

    check: Dict[str, Any] = {
        "check": "tie-order",
        "scenario": scenario.name,
        "ok": not errors,
    }
    findings: List[Finding] = []
    filename, line = _scenario_anchor(scenario)
    if errors:
        finding = _make_finding(
            rule, filename, line, f"tie-order re-execution failed: {errors[0]}"
        )
        if finding is not None:
            findings.append(finding)
        return findings, check

    from ...obs.diff import diff_traces

    base_trace, _ = legs["base"]
    pert_trace, _ = legs["perturbed"]
    diff = diff_traces(base_trace, pert_trace)
    check["records"] = diff.records
    check["ok"] = diff.identical and outputs["base"] == outputs["perturbed"]
    if not check["ok"]:
        details: List[str] = []
        if outputs["base"] != outputs["perturbed"]:
            details.append(
                "result changed: "
                f"{outputs['base'].decode('utf-8', 'replace').strip()} vs "
                f"{outputs['perturbed'].decode('utf-8', 'replace').strip()}"
            )
        if not diff.identical and diff.first is not None:
            details.append("; ".join(diff.first.render()))
        finding = _make_finding(
            rule,
            filename,
            line,
            f"scenario '{scenario.name}' depends on event-queue tie order "
            "(same-timestamp shuffle changed the run): " + " | ".join(details),
        )
        if finding is not None:
            findings.append(finding)
    return findings, check


def _absorb_ledger_file(san: runtime.DetSanContext, ledger: Path) -> None:
    """Absorb a pinned leg's exported observations, if it wrote any."""
    try:
        payloads = json.loads(ledger.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return
    for payload in payloads:
        if isinstance(payload, dict):
            san.absorb(payload)


def _slug(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


# ----------------------------------------------------------------------
# SAN003 — the hash-order perturber
# ----------------------------------------------------------------------
def check_hash_order(
    scenario_spec: str,
    hash_seeds: int,
    workdir: Path,
) -> Tuple[List[Finding], Dict[str, Any]]:
    """Re-execute a scenario under K ``PYTHONHASHSEED`` values; diff bytes.

    Each run is a fresh interpreter via :mod:`.pinned`'s ``__main__``
    (hash randomization cannot change after startup, so fork is
    useless here).  Both the canonical result line on stdout and the
    exported trace must be byte-identical across every seed.
    """
    rule = sanitizer_rules_by_id()["SAN003"]
    scenario = resolve_scenario(scenario_spec)
    runs: List[Tuple[int, bytes, bytes]] = []
    errors: List[str] = []
    env = _pinned_env()
    for seed in range(1, max(1, hash_seeds) + 1):
        trace = workdir / f"{_slug(scenario_spec)}.hash{seed}.jsonl"
        env["PYTHONHASHSEED"] = str(seed)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis.sanitizer.pinned",
                "--scenario",
                scenario_spec,
                "--trace",
                str(trace),
            ],
            capture_output=True,
            env=env,
        )
        if proc.returncode != 0:
            errors.append(
                f"PYTHONHASHSEED={seed} run failed (exit {proc.returncode}): "
                + proc.stderr.decode("utf-8", "replace").strip()[-500:]
            )
            continue
        runs.append((seed, proc.stdout, trace.read_bytes()))

    check: Dict[str, Any] = {
        "check": "hash-order",
        "scenario": scenario.name,
        "seeds": [seed for seed, _, _ in runs],
        "errors": errors,
        "ok": not errors and len(runs) >= 2,
    }
    findings: List[Finding] = []
    filename, line = _scenario_anchor(scenario)
    if errors:
        finding = _make_finding(
            rule, filename, line, f"hash-order re-execution failed: {errors[0]}"
        )
        if finding is not None:
            findings.append(finding)
        return findings, check

    details: List[str] = []
    ref_seed, ref_stdout, ref_trace = runs[0]
    for seed, stdout, trace_bytes in runs[1:]:
        if stdout != ref_stdout:
            details.append(
                f"result differs between PYTHONHASHSEED={ref_seed} and "
                f"{seed}: {ref_stdout.decode('utf-8', 'replace').strip()} vs "
                f"{stdout.decode('utf-8', 'replace').strip()}"
            )
        if trace_bytes != ref_trace:
            details.append(
                f"trace bytes differ between PYTHONHASHSEED={ref_seed} and "
                f"{seed} ({_first_differing_line(ref_trace, trace_bytes)})"
            )
    check["ok"] = not details
    if details:
        finding = _make_finding(
            rule,
            filename,
            line,
            f"scenario '{scenario.name}' is PYTHONHASHSEED-dependent: "
            + " | ".join(details[:2]),
        )
        if finding is not None:
            findings.append(finding)
    return findings, check


def _first_differing_line(left: bytes, right: bytes) -> str:
    for index, (a, b) in enumerate(
        zip(left.splitlines(), right.splitlines())
    ):
        if a != b:
            return (
                f"first divergent line #{index}: "
                f"{a.decode('utf-8', 'replace')[:120]!r} vs "
                f"{b.decode('utf-8', 'replace')[:120]!r}"
            )
    return "traces differ in length"


# ----------------------------------------------------------------------
# Cross-process exercise: fan a pinned sweep over forked workers
# ----------------------------------------------------------------------
def _exercise_fork_paths() -> Dict[str, Any]:
    """Run a small replicated sweep over forked workers.

    Exists to feed the ledger and the fork-state differ cross-process
    data: each worker ships its draw ledger and drift observations back
    through the exec transport, where the active context absorbs them.
    """
    from ...exec.runner import TrialRunner
    from ...experiments.harness import CollisionTrialConfig, replicate

    config = CollisionTrialConfig(
        id_bits=4, n_senders=3, duration=5.0, selector="uniform", seed=0
    )
    runner = TrialRunner(workers=2)
    mean, stddev, results = replicate(config, trials=4, runner=runner)
    return {
        "check": "fork-exercise",
        "trials": len(results),
        "mean": mean,
        "ok": len(results) == 4,
    }


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------
@dataclass
class SanitizeResult:
    """Outcome of one ``repro sanitize run``."""

    findings: List[Finding] = field(default_factory=list)
    checks: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, Any]:
        return {
            "findings": [finding.to_json() for finding in self.findings],
            "checks": self.checks,
        }


def run_suite(
    scenarios: Optional[Sequence[str]] = None,
    hash_seeds: int = 3,
    tie_seed: int = 0,
    fork_exercise: bool = True,
) -> SanitizeResult:
    """Run every detector over the pinned scenarios.

    ``scenarios`` selects pinned names (or ``module:function``
    references for fixtures); default is all pinned scenarios.
    ``hash_seeds`` is K for the hash-order perturber (0 disables it),
    ``tie_seed`` seeds the deterministic tie shuffle.
    """
    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    result = SanitizeResult()
    with tempfile.TemporaryDirectory(prefix="detsan-") as tmp:
        workdir = Path(tmp)
        with runtime.sanitizing(
            runtime.DetSanContext(seed=tie_seed)
        ) as san:
            for name in names:
                findings, check = check_tie_order(name, san, tie_seed, workdir)
                result.findings.extend(findings)
                result.checks.append(check)
            if fork_exercise:
                result.checks.append(_exercise_fork_paths())
            payloads = san.observations()
            result.findings.extend(ledger_findings(payloads))
            result.findings.extend(drift_findings(payloads))
        if hash_seeds > 0:
            for name in names:
                findings, check = check_hash_order(name, hash_seeds, workdir)
                result.findings.extend(findings)
                result.checks.append(check)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    _dedupe(result)
    return result


def _dedupe(result: SanitizeResult) -> None:
    seen: Set[Tuple[str, str, int, str]] = set()
    unique: List[Finding] = []
    for finding in result.findings:
        key = (finding.rule_id, finding.path, finding.line, finding.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    result.findings = unique


def describe_checks(result: SanitizeResult) -> str:
    """One status line per executed check, for the CLI summary."""
    lines = []
    for check in result.checks:
        status = "ok" if check.get("ok") else "DIVERGED"
        label = check.get("check", "?")
        scenario = check.get("scenario", "")
        suffix = f" [{scenario}]" if scenario else ""
        lines.append(f"  {label}{suffix}: {status}")
    return "\n".join(lines)


def result_to_json_text(result: SanitizeResult) -> str:
    return json.dumps(result.to_json(), indent=2)
