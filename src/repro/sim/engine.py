"""Discrete-event simulation kernel.

The kernel is a classic event-queue simulator: a priority queue of
timestamped events, a virtual clock, and a run loop.  Everything in the
reproduction that "happens over time" — frame transmissions, listening
windows, reassembly timeouts, node churn — is driven by one
:class:`Simulator` instance.

The design intentionally mirrors the structure of well-known kernels
(simpy, ns-2's scheduler) but is self-contained:

* :class:`Simulator` owns the clock and the event queue.
* :meth:`Simulator.schedule` posts a callback at ``now + delay`` and
  returns an :class:`EventHandle` that can be cancelled.
* Generator-based *processes* (see :mod:`repro.sim.process`) layer a
  coroutine API on top of raw callbacks.

Determinism guarantees
----------------------
Events scheduled for the same timestamp fire in the order they were
scheduled (FIFO tie-breaking via a monotonically increasing sequence
number).  Given identical seeds (:mod:`repro.sim.rng`), a simulation is
exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..analysis.sanitizer.runtime import active_sanitizer
from ..obs.metrics import active_metrics
from ..obs.spans import active_profiler, layer_of_module

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a closed sim)."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.

    Ordering is (time, tie, seq): seq breaks ties FIFO so same-time
    events run in scheduling order, which keeps runs deterministic.
    ``tie`` is always 0 in normal operation; under DetSan's tie
    perturber it carries a deterministic pseudo-random rank that
    shuffles same-timestamp events, exposing any code that silently
    depends on FIFO tie-breaking.
    """

    time: float
    tie: int
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is *lazy*: the heap entry stays queued but is skipped by
    the run loop.  This keeps :meth:`Simulator.cancel` O(1).
    """

    __slots__ = ("callback", "args", "cancelled", "time")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references promptly so cancelled timers do not pin objects.
        self.callback = _noop
        self.args = ()

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self.cancelled


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=10.0)

    Parameters
    ----------
    start_time:
        Initial clock value (seconds).  Defaults to 0.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        # Span profiling is bound at construction (observational only:
        # nothing in the dispatch path reads the measurements).  When no
        # profiler is active the run loop pays one None-check per event.
        self._profiler = active_profiler()
        self._span_names: Dict[str, str] = {}
        # The determinism sanitizer is likewise bound at construction;
        # when inactive, scheduling pays one None-check per event.
        self._sanitizer = active_sanitizer()
        # Deterministic metrics, same binding discipline: counts are
        # simulated facts (events fired, queue high-watermark), so they
        # are bit-identical run to run — unlike the profiler's times.
        self._metrics = active_metrics()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Post ``callback(*args)`` to fire at ``now + delay``.

        Parameters
        ----------
        delay:
            Non-negative offset from the current clock.  A delay of zero
            fires after all events already queued for the current time.
        callback:
            Any callable.  Exceptions propagate out of :meth:`run`.

        Returns
        -------
        EventHandle
            Cancel it with :meth:`EventHandle.cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self._now + delay, callback, args)
        seq = next(self._seq)
        san = self._sanitizer
        tie = 0
        if san is not None and san.perturb_ties:
            tie = san.tie_rank(handle.time, seq)
        entry = _QueueEntry(time=handle.time, tie=tie, seq=seq, handle=handle)
        heapq.heappush(self._queue, entry)
        if self._metrics is not None:
            self._metrics.gauge_max("engine.queue_depth", len(self._queue))
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Post ``callback(*args)`` at an absolute timestamp ``time >= now``."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (alias for ``handle.cancel()``)."""
        handle.cancel()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns
        -------
        bool
            False if the queue was empty (nothing fired), else True.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                continue
            if entry.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue time went backwards")
            self._now = entry.time
            handle.cancelled = True  # mark as fired; no longer cancellable
            self._events_processed += 1
            if self._metrics is not None:
                self._metrics.inc("engine.events")
            prof = self._profiler
            if prof is None:
                handle.callback(*handle.args)
            else:
                t0 = prof.clock()
                handle.callback(*handle.args)
                prof.add(self._dispatch_span(handle.callback), prof.clock() - t0)
            return True
        return False

    def _dispatch_span(self, callback: Callable[..., Any]) -> str:
        """Span name for a dispatched callback, by its defining layer."""
        module = getattr(callback, "__module__", "") or ""
        name = self._span_names.get(module)
        if name is None:
            name = self._span_names[module] = (
                layer_of_module(module) + ".dispatch"
            )
        return name

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, the clock passes ``until``, or
        ``max_events`` events have fired — whichever comes first.

        Parameters
        ----------
        until:
            Absolute stop time.  Events scheduled exactly at ``until`` DO
            fire; events strictly after it stay queued and the clock is
            left at ``until``.
        max_events:
            Safety valve for runaway simulations.

        Returns
        -------
        float
            The clock value when the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                if not self.step():
                    break
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def _peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, discarding cancelled ones."""
        while self._queue:
            entry = self._queue[0]
            if entry.handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return entry.time
        return None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.handle.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f} pending={self.pending} "
            f"processed={self._events_processed}>"
        )
