"""Tests for the extension scenarios (short runs, shape assertions)."""

import math

import pytest

from repro.experiments.scenarios import (
    codebook_scenario,
    dynamic_allocation_overhead,
    hidden_terminal_experiment,
    interest_scenario,
    measured_efficiency,
)


class TestMeasuredEfficiency:
    @pytest.fixture(scope="class")
    def results(self):
        aff = measured_efficiency("aff", id_bits=9, duration=20.0, seed=5)
        static = measured_efficiency("static", id_bits=32, duration=20.0, seed=5)
        return aff, static

    def test_both_stacks_deliver(self, results):
        aff, static = results
        assert aff.packets_delivered > 0
        assert static.packets_delivered > 0

    def test_aff_more_efficient_for_tiny_packets(self, results):
        """The paper's headline: short RETRI ids beat 32-bit addresses when
        the data is a few bytes."""
        aff, static = results
        assert aff.efficiency > static.efficiency

    def test_efficiency_in_unit_interval(self, results):
        for m in results:
            assert 0.0 < m.efficiency < 1.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            measured_efficiency("quantum", id_bits=8)


class TestDynamicAllocationOverhead:
    def test_control_cost_grows_with_churn(self):
        calm = dynamic_allocation_overhead(churn_events=10, seed=1)
        stormy = dynamic_allocation_overhead(churn_events=500, seed=1)
        assert stormy["control_bits"] > calm["control_bits"]

    def test_retri_beats_dynamic_under_heavy_churn(self):
        """Section 2.3: allocation overhead can dwarf the data it serves."""
        result = dynamic_allocation_overhead(
            n_nodes=30, addr_bits=10, churn_events=2000, data_bits_per_node=64,
            seed=2,
        )
        assert result["retri_efficiency"] > result["dynamic_efficiency"]

    def test_dynamic_wins_in_static_network(self):
        """With no churn, the one-time allocation cost amortises away —
        the paper concedes static/dynamic schemes win in static networks."""
        result = dynamic_allocation_overhead(
            n_nodes=30, addr_bits=10, churn_events=0,
            data_bits_per_node=100_000, seed=3,
        )
        assert result["dynamic_efficiency"] > result["retri_efficiency"]


class TestHiddenTerminal:
    @pytest.fixture(scope="class")
    def rates(self):
        return hidden_terminal_experiment(id_bits=4, n_senders=4, duration=20.0,
                                          seed=4)

    def test_listening_helps_on_mesh(self, rates):
        assert rates["mesh.listening"] < rates["mesh.uniform"]

    def test_listening_useless_on_star(self, rates):
        """Hidden senders cannot hear each other: listening degenerates to
        uniform selection (Section 3.2)."""
        assert rates["star.listening"] == pytest.approx(
            rates["star.uniform"], abs=0.05
        )

    def test_uniform_unaffected_by_topology(self, rates):
        assert rates["star.uniform"] == pytest.approx(
            rates["mesh.uniform"], abs=0.05
        )


class TestInterestScenario:
    def test_retri_mode_reports_and_occasionally_misdirects(self):
        result = interest_scenario(id_bits=4, n_sources=6, duration=40.0, seed=6)
        assert result["readings_sent"] > 0
        assert result["reinforcements"] > 0
        assert result["misdirected"] > 0  # small space, some collisions

    def test_static_mode_never_misdirects(self):
        result = interest_scenario(
            id_bits=6, n_sources=6, duration=40.0, static=True, seed=6
        )
        assert result["misdirected"] == 0

    def test_wide_retri_space_rarely_misdirects(self):
        narrow = interest_scenario(id_bits=3, n_sources=6, duration=30.0, seed=7)
        wide = interest_scenario(id_bits=12, n_sources=6, duration=30.0, seed=7)
        assert wide["misdirection_rate"] < narrow["misdirection_rate"]


class TestCodebookScenario:
    def test_retri_codebooks_decode_mostly_correctly(self):
        result = codebook_scenario(code_bits=8, reports=120, seed=8)
        assert result["decoded"] > 0
        assert result["correct"] >= result["decoded"] - result["misdecoded"]

    def test_static_codes_never_misdecode(self):
        result = codebook_scenario(code_bits=8, reports=120, static=True, seed=8)
        assert result["misdecoded"] == 0
        assert result["undecodable"] == 0

    def test_narrow_code_space_causes_clashes(self):
        result = codebook_scenario(
            code_bits=3, n_senders=8, n_attributes=6, reports=200,
            binding_lifetime=10.0, seed=9,
        )
        assert result["clashes_detected"] > 0
