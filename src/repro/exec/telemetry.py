"""Run telemetry: where the wall-clock time of a reproduction goes.

Simulated results must be bit-identical run to run; how *long* they
took to compute is the one thing that legitimately varies.  The
execution layer records it here — per-trial timings, cache traffic,
worker utilization — and emits it as a versioned JSON envelope so the
repo accumulates a machine-readable performance trajectory
(``BENCH_*.json``) alongside the bit-exact results.

Telemetry is observational only: nothing in the result path reads it,
so recording it cannot perturb determinism.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..obs.metrics import MetricsRegistry
from ..obs.spans import layer_breakdown

__all__ = ["RunTelemetry", "TrialRecord"]


@dataclass
class TrialRecord:
    """One trial's execution footprint (not its result)."""

    index: int
    label: str
    cached: bool
    ok: bool
    attempts: int
    duration: float
    worker: Optional[int]
    error: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "index": self.index,
            "label": self.label,
            "cached": self.cached,
            "ok": self.ok,
            "attempts": self.attempts,
            "duration": round(self.duration, 6),
            "worker": self.worker,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class RunTelemetry:
    """Aggregated execution telemetry for one (or several) runner calls."""

    wall_time: float = 0.0
    trials: int = 0
    computed: int = 0
    failures: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_writes: int = 0
    cache_corrupted: int = 0
    workers: int = 1
    #: runner.run() calls served by a persistent WorkerPool
    pool_batches: int = 0
    #: trials that could not cross the pool transport (classic path)
    pool_fallbacks: int = 0
    #: crashed pool workers replaced with fresh forks
    pool_respawns: int = 0
    #: non-fatal degradations (e.g. unenforceable deadlines), deduplicated
    warnings: List[str] = field(default_factory=list)
    #: seconds each worker spent inside trial functions, keyed by id
    worker_busy: Dict[int, float] = field(default_factory=dict)
    #: trials served by each worker, keyed by id
    worker_tasks: Dict[int, int] = field(default_factory=dict)
    #: span wall-time table ({name: {count,total,min,max}}) folded in
    #: from profiled trials (see :mod:`repro.obs.spans`)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: deterministic metric table ({name: {kind, value|edges+buckets}})
    #: folded in from metric-carrying trials (see :mod:`repro.obs.metrics`)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    records: List[TrialRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(self, record: TrialRecord) -> None:
        self.trials += 1
        self.records.append(record)
        if record.cached:
            self.cache_hits += 1
            return
        self.computed += 1
        if not record.ok:
            self.failures += 1
        if record.worker is not None:
            busy = self.worker_busy.get(record.worker, 0.0)
            self.worker_busy[record.worker] = busy + record.duration
            self.worker_tasks[record.worker] = (
                self.worker_tasks.get(record.worker, 0) + 1
            )

    def add_spans(self, spans: Dict[str, Dict[str, float]]) -> None:
        """Fold a trial's span table (from a profiled message) in."""
        for name, stats in spans.items():
            count = float(stats.get("count", 0.0))
            if count <= 0:
                continue
            into = self.spans.get(name)
            if into is None:
                self.spans[name] = dict(stats)
                continue
            prior = float(into.get("count", 0.0))
            into["count"] = prior + count
            into["total"] = float(into.get("total", 0.0)) + float(
                stats.get("total", 0.0)
            )
            if prior <= 0 or float(stats["min"]) < float(into["min"]):
                into["min"] = float(stats["min"])
            if prior <= 0 or float(stats["max"]) > float(into["max"]):
                into["max"] = float(stats["max"])

    def add_metrics(self, table: Dict[str, Dict[str, Any]]) -> None:
        """Fold a trial's metric table (from a worker message) in.

        Routed through :class:`~repro.obs.metrics.MetricsRegistry` so
        counter sums, gauge high-watermarks, and histogram-edge checks
        follow exactly one set of merge rules everywhere.
        """
        registry = MetricsRegistry()
        if self.metrics:
            registry.merge_json(self.metrics)
        registry.merge_json(table)
        self.metrics = registry.to_json()

    def shard_timings(self) -> Dict[str, float]:
        """Per-segment wall times of a sharded trial, keyed by label.

        Horizon-sharded Monte Carlo trials label their segment specs
        ``segment:<index>`` (see :mod:`repro.core.montecarlo`); this
        pulls those records out so callers can see where a sharded
        trial's critical path is.
        """
        return {
            record.label: record.duration
            for record in self.records
            if record.label.startswith("segment:") and not record.cached
        }

    def worker_utilization(self) -> Dict[int, float]:
        """Fraction of the run's wall time each worker spent computing."""
        if self.wall_time <= 0.0:
            return {worker: 0.0 for worker in self.worker_busy}
        return {
            worker: busy / self.wall_time
            for worker, busy in sorted(self.worker_busy.items())
        }

    def merge(self, other: "RunTelemetry") -> None:
        """Fold another run's telemetry into this cumulative record."""
        self.wall_time += other.wall_time
        self.trials += other.trials
        self.computed += other.computed
        self.failures += other.failures
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_writes += other.cache_writes
        self.cache_corrupted += other.cache_corrupted
        self.workers = max(self.workers, other.workers)
        self.pool_batches += other.pool_batches
        self.pool_fallbacks += other.pool_fallbacks
        self.pool_respawns += other.pool_respawns
        for warning in other.warnings:
            if warning not in self.warnings:
                self.warnings.append(warning)
        for worker, busy in other.worker_busy.items():
            self.worker_busy[worker] = self.worker_busy.get(worker, 0.0) + busy
        for worker, tasks in other.worker_tasks.items():
            self.worker_tasks[worker] = self.worker_tasks.get(worker, 0) + tasks
        if other.spans:
            self.add_spans(other.spans)
        if other.metrics:
            self.add_metrics(other.metrics)
        self.records.extend(other.records)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The headline numbers, without the per-trial detail."""
        out: Dict[str, Any] = {
            "wall_time": round(self.wall_time, 6),
            "trials": self.trials,
            "computed": self.computed,
            "failures": self.failures,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_writes": self.cache_writes,
            "cache_corrupted": self.cache_corrupted,
            "workers": self.workers,
            "pool_batches": self.pool_batches,
            "pool_fallbacks": self.pool_fallbacks,
            "pool_respawns": self.pool_respawns,
            "warnings": list(self.warnings),
            "worker_utilization": {
                str(worker): round(value, 4)
                for worker, value in self.worker_utilization().items()
            },
            "worker_tasks": {
                str(worker): tasks
                for worker, tasks in sorted(self.worker_tasks.items())
            },
            "shard_timings": {
                label: round(value, 6)
                for label, value in self.shard_timings().items()
            },
        }
        if self.spans:
            out["spans"] = {
                name: {key: round(value, 6) for key, value in stats.items()}
                for name, stats in sorted(self.spans.items())
            }
            out["layer_times"] = {
                layer: round(total, 6)
                for layer, total in layer_breakdown(self.spans).items()
            }
        if self.metrics:
            out["metrics"] = {
                name: dict(entry) for name, entry in sorted(self.metrics.items())
            }
        return out

    def to_json(self) -> Dict[str, Any]:
        out = self.summary()
        out["records"] = [record.to_json() for record in self.records]
        return out

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Write this telemetry as a versioned ``run-telemetry`` envelope."""
        # Deferred import: repro.exec sits *below* repro.experiments in
        # the layering; importing persistence at module scope would
        # close an import cycle through experiments.figures.
        from ..experiments.persistence import save_envelope

        save_envelope(path, "run-telemetry", self.to_json())

    def render(self) -> str:
        """One human line for CLI output."""
        parts = [
            f"{self.trials} trials",
            f"{self.computed} computed",
            f"{self.cache_hits} cached",
        ]
        if self.failures:
            parts.append(f"{self.failures} failed")
        parts.append(f"{self.workers} worker(s)")
        if self.pool_batches:
            pool = f"{self.pool_batches} pooled batch(es)"
            if self.pool_fallbacks:
                pool += f" ({self.pool_fallbacks} fell back)"
            if self.pool_respawns:
                pool += f" ({self.pool_respawns} respawned)"
            parts.append(pool)
        parts.append(f"{self.wall_time:.2f}s wall")
        line = "exec: " + ", ".join(parts)
        for warning in self.warnings:
            line += f"\nwarning: {warning}"
        return line
