"""Checksum algorithms used to gate packet delivery.

The paper's AFF implementation delivers a reassembled packet only when
its checksum verifies; identifier collisions therefore surface as
checksum failures ("Packets that suffer from identifier collisions are
never delivered because of checksum failures or other inconsistencies",
Section 5).  We provide the three classic 16-bit algorithms so the
protocol layer can be configured with any of them:

* :func:`fletcher16` — Fletcher's checksum, the default: cheap and with
  position sensitivity (catches swapped fragments).
* :func:`crc16_ccitt` — CRC-16/CCITT-FALSE, the strongest of the three.
* :func:`internet_checksum` — RFC 1071 ones'-complement sum, as used by
  IP itself (the paper's fragmentation is modelled on IP's).

All return an integer in ``[0, 0xFFFF]``.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = [
    "ChecksumFn",
    "checksum_by_name",
    "crc16_ccitt",
    "fletcher16",
    "internet_checksum",
]

ChecksumFn = Callable[[bytes], int]


def fletcher16(data: bytes) -> int:
    """Fletcher-16 checksum (modulo 255, per RFC 1146 style).

    Position-dependent: permuting blocks changes the sum, which matters
    for detecting misordered reassembly.
    """
    c0 = 0
    c1 = 0
    for byte in data:
        c0 = (c0 + byte) % 255
        c1 = (c1 + c0) % 255
    return (c1 << 8) | c0


_CRC16_TABLE: list[int] = []


def _build_crc16_table() -> None:
    poly = 0x1021
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ poly) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        _CRC16_TABLE.append(crc)


_build_crc16_table()


def crc16_ccitt(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), table-driven."""
    crc = 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement 16-bit checksum (as in IPv4 headers).

    Odd-length input is zero-padded on the right, per the RFC.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    # Fold any remaining carry and complement.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


_BY_NAME: Dict[str, ChecksumFn] = {
    "fletcher16": fletcher16,
    "crc16": crc16_ccitt,
    "crc16_ccitt": crc16_ccitt,
    "internet": internet_checksum,
}


def checksum_by_name(name: str) -> ChecksumFn:
    """Look up a checksum function by configuration name.

    Raises ``KeyError`` with the list of valid names on a miss.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        valid = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown checksum {name!r}; valid: {valid}") from None
