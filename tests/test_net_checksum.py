"""Unit and property tests for checksum algorithms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import (
    checksum_by_name,
    crc16_ccitt,
    fletcher16,
    internet_checksum,
)

ALL_ALGOS = [fletcher16, crc16_ccitt, internet_checksum]


class TestKnownValues:
    def test_fletcher16_known_vector(self):
        # "abcde" -> 0xC8F0 (classic Fletcher-16 test vector)
        assert fletcher16(b"abcde") == 0xC8F0

    def test_fletcher16_abcdef(self):
        assert fletcher16(b"abcdef") == 0x2057

    def test_crc16_ccitt_known_vector(self):
        # CRC-16/CCITT-FALSE("123456789") = 0x29B1
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_crc16_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_internet_checksum_rfc1071_example(self):
        # RFC 1071 example words: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_internet_checksum_odd_length_pads(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


class TestProperties:
    @pytest.mark.parametrize("algo", ALL_ALGOS)
    @given(data=st.binary(max_size=200))
    def test_range_is_16_bit(self, algo, data):
        assert 0 <= algo(data) <= 0xFFFF

    @pytest.mark.parametrize("algo", ALL_ALGOS)
    @given(data=st.binary(min_size=1, max_size=100), index=st.integers(min_value=0))
    def test_single_byte_change_detected(self, algo, data, index):
        index %= len(data)
        corrupted = bytearray(data)
        corrupted[index] ^= 0x5A
        assert algo(bytes(corrupted)) != algo(data)

    def test_fletcher_is_position_sensitive(self):
        """Reordering blocks changes the sum (unlike a plain byte sum)."""
        a = b"hello world"
        b = b"world hello"
        assert fletcher16(a) != fletcher16(b)

    @given(data=st.binary(max_size=60))
    def test_algorithms_disagree_rarely_but_exist_independently(self, data):
        """The three algorithms are genuinely different functions."""
        # On at least one canonical input they must all differ pairwise.
        probe = b"123456789"
        values = {fletcher16(probe), crc16_ccitt(probe), internet_checksum(probe)}
        assert len(values) == 3
        # And each is a pure function of its input.
        for algo in ALL_ALGOS:
            assert algo(data) == algo(bytes(data))

    def test_deterministic(self):
        data = b"sensor reading 42"
        for algo in ALL_ALGOS:
            assert algo(data) == algo(data)


class TestLookup:
    def test_lookup_all_names(self):
        assert checksum_by_name("fletcher16") is fletcher16
        assert checksum_by_name("crc16") is crc16_ccitt
        assert checksum_by_name("crc16_ccitt") is crc16_ccitt
        assert checksum_by_name("internet") is internet_checksum

    def test_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="fletcher16"):
            checksum_by_name("md5")
