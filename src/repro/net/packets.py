"""Application-level packet structures and exact bit accounting.

The paper's efficiency metric (Eq. 1) is ``useful bits received / total
bits transmitted``, so the reproduction tracks header and payload sizes
*in bits*, exactly.  :class:`Packet` is the unit handed to a
fragmentation service; :class:`BitBudget` tallies transmitted/received
bits by category so experiments can compute E without re-parsing traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Packet", "BitBudget", "next_packet_seq"]

_packet_seq = itertools.count(1)


def next_packet_seq() -> int:
    """Globally unique (per-interpreter) packet sequence for ground truth.

    This is *instrumentation*, not protocol state: it plays the role of
    the paper's hidden guaranteed-unique identifier used to measure how
    many packets would have been lost to AFF-id collisions.
    """
    return next(_packet_seq)


@dataclass
class Packet:
    """An application packet to be fragmented and transmitted.

    Attributes
    ----------
    payload:
        Application bytes (the "useful bits").
    origin:
        Ground-truth sender identity (instrumentation only — never
        transmitted by address-free protocols).
    seq:
        Ground-truth unique packet number (instrumentation only).
    created_at:
        Simulated time of creation, for latency accounting.
    """

    payload: bytes
    origin: Optional[int] = None
    seq: int = field(default_factory=next_packet_seq)
    created_at: float = 0.0

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    @property
    def size_bits(self) -> int:
        return 8 * len(self.payload)

    def ground_truth_key(self) -> tuple:
        """(origin, seq): unique across the whole simulation."""
        return (self.origin, self.seq)

    def __repr__(self) -> str:
        return (
            f"<Packet origin={self.origin} seq={self.seq} "
            f"len={len(self.payload)}B>"
        )


class BitBudget:
    """Exact ledger of bits transmitted and usefully received.

    Categories are free-form strings; the AFF and static drivers use
    ``"header"``, ``"payload"``, and ``"control"``.  The paper's
    efficiency metric is then::

        E = useful_bits_received / total_bits_transmitted

    where the driver calls :meth:`credit_useful` only for payload bits of
    packets that were *successfully delivered* (checksum verified, no
    identifier collision).
    """

    def __init__(self) -> None:
        self._transmitted: Dict[str, int] = {}
        self._useful_received = 0

    # ------------------------------------------------------------------
    def charge_transmit(self, category: str, bits: int) -> None:
        """Record ``bits`` transmitted under ``category``."""
        if bits < 0:
            raise ValueError("cannot transmit a negative number of bits")
        self._transmitted[category] = self._transmitted.get(category, 0) + bits

    def credit_useful(self, bits: int) -> None:
        """Record ``bits`` of useful payload delivered to an application."""
        if bits < 0:
            raise ValueError("cannot receive a negative number of bits")
        self._useful_received += bits

    # ------------------------------------------------------------------
    @property
    def total_transmitted(self) -> int:
        return sum(self._transmitted.values())

    @property
    def useful_received(self) -> int:
        return self._useful_received

    def transmitted(self, category: str) -> int:
        return self._transmitted.get(category, 0)

    def by_category(self) -> Dict[str, int]:
        return dict(self._transmitted)

    def efficiency(self) -> float:
        """Eq. 1 of the paper.  NaN when nothing has been transmitted."""
        total = self.total_transmitted
        if total == 0:
            return float("nan")
        return self._useful_received / total

    def merge(self, other: "BitBudget") -> None:
        """Fold another ledger into this one (for multi-node aggregation)."""
        for category, bits in other._transmitted.items():
            self.charge_transmit(category, bits)
        self.credit_useful(other._useful_received)

    def __repr__(self) -> str:
        return (
            f"<BitBudget tx={self.total_transmitted}b "
            f"useful_rx={self._useful_received}b E={self.efficiency():.4f}>"
        )
