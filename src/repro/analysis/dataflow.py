"""Conservative intraprocedural dataflow helpers.

Three small engines shared by the project rule packs:

* :class:`TaintTracker` — forward taint propagation over one lexical
  scope.  Seeded with source names (typically parameters) and a
  predicate for source *expressions* (``derive_seed(...)`` calls,
  ``config.seed`` attributes), it iterates the scope's assignments to a
  fixpoint so ``a = seed; b = a + 1; random.Random(b)`` is recognised as
  seed-derived.  Taint spreads through any expression containing a
  tainted name — deliberately coarse: over-tainting suppresses findings
  (safe), under-tainting invents them (not safe).

* :func:`static_dict_keys` — the provable set of string keys a dict
  expression may hold at the end of a scope, following dict literals,
  ``dict(...)`` copies/kwargs, and constant-key ``d[k] = v`` stores.
  Returns ``None`` whenever any key is not statically known; rules must
  treat ``None`` as "unknown, stay silent".

* :func:`ambient_reads` — call/attribute sites inside a scope that pull
  in ambient process state (environment, wall clock, filesystem,
  stdin): the inputs that silently invalidate a content-addressed cache
  entry when they are not part of its key.

Scopes are walked with :func:`scope_walk`, which does not descend into
nested ``def``/``class``/``lambda`` bodies — each nested function is its
own scope, analysed with its parent's tainted names as inherited
sources.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator, Optional, Set, Tuple, Union

from .symbols import ModuleSymbols

__all__ = [
    "TaintTracker",
    "ambient_reads",
    "call_name",
    "is_module_ref",
    "keyword_arg",
    "owned_calls",
    "param_names",
    "scope_walk",
    "static_dict_keys",
]

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Fixpoint iteration cap; real functions converge in 2-3 passes.
_MAX_PASSES = 25

_DICT_KEY_DEPTH = 6


def scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Every node owned by ``root``'s scope.

    Yields nested ``def``/``class``/``lambda`` statements themselves
    (so callers can recurse into them) but never their bodies.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            yield child
            if not isinstance(child, _NESTED_SCOPES):
                stack.append(child)


def owned_calls(root: ast.AST) -> Iterator[ast.Call]:
    """Call sites owned by ``root``'s scope (not nested functions')."""
    for node in scope_walk(root):
        if isinstance(node, ast.Call):
            yield node


def param_names(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Set[str]:
    """All parameter names of a function, every kind included."""
    args = func.args
    names = {
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def call_name(call: ast.Call) -> Optional[str]:
    """Terminal name of a call target: ``m.f(...)`` and ``f(...)`` -> ``f``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def positional_or_keyword(
    call: ast.Call, index: int, name: str
) -> Optional[ast.expr]:
    """Argument by position or keyword, ``None`` if absent or starred."""
    value = keyword_arg(call, name)
    if value is not None:
        return value
    if index < len(call.args):
        arg = call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


class TaintTracker:
    """Forward taint over one scope, run to fixpoint at construction."""

    def __init__(
        self,
        scope: ast.AST,
        sources: Iterable[str],
        is_source: Optional[Callable[[ast.AST], bool]] = None,
    ):
        self.tainted: Set[str] = set(sources)
        self._is_source: Callable[[ast.AST], bool] = is_source or (lambda node: False)
        self._scope = scope
        for _ in range(_MAX_PASSES):
            if not self._propagate_once():
                break

    # ------------------------------------------------------------------
    def expr_tainted(self, expr: ast.AST) -> bool:
        """Does ``expr`` (or any sub-expression) carry taint?"""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return True
            if self._is_source(node):
                return True
        return False

    # ------------------------------------------------------------------
    def _propagate_once(self) -> bool:
        changed = False
        for node in scope_walk(self._scope):
            if isinstance(node, ast.Assign):
                if self.expr_tainted(node.value):
                    changed |= self._taint_targets(node.targets)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and self.expr_tainted(node.value):
                    changed |= self._taint_targets([node.target])
            elif isinstance(node, ast.AugAssign):
                if self.expr_tainted(node.value):
                    changed |= self._taint_targets([node.target])
            elif isinstance(node, ast.NamedExpr):
                if self.expr_tainted(node.value):
                    changed |= self._taint_targets([node.target])
            elif isinstance(node, ast.For):
                if self.expr_tainted(node.iter):
                    changed |= self._taint_targets([node.target])
            elif isinstance(node, ast.comprehension):
                if self.expr_tainted(node.iter):
                    changed |= self._taint_targets([node.target])
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None and self.expr_tainted(
                    node.context_expr
                ):
                    changed |= self._taint_targets([node.optional_vars])
        return changed

    def _taint_targets(self, targets: Iterable[ast.expr]) -> bool:
        changed = False
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name) and node.id not in self.tainted:
                    self.tainted.add(node.id)
                    changed = True
        return changed


# ----------------------------------------------------------------------
# Static dict-key analysis (SEED002's cache-key completeness check)
# ----------------------------------------------------------------------


def _dict_literal_keys(node: ast.Dict) -> Optional[Set[str]]:
    keys: Set[str] = set()
    for key in node.keys:
        if (
            key is not None
            and isinstance(key, ast.Constant)
            and isinstance(key.value, str)
        ):
            keys.add(key.value)
        else:
            return None
    return keys


def static_dict_keys(
    scope: ast.AST,
    expr: ast.expr,
    _depth: int = 0,
    _seen: Optional[Set[str]] = None,
) -> Optional[Set[str]]:
    """String keys ``expr`` provably holds by the end of ``scope``.

    Understands dict literals with constant string keys, ``dict(...)``
    construction (keyword args, single-positional copy), and — for
    names — the union of every assignment plus constant-key subscript
    stores.  Any construct outside that vocabulary (``**`` splats,
    computed keys, ``.update(...)`` with unknown argument, unassigned
    names such as parameters) makes the whole answer ``None``.
    """
    if _depth > _DICT_KEY_DEPTH:
        return None
    seen = _seen if _seen is not None else set()
    if isinstance(expr, ast.Dict):
        return _dict_literal_keys(expr)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id == "dict":
            keys: Set[str] = set()
            for keyword in expr.keywords:
                if keyword.arg is None:
                    return None
                keys.add(keyword.arg)
            if expr.args:
                if len(expr.args) != 1:
                    return None
                base = static_dict_keys(scope, expr.args[0], _depth + 1, seen)
                if base is None:
                    return None
                keys |= base
            return keys
        return None
    if isinstance(expr, ast.Name):
        return _name_dict_keys(scope, expr.id, _depth, seen)
    return None


def _name_dict_keys(
    scope: ast.AST, name: str, depth: int, seen: Set[str]
) -> Optional[Set[str]]:
    if name in seen:
        return None
    seen.add(name)
    keys: Set[str] = set()
    assigned = False
    for node in scope_walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    assigned = True
                    sub = static_dict_keys(scope, node.value, depth + 1, seen)
                    if sub is None:
                        return None
                    keys |= sub
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name
                ):
                    # d["k"] = v adds a key; a computed key adds "anything"
                    key = target.slice
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
                    else:
                        return None
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                if node.value is None:
                    continue
                assigned = True
                sub = static_dict_keys(scope, node.value, depth + 1, seen)
                if sub is None:
                    return None
                keys |= sub
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == name
                and func.attr in {"update", "setdefault"}
            ):
                return None
    return keys if assigned else None


# ----------------------------------------------------------------------
# Ambient-input detection (EXEC003 / PURE001)
# ----------------------------------------------------------------------

_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "localtime", "gmtime"},
    "datetime": {"now", "utcnow", "today"},
}

_FILE_READ_METHODS = {"read_text", "read_bytes"}


def is_module_ref(
    module: ModuleSymbols, expr: ast.expr, target: str
) -> bool:
    """Does ``expr`` refer to stdlib module ``target`` (or a name from it)?

    Accepts ``import target [as a]`` aliases, names imported *from*
    ``target`` (``from datetime import datetime``), and one attribute
    hop for ``datetime.datetime``-style class access.
    """
    if isinstance(expr, ast.Name):
        if module.import_aliases.get(expr.id) == target:
            return True
        imported = module.from_imports.get(expr.id)
        return imported is not None and imported[0] == target
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        return module.import_aliases.get(expr.value.id) == target
    return False


def ambient_reads(
    module: ModuleSymbols, scope: ast.AST
) -> Iterator[Tuple[ast.AST, str]]:
    """Sites in ``scope`` that read ambient process state.

    Yields ``(node, what)`` pairs for environment lookups, wall-clock
    reads, filesystem reads, and stdin — everything that can change a
    trial's behaviour without changing its arguments.
    """
    env_names = {
        local
        for local, (src, orig) in module.from_imports.items()
        if src == "os" and orig in {"environ", "getenv"}
    }
    clock_names = {
        local: (src, orig)
        for local, (src, orig) in module.from_imports.items()
        if src in _CLOCK_ATTRS and orig in _CLOCK_ATTRS[src]
    }
    for node in scope_walk(scope):
        if isinstance(node, ast.Attribute):
            if node.attr == "environ" and is_module_ref(module, node.value, "os"):
                yield node, "os.environ"
        elif isinstance(node, ast.Name):
            if node.id in env_names:
                yield node, f"os.{module.from_imports[node.id][1]}"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "open":
                    yield node, "open()"
                elif func.id == "input":
                    yield node, "input()"
                elif func.id in clock_names:
                    src, orig = clock_names[func.id]
                    yield node, f"{src}.{orig}()"
            elif isinstance(func, ast.Attribute):
                if func.attr == "getenv" and is_module_ref(
                    module, func.value, "os"
                ):
                    yield node, "os.getenv()"
                elif func.attr in _FILE_READ_METHODS:
                    yield node, f".{func.attr}()"
                else:
                    for mod_name, attrs in _CLOCK_ATTRS.items():
                        if func.attr in attrs and is_module_ref(
                            module, func.value, mod_name
                        ):
                            yield node, f"{mod_name}.{func.attr}()"
                            break
