"""Microbenchmarks: throughput of the core primitives.

Not a paper figure — these time the building blocks so performance
regressions in the simulator or codec are caught: event-queue rate,
fragmentation/reassembly throughput, selector draw rate, and the
analytic model's sweep speed.
"""

import random

from repro.aff.fragmenter import Fragmenter
from repro.aff.reassembler import Reassembler
from repro.aff.wire import FragmentCodec
from repro.core import model
from repro.core.identifiers import IdentifierSpace, ListeningSelector, UniformSelector
from repro.sim.engine import Simulator


def test_event_queue_throughput(benchmark):
    def run():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return counter[0]

    assert benchmark(run) == 10_000


def test_fragmentation_throughput(benchmark):
    frag = Fragmenter(FragmentCodec(9), mtu_bytes=27)
    payload = bytes(range(256)) * 4  # 1 KiB

    def run():
        plan = frag.fragment(payload, identifier=13)
        return sum(len(frag.codec.encode(f)) for f in plan.fragments)

    assert benchmark(run) > 0


def test_reassembly_throughput(benchmark):
    frag = Fragmenter(FragmentCodec(9), mtu_bytes=27)
    payload = bytes(range(256)) * 4
    fragments = frag.fragment(payload, identifier=13).fragments

    def run():
        reasm = Reassembler()
        out = None
        for f in fragments:
            result = reasm.accept(f, now=0.0)
            if result is not None:
                out = result
        return out

    assert benchmark(run) == payload


def test_uniform_selector_rate(benchmark):
    selector = UniformSelector(IdentifierSpace(9), random.Random(1))

    def run():
        return [selector.select() for _ in range(1000)]

    assert len(benchmark(run)) == 1000


def test_listening_selector_rate(benchmark):
    selector = ListeningSelector(
        IdentifierSpace(9), random.Random(1), density_hint=16
    )
    for i in range(64):
        selector.observe(i % 512)

    def run():
        return [selector.select() for _ in range(1000)]

    assert len(benchmark(run)) == 1000


def test_model_sweep_rate(benchmark):
    def run():
        total = 0.0
        for density in (4, 16, 64, 256, 1024):
            _, eff = model.sweep_aff_efficiency(16, density, (1, 48))
            total += float(eff.sum())
        return total

    assert benchmark(run) > 0
