"""Attribute-based name compression with RETRI codes (Section 6, bullet 2).

Sensor data is named by attribute/value lists ("type=temperature,
quadrant=NE, unit=C") that dwarf the readings they describe.  The
classic fix is a *codebook*: transmit the long attribute string once,
bound to a short code, then send only the code.  The code is an
identifier referencing shared state — exactly a RETRI transaction:

* **RETRI codes** — the binding's code is drawn at random from a small
  pool for the lifetime of the binding (the transaction).  Two nodes
  binding different attributes to the same code within earshot corrupt
  each other's decodings; receivers detect the clash when a second,
  different binding arrives for a held code and drop the code (both
  bindings are lost until refreshed) — collisions are losses, never
  silent lies.
* **Unique codes** — guaranteed-unique wide codes (e.g. node address +
  local counter): collision-free, but every data message pays the wide
  code.

:class:`CodebookSender` / :class:`CodebookReceiver` implement both modes
over the radio; ground truth (which attribute a message really named)
rides in frame instrumentation so experiments can count mis-decodes and
compute bits-per-delivered-report.

Wire formats (bit-packed):

==============  =====================================================
Binding          kind(2) | code(C) | attr_len(8) | attribute bytes
Report           kind(2) | code(C) | value(16)
==============  =====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.identifiers import IdentifierSelector
from ..net.packets import BitBudget
from ..radio.frame import Frame
from ..radio.radio import Radio
from ..sim.engine import Simulator
from ..util.bits import BitReader, BitWriter, BitstreamError

__all__ = ["CodebookSender", "CodebookReceiver", "CodebookStats"]

KIND_BINDING = 0
KIND_REPORT = 1
#: receiver-initiated clash notification: "code X is bound ambiguously"
KIND_CLASH = 2

_KIND_BITS = 2
_ATTRLEN_BITS = 8
_VALUE_BITS = 16


@dataclass
class CodebookStats:
    """Receiver-side ground-truth accounting."""

    bindings_heard: int = 0
    reports_heard: int = 0
    reports_decoded: int = 0
    reports_correct: int = 0
    reports_misdecoded: int = 0
    reports_undecodable: int = 0
    code_clashes_detected: int = 0

    def misdecode_rate(self) -> float:
        if self.reports_decoded == 0:
            return float("nan")
        return self.reports_misdecoded / self.reports_decoded


class _CodebookCodec:
    def __init__(self, code_bits: int):
        self.code_bits = code_bits

    @property
    def report_header_bits(self) -> int:
        return _KIND_BITS + self.code_bits

    def binding_bits(self, attribute: bytes) -> int:
        return _KIND_BITS + self.code_bits + _ATTRLEN_BITS + 8 * len(attribute)

    def encode_binding(self, code: int, attribute: bytes) -> bytes:
        if len(attribute) >= (1 << _ATTRLEN_BITS):
            raise ValueError("attribute string too long for the wire format")
        writer = BitWriter()
        writer.write(KIND_BINDING, _KIND_BITS)
        writer.write(code, self.code_bits)
        writer.write(len(attribute), _ATTRLEN_BITS)
        writer.write_bytes(attribute)
        return writer.getvalue()

    def encode_report(self, code: int, value: int) -> bytes:
        writer = BitWriter()
        writer.write(KIND_REPORT, _KIND_BITS)
        writer.write(code, self.code_bits)
        writer.write(value & 0xFFFF, _VALUE_BITS)
        return writer.getvalue()

    def encode_clash(self, code: int) -> bytes:
        writer = BitWriter()
        writer.write(KIND_CLASH, _KIND_BITS)
        writer.write(code, self.code_bits)
        return writer.getvalue()

    def decode(self, data: bytes):
        reader = BitReader(data)
        kind = reader.read(_KIND_BITS)
        code = reader.read(self.code_bits)
        if kind == KIND_BINDING:
            length = reader.read(_ATTRLEN_BITS)
            attribute = reader.read_bytes(length)
            return kind, code, attribute
        if kind == KIND_REPORT:
            return kind, code, reader.read(_VALUE_BITS)
        if kind == KIND_CLASH:
            return kind, code, None
        raise BitstreamError(f"unknown codebook message kind {kind}")


class CodebookSender:
    """Publishes attribute bindings and compressed reports.

    ``report(attribute, value)`` sends the binding first if the
    attribute has no live code (or its binding epoch expired), then the
    compressed report.  Codes come from the selector — RETRI random
    codes or, with ``static_code_fn``, guaranteed-unique ones.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        selector: IdentifierSelector,
        binding_lifetime: float = 30.0,
        static_code_fn=None,
        budget: Optional[BitBudget] = None,
    ):
        self.sim = sim
        self.radio = radio
        self.selector = selector
        self.codec = _CodebookCodec(selector.space.bits)
        self.binding_lifetime = binding_lifetime
        self.static_code_fn = static_code_fn
        self.budget = budget if budget is not None else BitBudget()
        self._codes: Dict[bytes, Tuple[int, float]] = {}  # attr -> (code, expiry)
        self.bindings_sent = 0
        self.reports_sent = 0
        self.clashes_heard = 0
        radio.set_receive_handler(self._on_frame)

    def _on_frame(self, frame: Frame) -> None:
        """Senders listen for receiver-initiated clash notifications.

        A clash means our code (or someone else's) is ambiguous at a
        receiver; if we hold it, drop the binding now — the next report
        rebinds with a fresh code instead of colliding until expiry.
        """
        try:
            kind, code, _body = self.codec.decode(frame.payload)
        except BitstreamError:
            return
        if kind != KIND_CLASH:
            return
        self.clashes_heard += 1
        self.selector.note_collision(code)
        for attribute, (held_code, _expiry) in list(self._codes.items()):
            if held_code == code:
                del self._codes[attribute]
                self.selector.note_transaction_end(held_code)

    def _code_for(self, attribute: bytes) -> Tuple[int, bool]:
        """Returns (code, is_fresh_binding)."""
        entry = self._codes.get(attribute)
        if entry is not None and entry[1] > self.sim.now:
            return entry[0], False
        if entry is not None:
            self.selector.note_transaction_end(entry[0])
        if self.static_code_fn is not None:
            code = self.static_code_fn(attribute)
        else:
            code = self.selector.select()
        self.selector.note_transaction_begin(code)
        self._codes[attribute] = (code, self.sim.now + self.binding_lifetime)
        return code, True

    def report(self, attribute: bytes, value: int) -> int:
        """Send (binding if needed +) report.  Returns the code used."""
        code, fresh = self._code_for(attribute)
        if fresh:
            payload = self.codec.encode_binding(code, attribute)
            frame = Frame(
                payload=payload,
                origin=self.radio.node_id,
                header_bits=8 * len(payload),
                payload_bits=0,
                ground_truth={"attribute": attribute, "source": self.radio.node_id},
            )
            self.budget.charge_transmit("control", frame.header_bits)
            self.radio.send(frame)
            self.bindings_sent += 1
        payload = self.codec.encode_report(code, value)
        frame = Frame(
            payload=payload,
            origin=self.radio.node_id,
            header_bits=8 * len(payload) - _VALUE_BITS,
            payload_bits=_VALUE_BITS,
            ground_truth={
                "attribute": attribute,
                "value": value,
                "source": self.radio.node_id,
            },
        )
        self.budget.charge_transmit("header", frame.header_bits)
        self.budget.charge_transmit("payload", frame.payload_bits)
        self.radio.send(frame)
        self.reports_sent += 1
        return code


class CodebookReceiver:
    """Decodes compressed reports against heard bindings.

    Clash handling: if a binding arrives for a code already bound to a
    *different* attribute, the receiver cannot tell which sender will use
    the code next, so it invalidates the code entirely (conservative; the
    paper's "identifier conflicts can lead to losses" path rather than
    silent misbehaviour).  Mis-decodes can still happen when the clash's
    first binding was missed — ground truth counts those.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        code_bits: int,
        notify_clashes: bool = False,
    ):
        self.sim = sim
        self.radio = radio
        self.codec = _CodebookCodec(code_bits)
        self.notify_clashes = notify_clashes
        self.clashes_notified = 0
        self._bindings: Dict[int, bytes] = {}
        self._poisoned: set[int] = set()
        self.stats = CodebookStats()
        self.decoded: list[Tuple[bytes, int]] = []
        radio.set_receive_handler(self._on_frame)

    def _broadcast_clash(self, code: int) -> None:
        payload = self.codec.encode_clash(code)
        self.radio.send(
            Frame(
                payload=payload,
                origin=self.radio.node_id,
                header_bits=8 * len(payload),
                payload_bits=0,
                ground_truth={"clash": code},
            )
        )
        self.clashes_notified += 1

    def _on_frame(self, frame: Frame) -> None:
        try:
            kind, code, body = self.codec.decode(frame.payload)
        except BitstreamError:
            return
        if kind == KIND_BINDING:
            self.stats.bindings_heard += 1
            attribute = body
            held = self._bindings.get(code)
            if held is not None and held != attribute:
                # Two senders bound different attributes to one code.
                self.stats.code_clashes_detected += 1
                self._bindings.pop(code, None)
                self._poisoned.add(code)
                if self.notify_clashes:
                    self._broadcast_clash(code)
                return
            self._bindings[code] = attribute
            self._poisoned.discard(code)
            return
        if kind != KIND_REPORT:
            return  # clash notifications are for senders, not us

        self.stats.reports_heard += 1
        truth = frame.ground_truth if isinstance(frame.ground_truth, dict) else {}
        if code in self._poisoned or code not in self._bindings:
            self.stats.reports_undecodable += 1
            return
        attribute = self._bindings[code]
        self.stats.reports_decoded += 1
        self.decoded.append((attribute, body))
        if truth.get("attribute") is not None:
            if truth["attribute"] == attribute:
                self.stats.reports_correct += 1
            else:
                self.stats.reports_misdecoded += 1
