"""Unit tests for traffic generators."""

import random

import pytest

from repro.aff.driver import AffDriver
from repro.apps.workloads import (
    BurstySender,
    ContinuousStreamSender,
    PeriodicSender,
    PoissonSender,
    random_payload,
)
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


def build(n=2, id_bits=12):
    sim = Simulator()
    medium = BroadcastMedium(sim, FullMesh(range(n)), rf_collisions=False)
    drivers = [
        AffDriver(
            Radio(medium, node),
            UniformSelector(IdentifierSpace(id_bits), random.Random(node)),
        )
        for node in range(n)
    ]
    return sim, drivers


class TestRandomPayload:
    def test_size_and_determinism(self):
        rng = random.Random(1)
        p = random_payload(rng, 80)
        assert len(p) == 80
        assert random_payload(random.Random(1), 80) == p


class TestContinuousStreamSender:
    def test_saturates_until_deadline(self):
        sim, drivers = build()
        sender = ContinuousStreamSender(
            sim, drivers[0], node_id=0, packet_bytes=80, duration=5.0,
            rng=random.Random(1),
        )
        sender.start()
        sim.run(until=6.0)
        assert sender.packets_offered > 10
        assert drivers[0].stats.packets_sent == sender.packets_offered

    def test_backpressure_keeps_queue_bounded(self):
        sim, drivers = build()
        sender = ContinuousStreamSender(
            sim, drivers[0], node_id=0, packet_bytes=80, duration=5.0,
            rng=random.Random(2),
        )
        sender.start()
        max_depth = [0]

        def sample():
            max_depth[0] = max(max_depth[0], drivers[0].radio.mac.queue_depth)
            sim.schedule(0.01, sample)

        sim.schedule(0.01, sample)
        sim.run(until=5.0)
        # One packet's worth of fragments at most (5 for 80 bytes).
        assert max_depth[0] <= 5

    def test_stops_at_deadline(self):
        sim, drivers = build()
        sender = ContinuousStreamSender(
            sim, drivers[0], node_id=0, packet_bytes=80, duration=2.0,
            rng=random.Random(3),
        )
        sender.start()
        sim.run(until=10.0)
        count = sender.packets_offered
        sim.run(until=20.0)
        assert sender.packets_offered == count

    def test_stagger_delays_first_packet(self):
        sim, drivers = build()
        sender = ContinuousStreamSender(
            sim, drivers[0], node_id=0, packet_bytes=80, duration=5.0,
            rng=random.Random(4), stagger=2.0,
        )
        sender.start()
        first_tx = []
        drivers[0].radio.add_tx_listener(
            lambda f: first_tx.append(sim.now) if not first_tx else None
        )
        sim.run(until=5.0)
        assert first_tx[0] <= 2.0 + 0.1
        assert sender.packets_offered > 0


class TestPeriodicSender:
    def test_rate_matches_interval(self):
        sim, drivers = build()
        sender = PeriodicSender(
            sim, drivers[0], node_id=0, packet_bytes=10, duration=60.0,
            rng=random.Random(1), interval=2.0,
        )
        sender.start()
        sim.run(until=61.0)
        assert sender.packets_offered == pytest.approx(30, abs=2)

    def test_jitter_varies_gaps(self):
        sim, drivers = build()
        times = []
        drivers[0].radio.add_tx_listener(lambda f: times.append(sim.now))
        sender = PeriodicSender(
            sim, drivers[0], node_id=0, packet_bytes=4, duration=60.0,
            rng=random.Random(2), interval=1.0, jitter=0.5,
        )
        sender.start()
        sim.run(until=30.0)
        # With 4-byte packets each send is 2 frames (intro+data); sample
        # intro times (every other frame).
        intro_times = times[::2]
        gaps = {round(b - a, 6) for a, b in zip(intro_times, intro_times[1:])}
        assert len(gaps) > 1  # not a fixed period

    def test_invalid_parameters(self):
        sim, drivers = build()
        with pytest.raises(ValueError):
            PeriodicSender(sim, drivers[0], node_id=0, packet_bytes=1,
                           duration=1.0, interval=0.0)
        with pytest.raises(ValueError):
            PeriodicSender(sim, drivers[0], node_id=0, packet_bytes=1,
                           duration=1.0, jitter=-1.0)


class TestPoissonSender:
    def test_mean_rate(self):
        sim, drivers = build()
        sender = PoissonSender(
            sim, drivers[0], node_id=0, packet_bytes=10, duration=200.0,
            rng=random.Random(3), rate=2.0,
        )
        sender.start()
        sim.run(until=201.0)
        assert sender.packets_offered == pytest.approx(400, rel=0.15)

    def test_invalid_rate(self):
        sim, drivers = build()
        with pytest.raises(ValueError):
            PoissonSender(sim, drivers[0], node_id=0, packet_bytes=1,
                          duration=1.0, rate=0.0)


class TestBurstySender:
    def test_traffic_arrives_in_bursts(self):
        sim, drivers = build()
        times = []
        drivers[0].radio.add_tx_listener(lambda f: times.append(sim.now))
        sender = BurstySender(
            sim, drivers[0], node_id=0, packet_bytes=4, duration=200.0,
            rng=random.Random(5), mean_on=2.0, mean_off=15.0,
            burst_interval=0.1,
        )
        sender.start()
        sim.run(until=201.0)
        assert sender.bursts >= 3
        assert sender.packets_offered > 10
        # Inter-send gaps are bimodal: many tiny intra-burst gaps and a
        # few long inter-burst silences.
        intro_times = times[::2]  # 4-byte packets = 2 frames each
        gaps = [b - a for a, b in zip(intro_times, intro_times[1:])]
        small = sum(1 for g in gaps if g < 1.0)
        large = sum(1 for g in gaps if g > 5.0)
        assert small > 5 and large >= 2

    def test_mean_rate_below_continuous(self):
        """OFF periods dominate: a bursty sensor sends far less than one
        reporting at the burst interval continuously."""
        sim, drivers = build()
        sender = BurstySender(
            sim, drivers[0], node_id=0, packet_bytes=4, duration=100.0,
            rng=random.Random(6), mean_on=1.0, mean_off=20.0,
            burst_interval=0.1,
        )
        sender.start()
        sim.run(until=101.0)
        continuous_equivalent = 100.0 / 0.1
        assert sender.packets_offered < continuous_equivalent / 5

    def test_stops_at_deadline(self):
        sim, drivers = build()
        sender = BurstySender(
            sim, drivers[0], node_id=0, packet_bytes=4, duration=30.0,
            rng=random.Random(7),
        )
        sender.start()
        sim.run(until=200.0)
        count = sender.packets_offered
        sim.run(until=400.0)
        assert sender.packets_offered == count

    def test_invalid_parameters(self):
        sim, drivers = build()
        with pytest.raises(ValueError):
            BurstySender(sim, drivers[0], node_id=0, packet_bytes=1,
                         duration=1.0, mean_on=0.0)
        with pytest.raises(ValueError):
            BurstySender(sim, drivers[0], node_id=0, packet_bytes=1,
                         duration=1.0, burst_interval=0.0)


class TestValidation:
    def test_negative_packet_bytes_rejected(self):
        sim, drivers = build()
        with pytest.raises(ValueError):
            ContinuousStreamSender(sim, drivers[0], node_id=0,
                                   packet_bytes=-1, duration=1.0)

    def test_zero_duration_rejected(self):
        sim, drivers = build()
        with pytest.raises(ValueError):
            ContinuousStreamSender(sim, drivers[0], node_id=0,
                                   packet_bytes=1, duration=0.0)
