"""The vectorised sampling fast path is bit-identical to the scalar loop.

Three facts make the NumPy transplant exact (see the module docstring
of :mod:`repro.flow.fastpath`); each is pinned here directly, and then
the end-to-end guarantee — same outcomes *and* same final stream state
as the scalar loop — is checked on real windows, along with every
eligibility gate that makes the fast path step aside.
"""

import random

import pytest

from repro.flow.fastpath import (
    HAVE_NUMPY,
    _MIN_FAST_MEAN,
    fastpath_stats,
    pure_sampling,
    sample_window_fast,
)
from repro.flow.sampler import WindowSpec, sample_window

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

if HAVE_NUMPY:
    import numpy as np


def big_window(mean=8192.0, width=10.0, index=0):
    """A window whose expected draw count clears the fast-path gate."""
    rate = mean / width
    return WindowSpec(
        index=index,
        t0=index * width,
        t1=(index + 1) * width,
        arrival_rate=rate,
        durations=(0.05,),
        weights=(rate,),
        density=rate * 0.05,
    )


@needs_numpy
class TestTransplantFacts:
    def test_random_sample_matches_random_random(self):
        # Fact 1: both fold the same two MT19937 words into one double.
        rng = random.Random(123)
        state = rng.getstate()
        rs = np.random.RandomState(0)
        rs.set_state(
            ("MT19937", np.asarray(state[1][:-1], dtype=np.uint32), state[1][-1])
        )
        vector = rs.random_sample(1000)
        scalars = [rng.random() for _ in range(1000)]
        assert vector.tolist() == scalars

    def test_cumprod_matches_sequential_product(self):
        # Fact 2: cumprod rounds exactly like the scalar running product.
        rng = random.Random(7)
        draws = np.asarray([rng.random() for _ in range(5000)])
        running = []
        product = 1.0
        for value in draws.tolist():
            product *= value
            running.append(product)
        assert np.cumprod(draws).tolist() == running

    def test_final_state_equals_scalar_advance(self):
        # Fact 3: write-back leaves the stream exactly where the same
        # number of scalar draws would have.
        fast = random.Random(99)
        pure = random.Random(99)
        window = big_window()
        outcome = sample_window_fast(window, 10, fast)
        assert outcome is not None
        with pure_sampling():
            sample_window(window, 10, pure)
        assert fast.getstate() == pure.getstate()
        # The streams keep agreeing on every draw afterwards.
        assert [fast.random() for _ in range(10)] == [
            pure.random() for _ in range(10)
        ]


@needs_numpy
class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 42, 2**31])
    @pytest.mark.parametrize("mean", [4096.0, 8192.0, 100_000.0])
    def test_outcome_and_state_match_pure(self, seed, mean):
        window = big_window(mean=mean)
        fast_rng = random.Random(seed)
        pure_rng = random.Random(seed)
        fast = sample_window(window, 10, fast_rng)
        with pure_sampling():
            pure = sample_window(window, 10, pure_rng)
        assert fast == pure
        assert fast_rng.getstate() == pure_rng.getstate()

    def test_chunked_means_cross_poisson_chunks(self):
        # Means past _POISSON_CHUNK exercise the chunk loop; the draw
        # sequence must still be the scalar one.
        window = big_window(mean=1750.0 * 3)
        fast_rng = random.Random(5)
        pure_rng = random.Random(5)
        assert sample_window(window, 8, fast_rng) == _pure(window, 8, pure_rng)
        assert fast_rng.getstate() == pure_rng.getstate()

    def test_eq4_model_matches(self):
        window = big_window()
        fast_rng = random.Random(3)
        pure_rng = random.Random(3)
        fast = sample_window(window, 10, fast_rng, model="eq4")
        with pure_sampling():
            pure = sample_window(window, 10, pure_rng, model="eq4")
        assert fast == pure
        assert fast_rng.getstate() == pure_rng.getstate()

    def test_bad_model_raises_with_stream_advanced(self):
        window = big_window()
        fast_rng = random.Random(17)
        pure_rng = random.Random(17)
        with pytest.raises(ValueError):
            sample_window(window, 10, fast_rng, model="nope")
        with pure_sampling(), pytest.raises(ValueError):
            sample_window(window, 10, pure_rng, model="nope")
        # Both paths left the stream past the Poisson draws.
        assert fast_rng.getstate() == pure_rng.getstate()


def _pure(window, id_bits, rng):
    with pure_sampling():
        return sample_window(window, id_bits, rng)


class TestEligibilityGates:
    @needs_numpy
    def test_small_mean_uses_scalar_path(self):
        window = big_window(mean=_MIN_FAST_MEAN / 2)
        assert sample_window_fast(window, 10, random.Random(0)) is None

    @needs_numpy
    def test_pure_sampling_forces_scalar(self):
        with pure_sampling():
            assert sample_window_fast(big_window(), 10, random.Random(0)) is None
            assert fastpath_stats()["forced_pure"]
        assert not fastpath_stats()["forced_pure"]

    @needs_numpy
    def test_subclassed_rng_is_ineligible(self):
        class Counting(random.Random):
            calls = 0

            def random(self):
                type(self).calls += 1
                return super().random()

        rng = Counting(0)
        assert sample_window_fast(big_window(), 10, rng) is None
        # The scalar fallback keeps drawing through the override.
        sample_window(big_window(), 10, rng)
        assert Counting.calls > 0

    @needs_numpy
    def test_sanitizer_forces_scalar(self):
        from repro.analysis.sanitizer.runtime import sanitizing

        with sanitizing():
            assert fastpath_stats()["sanitizer"]
            assert sample_window_fast(big_window(), 10, random.Random(0)) is None
        assert not fastpath_stats()["sanitizer"]

    def test_sample_window_agrees_under_sanitizer(self):
        # DetSan runs must still produce the same numbers as plain
        # runs — the sanitizer only changes *how* draws happen.
        from repro.analysis.sanitizer.runtime import sanitizing

        window = big_window()
        plain = sample_window(window, 10, random.Random(8))
        with sanitizing():
            sanitized = sample_window(window, 10, random.Random(8))
        assert sanitized == plain
