"""Rule pack 3 — RNG-stream hygiene.

:class:`repro.sim.rng.RngRegistry` streams are keyed by *name*: two
components that accidentally request the same name share one stream and
perturb each other's draws, and a name derived from process-varying
data (``id()``, ``hash()``, ``repr()``) silently changes between runs,
breaking replay of recorded experiments.

========  ==========================================================
RNG001    the same literal stream name requested at two different
          call sites within one function (accidental stream sharing)
RNG002    a stream name built from process-unstable data: an f-string
          interpolating ``id()`` / ``hash()`` / ``repr()`` or using
          the ``!r`` conversion
========  ==========================================================

Both rules key on the method name ``.stream(...)`` with a string-ish
first argument — a deliberate heuristic (the registry is the only such
API in this tree); suppress with ``# lint: ignore[RNG001]`` on a
genuine false positive.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from .core import Finding, ModuleContext, Rule, register

__all__ = ["DuplicateStreamNameRule", "UnstableStreamNameRule"]

_UNSTABLE_CALLS = frozenset({"id", "hash", "repr"})


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _calls_in_scope(scope: ast.AST) -> Iterator[ast.Call]:
    """Calls belonging to ``scope``, not to a function nested inside it."""
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # owned by its own scope
            if isinstance(child, ast.Call):
                yield child
            stack.append(child)


def _stream_calls(scope: ast.AST) -> Iterator[Tuple[ast.Call, ast.expr]]:
    """``(call, name_arg)`` for ``<receiver>.stream(<arg>)`` in ``scope``.

    Yielded in source order so "first request" reporting is stable.
    """
    matches = [
        call
        for call in _calls_in_scope(scope)
        if isinstance(call.func, ast.Attribute)
        and call.func.attr == "stream"
        and len(call.args) >= 1
    ]
    matches.sort(key=lambda call: (call.lineno, call.col_offset))
    for call in matches:
        yield call, call.args[0]


@register
class DuplicateStreamNameRule(Rule):
    rule_id = "RNG001"
    description = (
        "the same literal RngRegistry stream name requested at two "
        "call sites in one function — the components will share draws"
    )
    help_anchor = "pack-3--rng-stream-hygiene-rng"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in _scopes(ctx.tree):
            first_seen: Dict[Tuple[str, str], int] = {}
            for call, arg in _stream_calls(scope):
                if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                    continue
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                key = (ast.unparse(func.value), arg.value)
                if key in first_seen:
                    yield ctx.finding(
                        self,
                        call,
                        f"stream name {arg.value!r} already requested on "
                        f"line {first_seen[key]}; two components now share "
                        "one RNG stream",
                    )
                else:
                    first_seen[key] = call.lineno


@register
class UnstableStreamNameRule(Rule):
    rule_id = "RNG002"
    description = (
        "RngRegistry stream name derived from process-unstable data "
        "(id()/hash()/repr()/!r), breaking cross-run replay"
    )
    help_anchor = "pack-3--rng-stream-hygiene-rng"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in _scopes(ctx.tree):
            for call, arg in _stream_calls(scope):
                reason = self._unstable_reason(arg)
                if reason is not None:
                    yield ctx.finding(
                        self,
                        call,
                        f"stream name interpolates {reason}, which varies "
                        "between processes; use a stable key (node id, "
                        "component name, trial index)",
                    )

    @staticmethod
    def _unstable_reason(arg: ast.expr) -> str | None:
        if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name):
            if arg.func.id in _UNSTABLE_CALLS:
                return f"{arg.func.id}()"
        if not isinstance(arg, ast.JoinedStr):
            return None
        for node in ast.walk(arg):
            if isinstance(node, ast.FormattedValue) and node.conversion == ord("r"):
                return "a !r conversion"
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _UNSTABLE_CALLS
            ):
                return f"{node.func.id}()"
        return None
