"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(123456, "stream")
        assert 0 <= seed < 2**64

    def test_no_collision_among_many_names(self):
        seeds = {derive_seed(0, f"s{i}") for i in range(1000)}
        assert len(seeds) == 1000


class TestRngRegistry:
    def test_same_name_returns_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("chan")
        b = RngRegistry(7).stream("chan")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_give_different_sequences(self):
        reg = RngRegistry(7)
        xs = [reg.stream("x").random() for _ in range(5)]
        ys = [reg.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(3)
        s = reg1.stream("main")
        first = s.random()
        reg2 = RngRegistry(3)
        reg2.stream("other")  # consume nothing from "main"
        s2 = reg2.stream("main")
        assert s2.random() == first

    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("trial0")
        b = RngRegistry(5).fork("trial0")
        assert a.root_seed == b.root_seed

    def test_fork_differs_from_parent(self):
        reg = RngRegistry(5)
        assert reg.fork("t").root_seed != reg.root_seed

    def test_forks_differ_from_each_other(self):
        reg = RngRegistry(5)
        assert reg.fork("t0").root_seed != reg.fork("t1").root_seed

    def test_stream_names_listing(self):
        reg = RngRegistry(0)
        reg.stream("b")
        reg.stream("a")
        assert reg.stream_names == ["a", "b"]
