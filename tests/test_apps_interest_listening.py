"""Interest reinforcement with learning selectors.

The interest app's epochs are transactions too, so the listening
heuristic and collision notifications compose with it.  These tests
exercise those combinations (the plain-selector behaviour is covered in
test_apps_interest.py).
"""

import random

import pytest

from repro.apps.interest import InterestSink, InterestSource
from repro.core.identifiers import IdentifierSpace, ListeningSelector
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.graphs import FullMesh


def build(n_sources, id_bits=5, epoch=3.0, seed=0):
    rngs = RngRegistry(seed)
    sim = Simulator()
    medium = BroadcastMedium(sim, FullMesh(range(n_sources + 1)),
                             rf_collisions=False, rng=rngs.stream("m"))
    sink = InterestSink(sim, Radio(medium, n_sources), id_bits=id_bits)
    sources = []
    for node in range(n_sources):
        selector = ListeningSelector(
            IdentifierSpace(id_bits), rngs.stream(f"sel{node}"),
            density_hint=n_sources,
        )
        source = InterestSource(
            sim, Radio(medium, node), selector,
            epoch=epoch, base_interval=0.5,
            rng=rngs.stream(f"src{node}"),
        )
        sources.append(source)
    return sim, sources, sink


class TestListeningSelectorsInInterest:
    def test_sources_with_listening_selectors_run(self):
        sim, sources, sink = build(n_sources=4, seed=1)
        for s in sources:
            s.start()
        sim.run(until=30.0)
        for s in sources:
            assert s.stats.readings_sent > 10
            assert s.stats.reinforcements_received > 0

    def test_readings_feed_the_selectors(self):
        """Sources overhear each other's readings... but only via the
        interest protocol — readings are not introductions, so only
        identifiers they choose to track matter.  Here we verify the
        epochs rotate without identifier starvation in a small space."""
        sim, sources, sink = build(n_sources=4, id_bits=4, epoch=2.0, seed=2)
        for s in sources:
            s.start()
        sim.run(until=40.0)
        # Every source kept reporting for the whole run.
        for s in sources:
            assert s.stats.readings_sent >= 40

    def test_misdirection_lower_than_tiny_uniform_space(self):
        """At equal identifier width, rotating epochs with listening-
        capable selectors never do *worse* than the collision bound."""
        sim, sources, sink = build(n_sources=6, id_bits=4, epoch=2.0, seed=3)
        for s in sources:
            s.start()
        sim.run(until=60.0)
        total = sum(s.stats.reinforcements_received for s in sources)
        mis = sum(s.stats.reinforcements_misdirected for s in sources)
        assert total > 0
        # With 6 sources in a 16-id space, the memoryless collision bound
        # is 1-(15/16)^10 ~ 0.48; the app must sit at or below it.
        assert mis / total < 0.48
