"""Unit and property tests for the AFF fragmenter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aff.fragmenter import Fragmenter
from repro.aff.reassembler import Reassembler
from repro.aff.wire import DataFragment, FragmentCodec, IntroFragment
from repro.net.checksum import crc16_ccitt, fletcher16


def make(id_bits=8, mtu=27, checksum=fletcher16):
    return Fragmenter(FragmentCodec(id_bits), mtu_bytes=mtu, checksum=checksum)


class TestFragmentation:
    def test_paper_80_byte_packet_is_five_fragments(self):
        """Section 5.1: 'each of these packets were fragmented into five
        fragments (a single fragment introduction and four data
        fragments)' on the 27-byte RPC."""
        frag = make(id_bits=8, mtu=27)
        plan = frag.fragment(b"\x00" * 80, identifier=1)
        assert plan.fragment_count == 5
        assert isinstance(plan.fragments[0], IntroFragment)
        assert all(isinstance(f, DataFragment) for f in plan.fragments[1:])

    def test_intro_is_always_first_and_describes_packet(self):
        frag = make()
        payload = b"sensor data" * 3
        plan = frag.fragment(payload, identifier=42)
        intro = plan.fragments[0]
        assert intro.identifier == 42
        assert intro.total_length == len(payload)
        assert intro.checksum == fletcher16(payload)

    def test_all_fragments_share_the_identifier(self):
        """'Once an identifier is selected for a packet, all of that
        packet's fragments receive the same identifier' (Section 3.1)."""
        plan = make().fragment(b"\x00" * 100, identifier=7)
        assert {f.identifier for f in plan.fragments} == {7}

    def test_offsets_are_contiguous(self):
        frag = make()
        payload = bytes(range(256)) * 2
        plan = frag.fragment(payload, identifier=1)
        expected_offset = 0
        for f in plan.fragments[1:]:
            assert f.offset == expected_offset
            expected_offset += len(f.payload)
        assert expected_offset == len(payload)

    def test_empty_payload_is_intro_only(self):
        plan = make().fragment(b"", identifier=1)
        assert plan.fragment_count == 1

    def test_every_fragment_fits_the_mtu(self):
        for id_bits in (0, 4, 9, 16, 32):
            frag = make(id_bits=id_bits, mtu=27)
            plan = frag.fragment(b"\xaa" * 500, identifier=0)
            codec = frag.codec
            for f in plan.fragments:
                assert len(codec.encode(f)) <= 27

    def test_oversized_packet_rejected(self):
        with pytest.raises(ValueError):
            make().fragment(b"\x00" * 65536, identifier=1)

    def test_mtu_too_small_for_intro_rejected(self):
        with pytest.raises(ValueError):
            Fragmenter(FragmentCodec(id_bits=60), mtu_bytes=8)


class TestBitAccounting:
    def test_plan_bits_sum_to_encoded_content(self):
        frag = make(id_bits=9)
        payload = b"\x01" * 80
        plan = frag.fragment(payload, identifier=5)
        assert plan.payload_bits == 8 * 80
        expected_header = frag.codec.intro_header_bits + 4 * frag.codec.data_header_bits
        assert plan.header_bits == expected_header

    def test_fragments_for_size_matches_actual(self):
        frag = make()
        for size in (0, 1, 21, 22, 23, 44, 80, 1000):
            plan = frag.fragment(b"\x00" * size, identifier=0)
            assert frag.fragments_for_size(size) == plan.fragment_count

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make().fragments_for_size(-1)


class TestRoundTripWithReassembler:
    @settings(max_examples=50)
    @given(
        payload=st.binary(min_size=0, max_size=2000),
        id_bits=st.integers(min_value=0, max_value=24),
        mtu=st.integers(min_value=12, max_value=64),
        identifier=st.integers(min_value=0),
    )
    def test_fragment_then_reassemble_is_identity(
        self, payload, id_bits, mtu, identifier
    ):
        identifier %= 1 << id_bits if id_bits else 1
        frag = Fragmenter(FragmentCodec(id_bits), mtu_bytes=mtu)
        plan = frag.fragment(payload, identifier=identifier)
        reasm = Reassembler()
        result = None
        for fragment in plan.fragments:
            out = reasm.accept(fragment, now=0.0)
            if out is not None:
                result = out
        assert result == payload

    @settings(max_examples=30)
    @given(
        payload=st.binary(min_size=1, max_size=500),
        seed=st.integers(),
    )
    def test_reassembly_handles_any_data_fragment_order(self, payload, seed):
        """Data fragments may arrive in any order after the introduction."""
        import random

        frag = make(id_bits=8)
        plan = frag.fragment(payload, identifier=3)
        intro, data = plan.fragments[0], list(plan.fragments[1:])
        random.Random(seed).shuffle(data)
        reasm = Reassembler()
        result = reasm.accept(intro, now=0.0)
        for fragment in data:
            out = reasm.accept(fragment, now=0.0)
            if out is not None:
                result = out
        assert result == payload

    def test_checksum_mismatch_between_sender_and_receiver_configs(self):
        """Mismatched checksum functions must fail closed, not deliver."""
        frag = make(checksum=fletcher16)
        plan = frag.fragment(b"payload bytes here", identifier=1)
        reasm = Reassembler(checksum=crc16_ccitt)
        result = None
        for fragment in plan.fragments:
            out = reasm.accept(fragment, now=0.0)
            if out is not None:
                result = out
        assert result is None
        assert reasm.stats.checksum_failures == 1
