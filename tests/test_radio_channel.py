"""Unit tests for loss-channel models."""

import random

import pytest

from repro.radio.channel import (
    BernoulliChannel,
    GilbertElliottChannel,
    PerfectChannel,
)


class TestPerfectChannel:
    def test_never_drops(self):
        chan = PerfectChannel()
        rng = random.Random(0)
        assert all(chan.deliver(rng) for _ in range(1000))


class TestBernoulliChannel:
    def test_zero_loss_delivers_everything(self):
        chan = BernoulliChannel(0.0)
        rng = random.Random(1)
        assert all(chan.deliver(rng) for _ in range(500))

    def test_total_loss_drops_everything(self):
        chan = BernoulliChannel(1.0)
        rng = random.Random(1)
        assert not any(chan.deliver(rng) for _ in range(500))

    def test_empirical_rate_close_to_parameter(self):
        chan = BernoulliChannel(0.3)
        rng = random.Random(42)
        n = 20000
        drops = sum(0 if chan.deliver(rng) else 1 for _ in range(n))
        assert drops / n == pytest.approx(0.3, abs=0.02)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliChannel(1.5)
        with pytest.raises(ValueError):
            BernoulliChannel(-0.1)


class TestGilbertElliott:
    def test_stationary_loss_rate_formula(self):
        chan = GilbertElliottChannel(
            p_good_to_bad=0.1, p_bad_to_good=0.3, good_loss=0.0, bad_loss=1.0
        )
        # pi_bad = 0.1 / 0.4 = 0.25
        assert chan.stationary_loss_rate() == pytest.approx(0.25)

    def test_empirical_rate_matches_stationary(self):
        chan = GilbertElliottChannel(p_good_to_bad=0.05, p_bad_to_good=0.2)
        rng = random.Random(7)
        n = 50000
        drops = sum(0 if chan.deliver(rng) else 1 for _ in range(n))
        assert drops / n == pytest.approx(chan.stationary_loss_rate(), abs=0.02)

    def test_losses_are_bursty(self):
        """Consecutive-loss runs must be longer than under i.i.d. loss."""
        chan = GilbertElliottChannel(p_good_to_bad=0.02, p_bad_to_good=0.1)
        rng = random.Random(11)
        outcomes = [chan.deliver(rng) for _ in range(50000)]
        # mean run length of drops
        runs, current = [], 0
        for ok in outcomes:
            if not ok:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        mean_run = sum(runs) / len(runs)
        # Bad state persists ~1/0.1 = 10 frames; i.i.d. would give ~1.2.
        assert mean_run > 3.0

    def test_degenerate_no_transitions(self):
        chan = GilbertElliottChannel(p_good_to_bad=0.0, p_bad_to_good=0.0)
        assert chan.stationary_loss_rate() == 0.0  # starts (and stays) good

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_good_to_bad=2.0, p_bad_to_good=0.1)
