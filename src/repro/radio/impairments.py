"""Receive-path failure injection: duplicates and reordering.

Real radio drivers deliver duplicated frames (retransmission overlap,
capture glitches) and occasionally reorder them (interrupt coalescing in
the host).  The paper's robustness stance — protocols "must already be
highly robust" to such vagaries — is only credible if tested, so
:class:`ReceiveImpairments` wraps a radio's receive path and injects
both faults probabilistically and deterministically (seeded).

The medium's loss/collision models handle *drops*; this handles the
faults that deliver wrong *copies* or wrong *order*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Simulator
from ..sim.rng import fallback_stream
from .frame import Frame
from .radio import Radio

__all__ = ["ImpairmentStats", "ReceiveImpairments"]


@dataclass
class ImpairmentStats:
    """What the injector actually did."""

    frames_seen: int = 0
    duplicates_injected: int = 0
    frames_delayed: int = 0


class ReceiveImpairments:
    """Wraps ``radio``'s receive handler with fault injection.

    Parameters
    ----------
    radio:
        The radio to impair.  Install this wrapper *after* the protocol
        driver binds its handler; the wrapper interposes transparently.
    duplicate_prob:
        Each received frame is delivered a second time with this
        probability, ``duplicate_delay`` seconds later.
    reorder_prob:
        Each received frame is held back ``reorder_delay`` seconds with
        this probability, letting later frames overtake it.
    rng:
        Dedicated random stream (determinism).
    """

    def __init__(
        self,
        radio: Radio,
        duplicate_prob: float = 0.0,
        reorder_prob: float = 0.0,
        duplicate_delay: float = 0.005,
        reorder_delay: float = 0.02,
        rng: Optional[random.Random] = None,
    ):
        for name, p in (("duplicate_prob", duplicate_prob),
                        ("reorder_prob", reorder_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if duplicate_delay < 0 or reorder_delay < 0:
            raise ValueError("delays must be >= 0")
        self.radio = radio
        self.duplicate_prob = duplicate_prob
        self.reorder_prob = reorder_prob
        self.duplicate_delay = duplicate_delay
        self.reorder_delay = reorder_delay
        self.rng = rng if rng is not None else fallback_stream("radio.ReceiveImpairments")
        self.stats = ImpairmentStats()
        self._inner = radio._handler
        if self._inner is None:
            raise ValueError(
                "bind the protocol driver's handler before installing "
                "ReceiveImpairments"
            )
        radio.set_receive_handler(self._on_frame)

    @property
    def _sim(self) -> Simulator:
        return self.radio.medium.sim

    def _on_frame(self, frame: Frame) -> None:
        self.stats.frames_seen += 1
        if self.reorder_prob and self.rng.random() < self.reorder_prob:
            self.stats.frames_delayed += 1
            self._sim.schedule(self.reorder_delay, self._inner, frame)
        else:
            self._inner(frame)
        if self.duplicate_prob and self.rng.random() < self.duplicate_prob:
            self.stats.duplicates_injected += 1
            self._sim.schedule(self.duplicate_delay, self._inner, frame)

    def remove(self) -> None:
        """Restore the original handler (stop injecting)."""
        self.radio.set_receive_handler(self._inner)
