#!/usr/bin/env python3
"""A dense sensor field: spatial locality, churn, and energy accounting.

The scenario the paper's introduction motivates: many small sensors
scattered over an area, each with a short-range radio, periodically
reporting a few bytes.  This example builds a random geometric (disk)
topology, runs periodic traffic through the AFF stack while nodes join
and fail, and reports:

* how transaction density compares to network size (the locality RETRI
  exploits — identifiers sized for *neighbourhood* contention, not the
  whole network);
* hidden-terminal exposure of the deployment;
* delivery statistics and per-node energy spent.

Run:  python examples/sensor_field.py
"""

import random

from repro import (
    AffDriver,
    BroadcastMedium,
    DiskGraph,
    IdentifierSpace,
    Radio,
    RngRegistry,
    Simulator,
    UniformSelector,
    min_static_bits,
    optimal_identifier_bits,
)
from repro.apps.workloads import PeriodicSender
from repro.topology import (
    ChurnProcess,
    hidden_terminal_fraction,
    mean_degree,
)

N_NODES = 60
RADIO_RANGE = 0.22
DURATION = 120.0
REPORT_BYTES = 4


def main() -> None:
    rngs = RngRegistry(root_seed=2026)
    sim = Simulator()

    field = DiskGraph.random(
        N_NODES, radio_range=RADIO_RANGE, rng=rngs.stream("placement")
    )
    print(f"Deployed {N_NODES} sensors in a unit square, "
          f"radio range {RADIO_RANGE}")
    print(f"  mean neighbourhood size : {mean_degree(field):.1f} nodes")
    print(f"  hidden-terminal exposure: "
          f"{hidden_terminal_fraction(field):.1%} of co-receiver pairs")
    print()

    medium = BroadcastMedium(sim, field, rf_collisions=False,
                             rng=rngs.stream("medium"))

    delivered_count = [0]
    drivers = {}
    radios = {}
    for node in sorted(field.nodes):
        radio = Radio(medium, node)
        radios[node] = radio
        drivers[node] = AffDriver(
            radio,
            UniformSelector(IdentifierSpace(8), rngs.stream(f"sel.{node}")),
            deliver=lambda payload: delivered_count.__setitem__(
                0, delivered_count[0] + 1
            ),
        )
        PeriodicSender(
            sim, drivers[node], node_id=node, packet_bytes=REPORT_BYTES,
            duration=DURATION, rng=rngs.stream(f"traffic.{node}"),
            interval=5.0, jitter=2.0,
        ).start()

    # Sensor fields are dynamic: nodes fail, new ones get scattered in.
    def on_churn(event):
        if event.kind == "join":
            radio = Radio(medium, event.node)
            radios[event.node] = radio
            drivers[event.node] = AffDriver(
                radio,
                UniformSelector(
                    IdentifierSpace(8), rngs.stream(f"sel.{event.node}")
                ),
            )
        else:
            radio = radios.pop(event.node, None)
            if radio is not None:
                radio.shutdown()

    churn = ChurnProcess(
        sim, field, leave_rate=1 / 300.0, join_rate=N_NODES / 300.0,
        rng=rngs.stream("churn"), on_change=on_churn,
    )
    churn.start()

    sim.run(until=DURATION + 5.0)
    churn.stop()

    # --- locality: why identifiers stay small as the network grows ----
    print("RETRI's scaling argument, on this deployment:")
    print(f"  static addressing needs >= {min_static_bits(len(field))} bits "
          f"for these {len(field)} nodes and GROWS as log2(N) with the "
          f"field — 16+ bits at the paper's 'tens of thousands'")
    best_bits, _ = optimal_identifier_bits(
        data_bits=8 * REPORT_BYTES, density=max(2, mean_degree(field))
    )
    print(f"  RETRI is sized for neighbourhood contention only: "
          f"~{best_bits} bits here, and CONSTANT as the field grows, "
          f"because density — not size — sets it")
    print()

    # --- outcomes ------------------------------------------------------
    total_sent = sum(d.stats.packets_sent for d in drivers.values())
    joules = [r.energy.total_joules for r in radios.values()]
    print("After two simulated minutes with churn "
          f"({len(churn.history)} join/leave events):")
    print(f"  packets sent            : {total_sent}")
    print(f"  deliveries (all hearers): {delivered_count[0]}")
    print(f"  surviving nodes         : {len(field)}")
    if joules:
        print(f"  energy per node         : "
              f"min {min(joules):.2e} J, max {max(joules):.2e} J")
    print()
    print("Every one of those packets crossed the air without a single")
    print("node address in its headers.")


if __name__ == "__main__":
    main()
