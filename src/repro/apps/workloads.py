"""Traffic generators driving protocol drivers through the simulator.

Three arrival patterns cover the paper's workloads:

* :class:`ContinuousStreamSender` — the validation experiment's load:
  "each of the five transmitters attempted to transmit a continuous
  stream of random 80-byte packets for two minutes" (Section 5.1).
  Back-pressured: the next packet is offered once the MAC has drained
  the previous one, like a driver feeding a serial radio.
* :class:`PeriodicSender` — the motivating sensor workload: "periodic
  messages consisting of only a few bits to describe the current state"
  (Section 2.3), with optional jitter.
* :class:`PoissonSender` — memoryless arrivals, for load sweeps.

All senders count offered packets and stop at a deadline; they work with
any driver exposing ``send(Packet)`` (AFF or static).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..net.packets import Packet
from ..sim.engine import Simulator
from ..sim.process import Process, Timeout, spawn
from ..sim.rng import fallback_stream

__all__ = [
    "BurstySender",
    "ContinuousStreamSender",
    "PeriodicSender",
    "PoissonSender",
    "random_payload",
]


def random_payload(rng: random.Random, size_bytes: int) -> bytes:
    """Uniformly random bytes — the experiment's packet contents."""
    return rng.randbytes(size_bytes)


class _SenderBase:
    """Shared plumbing: spawn a process that offers packets to a driver."""

    def __init__(
        self,
        sim: Simulator,
        driver,
        node_id: int,
        packet_bytes: int,
        duration: float,
        rng: Optional[random.Random] = None,
        payload_factory: Optional[Callable[[random.Random, int], bytes]] = None,
    ):
        if packet_bytes < 0:
            raise ValueError("packet_bytes must be >= 0")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.sim = sim
        self.driver = driver
        self.node_id = node_id
        self.packet_bytes = packet_bytes
        self.duration = duration
        self.rng = rng if rng is not None else fallback_stream("apps.workloads.sender")
        self.payload_factory = payload_factory or random_payload
        self.packets_offered = 0
        self.process: Optional[Process] = None

    def start(self) -> Process:
        self.process = spawn(self.sim, self._run(), name=f"sender{self.node_id}")
        return self.process

    def _make_packet(self) -> Packet:
        return Packet(
            payload=self.payload_factory(self.rng, self.packet_bytes),
            origin=self.node_id,
            created_at=self.sim.now,
        )

    def _deadline_passed(self) -> bool:
        return self.sim.now >= self.duration

    def _run(self):
        raise NotImplementedError


class ContinuousStreamSender(_SenderBase):
    """Saturating sender with MAC back-pressure.

    Offers a packet, then polls (at one frame-airtime granularity) until
    the radio's MAC queue drains before offering the next — a driver
    feeding frames to a serial-attached radio as fast as it accepts them.

    Starts are staggered uniformly over ``stagger`` seconds (default: a
    handful of frame times) so independently booted hosts do not
    phase-lock, as they would not in any physical testbed.
    """

    def __init__(self, *args, stagger: Optional[float] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.stagger = stagger

    def _run(self):
        radio = self.driver.radio
        frame_airtime = (8 * radio.max_frame_bytes) / radio.medium.bitrate
        stagger = self.stagger if self.stagger is not None else 20 * frame_airtime
        if stagger > 0:
            yield Timeout(self.rng.uniform(0, stagger))
        while not self._deadline_passed():
            self.driver.send(self._make_packet())
            self.packets_offered += 1
            while radio.mac.queue_depth > 0:
                yield Timeout(frame_airtime)
                if self._deadline_passed():
                    return
            # One extra airtime so the final fragment clears the air
            # before the next packet's introduction is queued.
            yield Timeout(frame_airtime)


class PeriodicSender(_SenderBase):
    """Fixed-interval sender with optional uniform jitter.

    ``interval`` is the period; ``jitter`` adds U(0, jitter) to each
    gap so nodes do not phase-lock (real deployments never do).
    """

    def __init__(self, *args, interval: float = 1.0, jitter: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        if interval <= 0:
            raise ValueError("interval must be positive")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.interval = interval
        self.jitter = jitter

    def _run(self):
        # Desynchronise starts across nodes.
        yield Timeout(self.rng.uniform(0, self.interval))
        while not self._deadline_passed():
            self.driver.send(self._make_packet())
            self.packets_offered += 1
            gap = self.interval
            if self.jitter:
                gap += self.rng.uniform(0, self.jitter)
            yield Timeout(gap)


class PoissonSender(_SenderBase):
    """Poisson arrivals at ``rate`` packets/second."""

    def __init__(self, *args, rate: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def _run(self):
        while True:
            yield Timeout(self.rng.expovariate(self.rate))
            if self._deadline_passed():
                return
            self.driver.send(self._make_packet())
            self.packets_offered += 1


class BurstySender(_SenderBase):
    """On/off bursts: event-driven sensors.

    A motion sensor is silent until something happens, then reports
    rapidly for a while.  Modelled as alternating exponential ON and OFF
    periods; during ON, packets go out every ``burst_interval`` seconds.
    This produces exactly the temporally *clustered* transactions that
    make the effective density spiky — the regime where the
    mixed-duration model and adaptive estimators earn their keep.
    """

    def __init__(
        self,
        *args,
        mean_on: float = 2.0,
        mean_off: float = 10.0,
        burst_interval: float = 0.2,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("mean_on and mean_off must be positive")
        if burst_interval <= 0:
            raise ValueError("burst_interval must be positive")
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.burst_interval = burst_interval
        self.bursts = 0

    def _run(self):
        # Start somewhere random inside an OFF period.
        yield Timeout(self.rng.uniform(0, self.mean_off))
        while not self._deadline_passed():
            self.bursts += 1
            burst_end = min(
                self.sim.now + self.rng.expovariate(1.0 / self.mean_on),
                self.duration,
            )
            while self.sim.now < burst_end:
                self.driver.send(self._make_packet())
                self.packets_offered += 1
                yield Timeout(self.burst_interval)
            off = self.rng.expovariate(1.0 / self.mean_off)
            yield Timeout(off)
