"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes
----------
0   no findings (after suppressions and baseline)
1   findings (or unparsable files)
2   bad invocation (unknown rule id, unreadable baseline, no files)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from .core import (
    Baseline,
    Linter,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    project_registry,
    registry,
)
from .sarif import write_sarif

__all__ = ["main"]

DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Protocol-aware static analysis for the RETRI reproduction: "
            "determinism, wire-format, and RNG-stream hygiene rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "additionally run the project-wide dataflow rules "
            "(SEED/EXEC/PURE packs) over all files as one unit"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 file",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_rule_ids(spec: str, known: Sequence[str]) -> List[str]:
    ids = [part.strip().upper() for part in spec.split(",") if part.strip()]
    unknown = [rule_id for rule_id in ids if rule_id not in known]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return ids


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> Tuple[List[Rule], List[ProjectRule]]:
    known = sorted(registry()) + sorted(project_registry())
    rules = all_rules()
    project_rules = all_project_rules()
    if select:
        wanted = set(_parse_rule_ids(select, known))
        rules = [rule for rule in rules if rule.rule_id in wanted]
        project_rules = [rule for rule in project_rules if rule.rule_id in wanted]
    if ignore:
        dropped = set(_parse_rule_ids(ignore, known))
        rules = [rule for rule in rules if rule.rule_id not in dropped]
        project_rules = [
            rule for rule in project_rules if rule.rule_id not in dropped
        ]
    return rules, project_rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.description}")
        for project_rule in all_project_rules():
            print(f"{project_rule.rule_id}  [project] {project_rule.description}")
        return 0

    try:
        rules, project_rules = _select_rules(args.select, args.ignore)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    linter = Linter(rules=rules, baseline=baseline, project_rules=project_rules)
    report = linter.lint_paths(paths, project=args.project)

    if args.sarif:
        sarif_rules: List[Union[Rule, ProjectRule]] = [*rules, *project_rules]
        write_sarif(Path(args.sarif), report, sarif_rules)

    if args.write_baseline:
        Baseline.from_findings(report.findings).dump(baseline_path)
        print(
            f"wrote {len(report.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        payload = {
            "files_checked": report.files_checked,
            "findings": [finding.to_json() for finding in report.findings],
            "errors": [
                {"path": path, "message": message}
                for path, message in report.errors
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for path, message in report.errors:
            print(f"{path}: parse error: {message}", file=sys.stderr)
        summary = (
            f"{report.files_checked} file(s) checked, "
            f"{len(report.findings)} finding(s), {len(report.errors)} error(s)"
        )
        print(summary, file=sys.stderr)

    return 0 if report.ok else 1
