"""Protocol-aware static analysis for the RETRI reproduction.

The reproduction's headline numbers are only trustworthy if two
contracts hold everywhere in the tree:

* **determinism** — every stochastic component draws from a seeded
  stream (:mod:`repro.sim.rng`), never from an ambient, unseeded RNG or
  the wall clock, and never iterates data structures with unstable
  order;
* **wire-format invariants** — every bit-packed field is written with a
  named width constant, values cannot exceed their declared field
  width, and no frame layout can outgrow the 27-byte RPC frame budget.

This package is an AST-based lint framework (visitor core + rule
registry + per-rule suppression + a committed baseline file) that
mechanically enforces those contracts.  Beyond the per-module rules, a
project-wide mode (``--project``) builds a symbol table
(:mod:`.symbols`), a call graph (:mod:`.callgraph`) and a conservative
taint/dataflow engine (:mod:`.dataflow`) to check the *cross-module*
contracts of the exec subsystem: seed provenance (SEED001/002),
fork/cache safety of trial functions (EXEC001-003), and purity of the
canonical serialization path (PURE001).  Run it as::

    python -m repro.lint [paths...]
    python -m repro.lint --project [--sarif out.sarif] [paths...]

See ``docs/static-analysis.md`` for the rule catalogue and the
suppression / baseline workflow.
"""

from __future__ import annotations

from .core import (
    Baseline,
    Finding,
    Linter,
    LintReport,
    ModuleContext,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    project_registry,
    register,
    register_project,
    registry,
)
from .callgraph import CallGraph, build_callgraph
from .symbols import ProjectContext, build_project

# Importing the rule-pack modules registers their rules.
from . import determinism as determinism
from . import rngstreams as rngstreams
from . import wire_rules as wire_rules
from . import seed_rules as seed_rules
from . import exec_rules as exec_rules
from . import purity as purity
from . import obs_rules as obs_rules
from . import flow_rules as flow_rules
from . import range_rules as range_rules

__all__ = [
    "Baseline",
    "CallGraph",
    "Finding",
    "LintReport",
    "Linter",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "build_callgraph",
    "build_project",
    "project_registry",
    "register",
    "register_project",
    "registry",
]
