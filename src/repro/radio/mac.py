"""Medium-access strategies.

The RPC's "simple packet controller" (Section 5) is closest to
:class:`AlohaMac`: it just sends.  :class:`CsmaMac` adds carrier sensing
with random backoff — useful when many senders share the air and we want
identifier collisions, not RF collisions, to dominate losses.
:class:`SlottedMac` aligns transmissions to slot boundaries, halving the
vulnerable window in the classic slotted-ALOHA way.

A MAC owns the outbound queue.  The radio hands it frames via
:meth:`Mac.enqueue`; the MAC decides *when* to call the radio's
``_transmit_now`` and serialises a node's own transmissions (the
hardware is half-duplex and single-channel).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from ..sim.engine import Simulator
from ..sim.rng import fallback_stream
from .frame import Frame

__all__ = ["AlohaMac", "CsmaMac", "Mac", "SlottedMac"]


class Mac:
    """Base MAC: queue management and radio binding."""

    def __init__(self) -> None:
        self._radio = None
        self._queue: Deque[Frame] = deque()
        self._busy = False
        self.frames_queued = 0

    def bind(self, radio) -> None:
        """Called once by the radio that owns this MAC."""
        if self._radio is not None:
            raise RuntimeError("MAC already bound to a radio")
        self._radio = radio

    @property
    def sim(self) -> Simulator:
        return self._radio.medium.sim

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def enqueue(self, frame: Frame) -> None:
        """Accept a frame for transmission."""
        self._queue.append(frame)
        self.frames_queued += 1
        if not self._busy:
            self._busy = True
            self._try_send()

    def _try_send(self) -> None:
        """Attempt to transmit the head-of-line frame (subclass policy)."""
        raise NotImplementedError

    def _transmit_head(self) -> None:
        """Actually put the head frame on the air, then continue the queue."""
        frame = self._queue.popleft()
        airtime = self._radio._transmit_now(frame)
        self.sim.schedule(airtime, self._after_transmit)

    def _after_transmit(self) -> None:
        if self._queue:
            self._try_send()
        else:
            self._busy = False


class AlohaMac(Mac):
    """Pure ALOHA: transmit as soon as the previous own frame finishes.

    Optionally inserts a fixed ``gap`` between a node's own frames, which
    models the host-to-radio transfer time of the RPC packet controller.
    """

    def __init__(self, gap: float = 0.0):
        super().__init__()
        if gap < 0:
            raise ValueError("gap must be >= 0")
        self.gap = gap

    def _try_send(self) -> None:
        if self.gap > 0:
            self.sim.schedule(self.gap, self._transmit_head)
        else:
            self._transmit_head()


class SlottedMac(Mac):
    """Slotted ALOHA: transmissions start only on slot boundaries."""

    def __init__(self, slot: float):
        super().__init__()
        if slot <= 0:
            raise ValueError("slot length must be positive")
        self.slot = slot

    def _try_send(self) -> None:
        now = self.sim.now
        next_boundary = ((now // self.slot) + 1) * self.slot
        # Start exactly at a boundary; if we are on one, go immediately.
        wait = 0.0 if abs(now % self.slot) < 1e-12 else next_boundary - now
        self.sim.schedule(wait, self._transmit_head)


class CsmaMac(Mac):
    """Carrier-sense multiple access with random backoff.

    Before sending, listen; if the air is busy, back off a uniform random
    time in ``[0, backoff_max)`` and retry (up to ``max_attempts``, after
    which the frame is sent anyway — better an RF collision than silent
    starvation, and real simple radios behave this way).
    """

    def __init__(
        self,
        backoff_max: float = 0.01,
        max_attempts: int = 16,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        if backoff_max <= 0:
            raise ValueError("backoff_max must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.backoff_max = backoff_max
        self.max_attempts = max_attempts
        self.rng = rng if rng is not None else fallback_stream("radio.CsmaMac")
        self.backoffs_taken = 0
        self._attempts = 0

    def _try_send(self) -> None:
        medium = self._radio.medium
        if (
            medium.busy_at(self._radio.node_id)
            and self._attempts < self.max_attempts
        ):
            self._attempts += 1
            self.backoffs_taken += 1
            self.sim.schedule(self.rng.uniform(0, self.backoff_max), self._try_send)
            return
        self._attempts = 0
        self._transmit_head()
