"""Figure 3: efficiency vs offered load (transaction density), 16-bit data.

Paper's claims, asserted here:
  * statically assigned identifiers have constant efficiency until the
    address space is exhausted, after which efficiency is undefined;
  * AFF does work beyond that point, degrading smoothly.
"""

import math

import pytest

from repro.experiments.figures import figure_3


def test_figure_3(benchmark, publish_figure):
    fig = benchmark.pedantic(figure_3, rounds=1, iterations=1)
    publish_figure("figure_3", fig, x_log=True)

    static = fig.series_by_label("static 16-bit")
    in_range = [v for d, v in zip(static.x, static.y) if d <= 2**16]
    beyond = [v for d, v in zip(static.x, static.y) if d > 2**16]
    assert all(v == pytest.approx(0.5) for v in in_range), "flat until exhaustion"
    assert beyond and all(math.isnan(v) for v in beyond), "undefined beyond 2^16"

    aff = fig.series_by_label("AFF 16-bit")
    aff_beyond = [v for d, v in zip(aff.x, aff.y) if d > 2**16]
    assert aff_beyond and all(v > 0 for v in aff_beyond), (
        "paper: AFF does work beyond the static exhaustion point"
    )
    # Smooth degradation: monotone non-increasing in load.
    assert all(a >= b - 1e-12 for a, b in zip(aff.y, aff.y[1:]))
