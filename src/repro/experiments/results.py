"""Result containers: series, tables, and trial aggregation.

Everything the figure/benchmark layer produces is one of two shapes:

* :class:`Series` — an (x, y) curve with optional per-point error bars,
  matching one line of a paper figure;
* :class:`Table` — labelled rows for textual output (what the benchmark
  harness prints so runs can be eyeballed against the paper).

:func:`aggregate_trials` turns replicated trial measurements into
mean ± standard deviation, the paper's Figure 4 error-bar convention
("the error bars represent the standard deviation from the mean for
each trial").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Series", "Table", "aggregate_trials"]


@dataclass
class Series:
    """One labelled curve: x values, y values, optional error bars."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    yerr: Optional[List[float]] = None

    def append(self, x: float, y: float, yerr: Optional[float] = None) -> None:
        self.x.append(x)
        self.y.append(y)
        if yerr is not None:
            if self.yerr is None:
                self.yerr = []
            self.yerr.append(yerr)

    def __len__(self) -> int:
        return len(self.x)

    def peak(self) -> Tuple[float, float]:
        """(x, y) at the maximum y — e.g. AFF's optimal identifier size."""
        if not self.y:
            raise ValueError(f"series {self.label!r} is empty")
        index = max(range(len(self.y)), key=lambda i: self.y[i])
        return self.x[index], self.y[index]

    def at(self, x: float) -> float:
        """y at an exact x (raises if x was not sampled)."""
        try:
            return self.y[self.x.index(x)]
        except ValueError:
            raise KeyError(f"x={x} not sampled in series {self.label!r}") from None


class Table:
    """Plain-text result table for benchmark output."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, ""]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value != 0 and abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def aggregate_trials(values: Sequence[float]) -> Tuple[float, float]:
    """(mean, sample standard deviation) over replicated trials.

    NaN inputs are excluded (a trial with no receivable packets cannot
    report a rate).  With one usable value the deviation is 0.
    """
    usable = [v for v in values if not math.isnan(v)]
    if not usable:
        return float("nan"), float("nan")
    mean = sum(usable) / len(usable)
    if len(usable) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in usable) / (len(usable) - 1)
    return mean, math.sqrt(variance)
