"""Unit tests for radio frames and bit accounting."""

import pytest

from repro.radio.frame import Frame, RPC_MAX_FRAME_BYTES


class TestFrame:
    def test_sizes(self):
        f = Frame(payload=b"\x00" * 10, origin=1)
        assert f.size_bytes == 10
        assert f.size_bits == 80

    def test_default_split_counts_everything_as_header(self):
        f = Frame(payload=b"ab", origin=0)
        assert f.header_bits == 16
        assert f.payload_bits == 0

    def test_explicit_split_must_sum(self):
        f = Frame(payload=b"abcd", origin=0, header_bits=12, payload_bits=20)
        assert f.header_bits + f.payload_bits == f.size_bits

    def test_inconsistent_split_rejected(self):
        with pytest.raises(ValueError):
            Frame(payload=b"abcd", origin=0, header_bits=10, payload_bits=10)

    def test_seq_unique(self):
        a = Frame(payload=b"", origin=0)
        b = Frame(payload=b"", origin=0)
        assert a.seq != b.seq

    def test_rpc_limit_constant(self):
        assert RPC_MAX_FRAME_BYTES == 27

    def test_ground_truth_is_opaque(self):
        f = Frame(payload=b"x", origin=3, ground_truth={"packet": (3, 1)})
        assert f.ground_truth["packet"] == (3, 1)
