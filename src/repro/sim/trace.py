"""Structured event tracing for simulations.

A :class:`TraceRecorder` collects timestamped, categorised records that
experiments can filter and aggregate after a run.  Tracing is the *only*
side channel the experiment harness uses — protocol code never inspects
traces, so instrumentation cannot change behaviour.

Records are plain :class:`TraceRecord` dataclasses: ``(time, category,
fields)``.  Categories used across the reproduction include
``"frame.tx"``, ``"frame.rx"``, ``"frame.drop"``, ``"packet.sent"``,
``"packet.delivered"``, ``"packet.collision"``, ``"txn.begin"``,
``"txn.end"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder", "NullRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: when it happened, what kind, and its payload."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """Collects :class:`TraceRecord` objects during a simulation run.

    Parameters
    ----------
    categories:
        If given, only these categories are recorded; everything else is
        dropped at emit time (cheap filtering for long runs).
    """

    def __init__(self, categories: Optional[set[str]] = None):
        self._records: List[TraceRecord] = []
        self._categories = categories
        self._counts: Dict[str, int] = {}
        self._recorded: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record an event.  ``fields`` become the record payload."""
        self._counts[category] = self._counts.get(category, 0) + 1
        if self._categories is not None and category not in self._categories:
            return
        self._recorded[category] = self._recorded.get(category, 0) + 1
        self._records.append(TraceRecord(time=time, category=category, fields=fields))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All stored records in emission order."""
        return list(self._records)

    def count(self, category: str) -> int:
        """How many events of ``category`` were emitted (even if filtered)."""
        return self._counts.get(category, 0)

    def select(
        self,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Filter stored records by category, time window, and predicate."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        """Drop all stored records and counters."""
        self._records.clear()
        self._counts.clear()
        self._recorded.clear()

    def emitted_counts(self) -> Dict[str, int]:
        """Category -> events *emitted*, including category-filtered ones.

        Emission counters are always maintained (they are O(1)), even by
        :class:`NullRecorder` and for categories a filtered recorder
        drops — they answer "what happened", not "what was kept".
        """
        return dict(self._counts)

    def recorded_counts(self) -> Dict[str, int]:
        """Category -> records actually *stored* (post category filter).

        For an unfiltered :class:`TraceRecorder` this equals
        :meth:`emitted_counts`; with a ``categories`` filter it counts
        only the kept records, and for :class:`NullRecorder` it is
        empty.
        """
        return dict(self._recorded)


class NullRecorder(TraceRecorder):
    """A recorder that stores nothing — use when traces are not needed.

    ``emit`` still maintains category counters (they are O(1)), because
    several components report summary statistics from them.
    """

    def emit(self, time: float, category: str, **fields: Any) -> None:
        self._counts[category] = self._counts.get(category, 0) + 1
