"""Field-by-field comparison of two exported traces.

``python -m repro obs diff`` turns the parallelism correctness story
("``shards=N``/``--pool`` runs are bit-identical to serial") into a
mechanical check: record two traces of the same scenario, diff them,
exit 0.  The comparison is streaming — both traces are walked in
lockstep, so diffing million-event traces needs constant memory — and
exact: records compare by their canonical serialized line, so a NaN
only matches a NaN and ``-0.0`` only matches ``-0.0``.

Headers are compared leniently: ``writer`` version and ``meta``
differences are reported as notes, not divergences, because two runs
of the same scenario at different worker counts legitimately differ
there (and meta deliberately excludes workers/pool for that reason).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from itertools import zip_longest
from typing import Any, Dict, List, Optional, Tuple, Union

from ..sim.trace import TraceRecord
from .envelope import _record_line, read_header, read_trace

__all__ = ["Divergence", "TraceDiff", "diff_traces"]

PathLike = Union[str, pathlib.Path]

#: Matching records remembered as rolling context for the first report.
CONTEXT = 3


@dataclass
class Divergence:
    """One pair of records (or a missing side) that failed to match."""

    index: int
    left: Optional[TraceRecord]
    right: Optional[TraceRecord]

    def differing_fields(self) -> List[str]:
        """Which parts of the record differ: time, category, field names."""
        if self.left is None or self.right is None:
            return ["<record missing>"]
        out = []
        if _record_line(
            TraceRecord(self.left.time, "", {})
        ) != _record_line(TraceRecord(self.right.time, "", {})):
            out.append("time")
        if self.left.category != self.right.category:
            out.append("category")
        keys = sorted(set(self.left.fields) | set(self.right.fields))
        for key in keys:
            a = {key: self.left.fields.get(key, "<absent>")}
            b = {key: self.right.fields.get(key, "<absent>")}
            if _record_line(TraceRecord(0.0, "", a)) != _record_line(
                TraceRecord(0.0, "", b)
            ):
                out.append(f"fields.{key}")
        return out

    def render(self) -> List[str]:
        lines = [f"record #{self.index} diverges: {', '.join(self.differing_fields())}"]
        lines.append(f"  left:  {_describe(self.left)}")
        lines.append(f"  right: {_describe(self.right)}")
        return lines


def _describe(record: Optional[TraceRecord]) -> str:
    if record is None:
        return "<no record — trace ended>"
    return _record_line(record)


@dataclass
class TraceDiff:
    """Outcome of comparing two traces."""

    left: str
    right: str
    records: int = 0
    divergences: int = 0
    first: Optional[Divergence] = None
    context: List[TraceRecord] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.divergences == 0

    def render(self) -> str:
        lines = [f"obs diff: {self.left} vs {self.right}"]
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.identical:
            lines.append(f"identical: {self.records} records, 0 divergent")
            return "\n".join(lines)
        lines.append(
            f"DIVERGED: {self.divergences} divergent of {self.records} compared"
        )
        if self.first is not None:
            if self.context:
                lines.append(f"last {len(self.context)} matching record(s):")
                for record in self.context:
                    lines.append(f"  = {_record_line(record)}")
            lines.extend(self.first.render())
        return "\n".join(lines)


def _header_notes(
    left: Dict[str, Any], right: Dict[str, Any]
) -> List[str]:
    notes = []
    if left.get("writer") != right.get("writer"):
        notes.append(
            f"writer versions differ: {left.get('writer')!r} vs {right.get('writer')!r}"
        )
    if left.get("meta") != right.get("meta"):
        notes.append("headers carry different meta (not counted as divergence)")
    return notes


def diff_traces(
    left_path: PathLike, right_path: PathLike, max_divergences: int = 0
) -> TraceDiff:
    """Compare two traces record-by-record.

    ``max_divergences`` > 0 stops the walk early after that many
    mismatches (the first divergence, with context, is always captured);
    0 means count them all.
    """
    diff = TraceDiff(left=str(left_path), right=str(right_path))
    diff.notes = _header_notes(read_header(left_path), read_header(right_path))
    pairs = zip_longest(read_trace(left_path), read_trace(right_path))
    for index, (a, b) in enumerate(pairs):
        diff.records += 1
        if a is not None and b is not None and _record_line(a) == _record_line(b):
            if diff.first is None:
                diff.context.append(a)
                if len(diff.context) > CONTEXT:
                    diff.context.pop(0)
            continue
        diff.divergences += 1
        if diff.first is None:
            diff.first = Divergence(index=index, left=a, right=b)
        if max_divergences and diff.divergences >= max_divergences:
            break
    return diff
