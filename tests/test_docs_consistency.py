"""Documentation stays true: README code runs, references resolve.

Nothing rots faster than a README.  These tests execute the README's
Python code blocks, check every intra-repo link in the markdown docs
resolves to a real file, and verify the documented public API surface
actually exists.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def extract_python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadmeCode:
    def test_python_blocks_execute(self, capsys):
        readme = (REPO / "README.md").read_text()
        blocks = extract_python_blocks(readme)
        assert blocks, "README should contain python examples"
        for block in blocks:
            if block.lstrip().startswith(">>>"):
                # doctest-style block: run through doctest semantics.
                import doctest

                parser = doctest.DocTestParser()
                test = parser.get_doctest(block, {}, "README", "README", 0)
                runner = doctest.DocTestRunner(verbose=False)
                runner.run(test)
                assert runner.failures == 0, f"README doctest failed:\n{block}"
            else:
                exec(compile(block, "README.md", "exec"), {})  # noqa: S102

    def test_quickstart_docstring_doctest(self):
        import doctest

        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0


class TestMarkdownLinks:
    @pytest.mark.parametrize(
        "doc",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md",
         "docs/architecture.md", "docs/protocol.md", "docs/model.md",
         "docs/tutorial.md", "docs/parallel.md", "docs/static-analysis.md",
         "docs/observability.md", "docs/flow.md"],
    )
    def test_relative_links_resolve(self, doc):
        text = (REPO / doc).read_text()
        links = re.findall(r"\]\(([^)#]+)\)", text)
        base = (REPO / doc).parent
        for link in links:
            if link.startswith(("http://", "https://")):
                continue
            target = (base / link).resolve()
            assert target.exists(), f"{doc} links to missing {link}"


class TestDocumentedArtifactsExist:
    def test_design_md_benchmark_index_is_real(self):
        """Every bench file named in DESIGN.md's experiment index exists."""
        text = (REPO / "DESIGN.md").read_text()
        for match in re.findall(r"`(benchmarks/[\w./]+\.py)`", text):
            assert (REPO / match).exists(), f"DESIGN.md names missing {match}"

    def test_experiments_md_result_files_are_generated(self):
        """Every results file EXPERIMENTS.md cites has a generating bench."""
        text = (REPO / "EXPERIMENTS.md").read_text()
        cited = set(re.findall(r"`(?:benchmarks/results/)?(\w+)\.txt`", text))
        bench_sources = "\n".join(
            p.read_text() for p in (REPO / "benchmarks").glob("test_*.py")
        )
        for stem in cited:
            assert f'"{stem}"' in bench_sources, (
                f"EXPERIMENTS.md cites {stem}.txt but no benchmark publishes it"
            )

    def test_readme_examples_exist(self):
        text = (REPO / "README.md").read_text()
        for match in re.findall(r"`(examples/[\w.]+\.py)`", text):
            assert (REPO / match).exists()

    def test_readme_cli_commands_parse(self):
        """Every `python -m repro ...` line in the README parses."""
        from repro.cli import build_parser

        parser = build_parser()
        text = (REPO / "README.md").read_text()
        for line in re.findall(r"python -m repro ([^\n#]+)", text):
            args = line.strip().split()
            # Replace placeholder values that argparse would reject.
            try:
                parser.parse_args(args)
            except SystemExit as exc:  # pragma: no cover
                pytest.fail(f"README CLI line does not parse: {line!r}")
