"""The paper's primary contribution: RETRI identifiers and their model.

* :mod:`repro.core.identifiers` — identifier spaces and the uniform /
  listening / oracle selection algorithms.
* :mod:`repro.core.model` — the Section 4 analytic model (Eqs. 1-4) and
  derived quantities (optimal identifier size, crossover density).
* :mod:`repro.core.transactions` — ground-truth transaction tracking and
  collision detection, plus realised-density measurement.
* :mod:`repro.core.policies` — RETRI vs static-global, static-local and
  dynamic-local allocation baselines behind one interface.
"""

from .estimators import (
    DensityEstimator,
    EwmaEstimator,
    InstantaneousEstimator,
    LittlesLawEstimator,
    WindowedTimeAverageEstimator,
)
from .identifiers import (
    IdentifierSelector,
    IdentifierSpace,
    ListeningSelector,
    OracleSelector,
    UniformSelector,
)
from .model import (
    ModelPoint,
    collision_probability,
    crossover_density,
    efficiency_aff,
    efficiency_static,
    expected_useful_bits,
    min_static_bits,
    optimal_identifier_bits,
    p_success,
    static_space_exhausted,
    sweep_aff_efficiency,
)
from .policies import (
    AllocationPolicy,
    ColoringLocalPolicy,
    DynamicLocalPolicy,
    RetriPolicy,
    StaticGlobalPolicy,
    StaticLocalPolicy,
)
from .transactions import Transaction, TransactionLog

__all__ = [
    "AllocationPolicy",
    "ColoringLocalPolicy",
    "DensityEstimator",
    "DynamicLocalPolicy",
    "EwmaEstimator",
    "InstantaneousEstimator",
    "LittlesLawEstimator",
    "WindowedTimeAverageEstimator",
    "IdentifierSelector",
    "IdentifierSpace",
    "ListeningSelector",
    "ModelPoint",
    "OracleSelector",
    "RetriPolicy",
    "StaticGlobalPolicy",
    "StaticLocalPolicy",
    "Transaction",
    "TransactionLog",
    "UniformSelector",
    "collision_probability",
    "crossover_density",
    "efficiency_aff",
    "efficiency_static",
    "expected_useful_bits",
    "min_static_bits",
    "optimal_identifier_bits",
    "p_success",
    "static_space_exhausted",
    "sweep_aff_efficiency",
]
