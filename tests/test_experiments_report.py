"""Tests for the one-shot report generator."""

import json

import pytest

from repro.experiments.report import SCENARIOS, ReportConfig, generate_report


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("report")
    config = ReportConfig(trials=1, duration=4.0, seed=0,
                          scenarios=["hidden-terminal", "flooding"])
    written = generate_report(out, config)
    return out, written


class TestGenerateReport:
    def test_all_figures_written_as_text_and_json(self, quick_report):
        out, written = quick_report
        names = {p.name for p in written}
        for n in (1, 2, 3, 4):
            assert f"figure_{n}.txt" in names
            assert f"figure_{n}.json" in names

    def test_figure_text_includes_chart(self, quick_report):
        out, _ = quick_report
        text = (out / "figure_1.txt").read_text()
        assert "legend:" in text  # the ASCII chart
        assert "AFF T=16" in text

    def test_selected_scenarios_only(self, quick_report):
        out, written = quick_report
        names = {p.name for p in written}
        assert "scenario_hidden_terminal.txt" in names
        assert "scenario_flooding.json" in names
        assert "scenario_codebook.txt" not in names

    def test_scenario_json_is_strict(self, quick_report):
        out, _ = quick_report
        data = json.loads((out / "scenario_flooding.json").read_text())
        assert data["mean_coverage"] > 0

    def test_index_links_everything_written(self, quick_report):
        out, written = quick_report
        index = (out / "INDEX.md").read_text()
        assert "figure_4.txt" in index
        assert "hidden-terminal" in index
        assert "base seed: 0" in index

    def test_figure_json_round_trips(self, quick_report):
        from repro.experiments.persistence import figure_from_json, load_json

        out, _ = quick_report
        fig = figure_from_json(load_json(out / "figure_2.json"))
        assert fig.name == "Figure 2"

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            generate_report(
                tmp_path, ReportConfig(scenarios=["not-a-scenario"])
            )

    def test_scenario_registry_covers_all_extensions(self):
        assert {
            "hidden-terminal", "efficiency", "dynamic-alloc", "interest",
            "codebook", "density-estimation", "flooding", "density-tracking",
        } <= set(SCENARIOS)
