"""Vectorised window sampling, bit-identical to the pure path.

The flow sampler's cost is dominated by two uniform-draw loops per
window — the chunked-Knuth Poisson count and the per-transaction
Bernoulli collision draws (:mod:`repro.flow.sampler`).  Both consume
doubles from a ``random.Random`` (CPython's Mersenne Twister), whose
``random()`` is byte-for-byte the same ``genrand_res53`` recurrence
NumPy's legacy ``RandomState.random_sample`` implements.  That makes
the loops vectorisable *exactly*: transplant the stream's MT19937
state into a ``RandomState``, draw the same uniform sequence in
blocks, and write the advanced state back — every count, every
comparison, and the stream's final state come out identical to the
scalar loop, so fast and pure runs (and therefore serial and sharded
runs at any worker count) agree bit for bit.

Exactness rests on three facts, each pinned by
``tests/test_flow_fastpath.py``:

* ``RandomState.random_sample`` and ``random.Random.random`` produce
  the same doubles from the same MT19937 state (both are two 32-bit
  words folded to 53 bits);
* ``numpy.cumprod`` over a float64 vector performs the same sequential
  rounding as the scalar ``product *= u`` loop, so the Knuth
  termination index is the same draw the scalar loop stops on (each
  chunk's product starts fresh at its first uniform — there is no
  carried partial product whose rounding could differ);
* the final state is reconstructed by advancing a pristine copy of the
  initial state by exactly the number of *consumed* draws, discarding
  the lookahead overdraw the block probing needed.

The fast path steps aside — returning ``None`` so callers fall back to
the scalar loop — when NumPy is unavailable, when a DetSan sanitizer is
active (SAN001's draw ledger must observe every scalar draw), when the
stream is not a plain ``random.Random`` (e.g. an instrumented proxy),
or inside a :func:`pure_sampling` block (used by the equivalence tests
and the ``flow_scaling`` benchmark to measure the speedup).
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the package
    _np = None  # type: ignore[assignment]

from ..analysis.sanitizer.runtime import active_sanitizer
from .sampler import (
    _POISSON_CHUNK,
    WindowOutcome,
    WindowSpec,
    window_collision_probability,
)

__all__ = ["HAVE_NUMPY", "fastpath_stats", "pure_sampling", "sample_window_fast"]

#: Whether the vectorised path can exist at all in this environment.
HAVE_NUMPY = _np is not None

#: ``random.Random.getstate()`` tuple version this module understands.
_MT_VERSION = 3

#: Minimum uniforms drawn per lookahead refill (amortises call overhead).
_BLOCK = 8192

#: Cap on one Bernoulli block (bounds peak memory at ~8 MiB of doubles).
_BERNOULLI_BLOCK = 1 << 20

#: Below this expected draw count the scalar loop beats the transplant
#: overhead (state rebuild + write-back are ~100 µs per window); the
#: scalar and fast paths are bit-identical, so the cut-over is purely a
#: performance decision.
_MIN_FAST_MEAN = 4096.0

_forced_pure = False


@contextmanager
def pure_sampling() -> Iterator[None]:
    """Force the scalar sampling path within the block (for tests/benchmarks)."""
    global _forced_pure
    previous = _forced_pure
    _forced_pure = True
    try:
        yield
    finally:
        _forced_pure = previous


def _eligible(rng: random.Random) -> bool:
    if _np is None or _forced_pure:
        return False
    if active_sanitizer() is not None:
        return False
    cls = type(rng)
    if not isinstance(rng, random.Random):
        return False
    # An instrumented/overridden stream must keep drawing through its
    # own methods; only the plain C implementation is transplantable.
    return (
        cls.random is random.Random.random
        and cls.getstate is random.Random.getstate
        and cls.setstate is random.Random.setstate
    )


#: Reused ``RandomState`` instances (``set_state`` overwrites them
#: fully, and flow sampling is single-threaded per process), avoiding a
#: per-window construction that would read OS entropy just to be
#: discarded.
_tape_state: Any = None
_advance_state: Any = None


def _rebuild(rs: Any, state: Tuple[Any, ...]) -> Any:
    """Position a ``RandomState`` at the ``random.Random`` state tuple."""
    keys = state[1]
    if rs is None:
        rs = _np.random.RandomState(0)
    rs.set_state(("MT19937", _np.asarray(keys[:-1], dtype=_np.uint32), keys[-1]))
    return rs


def _writeback(rng: random.Random, state: Tuple[Any, ...], consumed: int) -> None:
    """Advance ``rng`` past exactly ``consumed`` draws from ``state``."""
    global _advance_state
    _advance_state = rs = _rebuild(_advance_state, state)
    if consumed:
        rs.random_sample(consumed)
    _kind, keys, pos, _has_gauss, _gauss = rs.get_state(legacy=True)
    rng.setstate((_MT_VERSION, tuple(keys.tolist()) + (int(pos),), state[2]))


class _UniformTape:
    """The stream's uniform sequence, drawn in blocks with lookahead.

    ``random_sample(n)`` consumes the underlying state draw by draw, so
    the concatenation of refills is exactly the scalar draw sequence
    regardless of block sizes.  ``consumed`` counts only the draws the
    sampler committed to; lookahead beyond it is discarded by
    :func:`_writeback`.
    """

    def __init__(self, state: Any) -> None:
        self._state = state
        self._buf: Any = _np.empty(0, dtype=_np.float64)
        self._pos = 0
        self.consumed = 0

    def reserve(self, n: int) -> None:
        """Pre-draw so the next ``n`` uniforms need no refill."""
        self._ensure(n)

    def _ensure(self, n: int) -> None:
        available = int(self._buf.shape[0]) - self._pos
        if available >= n:
            return
        fresh = self._state.random_sample(max(n - available, _BLOCK))
        self._buf = _np.concatenate([self._buf[self._pos :], fresh])
        self._pos = 0

    def poisson_chunk(self, mean: float) -> int:
        """One Knuth chunk: the scalar ``while product > exp(-mean)`` loop.

        The chunk's running product starts at its own first uniform, so
        ``cumprod`` over the lookahead reproduces the scalar rounding
        sequence exactly; the first index at or under the limit is the
        draw the scalar loop stops on.
        """
        limit = math.exp(-mean)
        # ~8 sigma of lookahead finds the stop in one probe essentially
        # always; the loop doubles on the astronomical misses.
        need = int(mean + 8.0 * math.sqrt(mean + 1.0)) + 16
        while True:
            self._ensure(need)
            pos = self._pos
            cum = self._buf[pos : pos + need].cumprod()
            # cumprod of [0, 1) uniforms is non-increasing, so the tail
            # being under the limit guarantees a first crossing exists
            # and bool argmax finds it.
            if cum[-1] <= limit:
                count = int((cum <= limit).argmax())
                self._pos = pos + count + 1
                self.consumed += count + 1
                return count
            need *= 2

    def poisson(self, mean: float) -> int:
        """The chunked sampler, mirroring :func:`repro.flow.sampler.poisson`."""
        total = 0
        remaining = mean
        # One reserve for the whole draw: expected consumption is one
        # uniform past the mean per chunk, plus ~8 sigma of slack.
        chunks = int(mean // _POISSON_CHUNK) + 1
        self.reserve(int(mean + 8.0 * math.sqrt(mean + 1.0)) + chunks + 32)
        while remaining > _POISSON_CHUNK:
            total += self.poisson_chunk(_POISSON_CHUNK)
            remaining -= _POISSON_CHUNK
        if remaining > 0:
            total += self.poisson_chunk(remaining)
        return total


def sample_window_fast(
    window: WindowSpec,
    id_bits: int,
    rng: random.Random,
    model: str = "mixed",
) -> Optional[WindowOutcome]:
    """Vectorised :func:`repro.flow.sampler.sample_window`, or ``None``.

    ``None`` means "not eligible here — run the scalar path"; a
    returned outcome is bit-identical to the scalar path's, including
    the state ``rng`` is left in.
    """
    if window.arrival_rate * window.width < _MIN_FAST_MEAN:
        return None
    if not _eligible(rng):
        return None
    state = rng.getstate()
    if state[0] != _MT_VERSION or len(state[1]) != 625:
        return None
    global _tape_state, _advance_state
    _tape_state = source = _rebuild(_tape_state, state)
    tape = _UniformTape(source)
    n = tape.poisson(window.arrival_rate * window.width)
    if n == 0:
        _writeback(rng, state, tape.consumed)
        return WindowOutcome(window.index, "flow", 0, 0, window.density)
    try:
        p = float(window_collision_probability(id_bits, window, model))
    except ValueError:
        # Leave the stream where the scalar path would have left it
        # (past the Poisson draws) before propagating.
        _writeback(rng, state, tape.consumed)
        raise
    # Bernoulli phase: the draw count is known now, so draw the exact
    # ``n`` uniforms from a fresh state advanced past the Poisson
    # consumption — nothing here is lookahead, and the final stream
    # state falls out of this state without a second re-advance.
    _advance_state = rs = _rebuild(_advance_state, state)
    if tape.consumed:
        rs.random_sample(tape.consumed)
    collisions = 0
    remaining = n
    while remaining > 0:
        block = rs.random_sample(min(remaining, _BERNOULLI_BLOCK))
        collisions += int(_np.count_nonzero(block < p))
        remaining -= int(block.shape[0])
    _kind, keys, pos, _has_gauss, _gauss = rs.get_state(legacy=True)
    rng.setstate((_MT_VERSION, tuple(keys.tolist()) + (int(pos),), state[2]))
    return WindowOutcome(window.index, "flow", n, collisions, window.density)


def fastpath_stats() -> Dict[str, bool]:
    """Why the fast path is (or is not) active right now — for summaries."""
    return {
        "numpy": HAVE_NUMPY,
        "forced_pure": _forced_pure,
        "sanitizer": active_sanitizer() is not None,
    }
