"""JSON persistence for experiment results.

Recorded runs should be comparable across machines and months; these
helpers serialise the result containers to plain JSON (round-trippable,
no pickle) so `python -m repro report` output can be archived and
diffed.  NaN is encoded as the string ``"nan"`` — JSON has no NaN, and
silently emitting invalid JSON (Python's default) would poison
downstream tooling.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, Union

from .figures import FigureResult
from .results import Series, Table
from .sweep import SweepPoint, SweepResult

__all__ = [
    "figure_from_json",
    "figure_to_json",
    "series_from_json",
    "series_to_json",
    "sweep_from_json",
    "sweep_to_json",
    "save_json",
    "load_json",
]


def _encode_float(value: float):
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    return value


def _decode_float(value) -> float:
    if value == "nan":
        return float("nan")
    return float(value)


# ----------------------------------------------------------------------
# Series
# ----------------------------------------------------------------------
def series_to_json(series: Series) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "label": series.label,
        "x": [_encode_float(float(v)) for v in series.x],
        "y": [_encode_float(float(v)) for v in series.y],
    }
    if series.yerr is not None:
        out["yerr"] = [_encode_float(float(v)) for v in series.yerr]
    return out


def series_from_json(data: Dict[str, Any]) -> Series:
    return Series(
        label=data["label"],
        x=[_decode_float(v) for v in data["x"]],
        y=[_decode_float(v) for v in data["y"]],
        yerr=(
            [_decode_float(v) for v in data["yerr"]]
            if "yerr" in data
            else None
        ),
    )


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def figure_to_json(figure: FigureResult) -> Dict[str, Any]:
    return {
        "name": figure.name,
        "series": [series_to_json(s) for s in figure.series],
        "table": {
            "title": figure.table.title,
            "headers": figure.table.headers,
            "rows": figure.table.rows,
        },
    }


def figure_from_json(data: Dict[str, Any]) -> FigureResult:
    table = Table(data["table"]["title"], data["table"]["headers"])
    table.rows = [list(row) for row in data["table"]["rows"]]
    return FigureResult(
        name=data["name"],
        series=[series_from_json(s) for s in data["series"]],
        table=table,
    )


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def sweep_to_json(sweep: SweepResult) -> Dict[str, Any]:
    return {
        "axes": sweep.axes,
        "points": [
            {
                "params": point.params,
                "values": [_encode_float(v) for v in point.values],
                "mean": _encode_float(point.mean),
                "stdev": _encode_float(point.stdev),
            }
            for point in sweep.points
        ],
    }


def sweep_from_json(data: Dict[str, Any]) -> SweepResult:
    result = SweepResult(axes=list(data["axes"]))
    for entry in data["points"]:
        result.points.append(
            SweepPoint(
                params=dict(entry["params"]),
                values=[_decode_float(v) for v in entry["values"]],
                mean=_decode_float(entry["mean"]),
                stdev=_decode_float(entry["stdev"]),
            )
        )
    return result


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_json(path: Union[str, pathlib.Path], payload: Dict[str, Any]) -> None:
    """Write a result payload as stable, diffable JSON."""
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def load_json(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())
