"""Fork/cache-safety rules for trial functions (EXEC001-003).

A function handed to the exec subsystem via ``TrialSpec`` runs in a
forked child (``TrialRunner``) or a prefork ``WorkerPool`` worker, and
its result may be stored in the content-addressed cache.  Three things
quietly break that model:

* **EXEC001** — writing module-level mutable state.  The write lands in
  the child's copy-on-write image and vanishes when the child exits, so
  the parent sees stale state *and* the trial's behaviour depends on
  how many trials ran in that worker before it.

* **EXEC002** — touching a fork-unsafe resource created at import time
  (threads, locks, sockets, open handles, subprocesses).  Fork clones
  the handle but not the thread that services it; a lock held during
  the fork deadlocks the child.

* **EXEC003** — reading ambient inputs (``os.environ``, wall clock,
  file contents, stdin) anywhere in the call tree of a *cached* trial.
  The cache key is ``trial_key(fn, params, seed)``; an input outside
  the key means two runs with the same key can legitimately differ —
  the definition of a stale cache hit.

Trial functions are discovered project-wide: every ``TrialSpec``
construction site is resolved through the symbol table back to the
function definition, wherever it lives.  EXEC001/002 inspect the
function's direct body (a deliberate under-approximation — precise
transitive mutation analysis would drown in framework counters);
EXEC003 follows the call graph, because a cached trial's purity
contract extends to everything it calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import build_callgraph
from .core import Finding, ProjectRule, register_project
from .dataflow import (
    ambient_reads,
    call_name,
    is_module_ref,
    owned_calls,
    param_names,
    positional_or_keyword,
    scope_walk,
)
from .symbols import FunctionInfo, ModuleSymbols, ProjectContext

__all__ = [
    "GlobalStateWriteRule",
    "ForkUnsafeCaptureRule",
    "AmbientCacheInputRule",
    "trial_spec_sites",
]

#: In-place mutators on dict/list/set objects.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "extend",
        "insert",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
    }
)

#: module -> constructor names whose instances do not survive a fork.
_FORK_UNSAFE = {
    "threading": {
        "Thread",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Timer",
        "local",
    },
    "socket": {"socket", "create_connection"},
    "subprocess": {"Popen"},
    "sqlite3": {"connect"},
}


class TrialSite:
    """One ``TrialSpec(...)`` construction, resolved to its function."""

    def __init__(
        self,
        module: ModuleSymbols,
        call: ast.Call,
        fn_ref: Optional[str],
        cached: bool,
    ):
        self.module = module
        self.call = call
        self.fn_ref = fn_ref
        self.cached = cached


def trial_spec_sites(project: ProjectContext) -> List[TrialSite]:
    """Every ``TrialSpec`` construction in the project, in stable order."""
    sites: List[TrialSite] = []
    for name in sorted(project.modules):
        module = project.modules[name]
        for node in ast.walk(module.ctx.tree):
            if not isinstance(node, ast.Call) or call_name(node) != "TrialSpec":
                continue
            fn_expr = positional_or_keyword(node, 0, "fn")
            fn_ref: Optional[str] = None
            if fn_expr is not None:
                fn_ref = project.resolve_call(module, fn_expr)
            cache_expr = positional_or_keyword(node, 3, "cache_key")
            cached = cache_expr is not None and not (
                isinstance(cache_expr, ast.Constant) and cache_expr.value is None
            )
            sites.append(TrialSite(module, node, fn_ref, cached))
    return sites


def _local_names(fn: ast.AST) -> Set[str]:
    """Names bound inside the function (params + any Store)."""
    names: Set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        names |= param_names(fn)
    for node in scope_walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _root_name(expr: ast.expr) -> Optional[str]:
    """Base ``Name`` of an attribute/subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def module_state_writes(
    module: ModuleSymbols, fn: ast.AST
) -> Iterator[Tuple[ast.AST, str]]:
    """Sites in ``fn``'s direct body that mutate module-level state.

    Yields ``(node, description)``.  Detects ``global`` rebinding,
    stores through subscripts/attributes rooted at a module-level name
    (or an imported module), and in-place mutator calls on
    module-level names.  Names rebound locally shadow module ones and
    are ignored.
    """
    declared_global: Set[str] = set()
    for node in scope_walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    module_names = set(module.module_assigns) | set(module.import_aliases)
    locals_here = _local_names(fn) - declared_global

    for node in scope_walk(fn):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store) and node.id in declared_global:
                yield node, f"rebinds module global '{node.id}'"
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if root is None or root in locals_here:
                        continue
                    if root in module_names or root in declared_global:
                        yield target, f"writes into module-level '{root}'"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, (ast.Name, ast.Attribute, ast.Subscript))
            ):
                root = _root_name(func.value)
                if root is None or root in locals_here:
                    continue
                if root in set(module.module_assigns) | declared_global:
                    yield node, f"mutates module-level '{root}' via .{func.attr}()"


def _trial_functions(
    project: ProjectContext, cached_only: bool = False
) -> Dict[str, Tuple[FunctionInfo, TrialSite]]:
    """fn ref -> (definition, first site) for resolved trial functions."""
    out: Dict[str, Tuple[FunctionInfo, TrialSite]] = {}
    for site in trial_spec_sites(project):
        if cached_only and not site.cached:
            continue
        info = project.function(site.fn_ref)
        if info is not None and site.fn_ref is not None and site.fn_ref not in out:
            out[site.fn_ref] = (info, site)
    return out


@register_project
class GlobalStateWriteRule(ProjectRule):
    """EXEC001: trial function writes module-level mutable state."""

    rule_id = "EXEC001"
    description = (
        "function submitted as a TrialSpec writes module-level state; "
        "the write is lost with the forked child and makes trials "
        "order-dependent"
    )
    help_anchor = "pack-5--forkcache-safety-exec"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ref, (info, _site) in sorted(_trial_functions(project).items()):
            module = project.modules[info.module]
            for node, what in module_state_writes(module, info.node):
                yield self.finding(
                    project,
                    module.ctx.display_path,
                    node,
                    f"trial function '{info.qualname}' {what}; trial "
                    "results must depend only on (fn, kwargs, seed)",
                )


@register_project
class ForkUnsafeCaptureRule(ProjectRule):
    """EXEC002: trial function uses a pre-fork resource."""

    rule_id = "EXEC002"
    description = (
        "function submitted as a TrialSpec captures a fork-unsafe "
        "module-level resource (thread/lock/socket/open handle) created "
        "before the fork"
    )
    help_anchor = "pack-5--forkcache-safety-exec"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ref, (info, _site) in sorted(_trial_functions(project).items()):
            module = project.modules[info.module]
            unsafe = self._unsafe_module_names(module)
            if not unsafe:
                continue
            reported: Set[str] = set()
            locals_here = _local_names(info.node)
            for node in scope_walk(info.node):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in unsafe
                    and node.id not in locals_here
                    and node.id not in reported
                ):
                    reported.add(node.id)
                    yield self.finding(
                        project,
                        module.ctx.display_path,
                        node,
                        f"trial function '{info.qualname}' uses module-level "
                        f"'{node.id}' ({unsafe[node.id]}), created before the "
                        "fork; create it inside the trial instead",
                    )

    def _unsafe_module_names(self, module: ModuleSymbols) -> Dict[str, str]:
        """Module-level names bound to fork-unsafe constructor calls."""
        unsafe: Dict[str, str] = {}
        for name, value in module.module_assigns.items():
            label = self._fork_unsafe_ctor(module, value)
            if label is not None:
                unsafe[name] = label
        return unsafe

    def _fork_unsafe_ctor(
        self, module: ModuleSymbols, expr: ast.expr
    ) -> Optional[str]:
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "open file handle"
            imported = module.from_imports.get(func.id)
            if imported is not None:
                source, original = imported
                if original in _FORK_UNSAFE.get(source, set()):
                    return f"{source}.{original}"
            return None
        if isinstance(func, ast.Attribute):
            for source, ctors in _FORK_UNSAFE.items():
                if func.attr in ctors and is_module_ref(module, func.value, source):
                    return f"{source}.{func.attr}"
        return None


@register_project
class AmbientCacheInputRule(ProjectRule):
    """EXEC003: cached trial reads inputs outside its cache key."""

    rule_id = "EXEC003"
    description = (
        "cached trial function (or a callee) reads ambient inputs — "
        "os.environ, wall clock, files, stdin — that are not part of "
        "its trial_key cache key"
    )
    help_anchor = "pack-5--forkcache-safety-exec"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        cached = _trial_functions(project, cached_only=True)
        if not cached:
            return
        graph = build_callgraph(project)
        roots = sorted(cached)
        for ref in sorted(graph.reachable(roots)):
            info = project.function(ref)
            if info is None:
                continue
            module = project.modules[info.module]
            for node, what in ambient_reads(module, info.node):
                chain = graph.path_from(roots, ref)
                via = " -> ".join(chain) if chain else ref
                yield self.finding(
                    project,
                    module.ctx.display_path,
                    node,
                    f"{what} read inside cached trial call tree ({via}); "
                    "fold the value into the trial kwargs/cache key or "
                    "hoist it out of the trial",
                )
