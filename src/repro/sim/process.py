"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields :class:`Timeout`,
:class:`WaitSignal`, or another :class:`Process` (to join it).  The
scheduler resumes the generator when the awaited condition is met,
sending back the condition's value (the fired signal's payload, or the
joined process's return value).

Example
-------
::

    def sender(sim, radio):
        for _ in range(10):
            radio.transmit(frame)
            yield Timeout(0.5)          # inter-packet gap

    proc = spawn(sim, sender(sim, radio))
    sim.run()
    assert proc.finished

This mirrors the process model of simpy while remaining ~200 lines and
fully deterministic with the kernel's FIFO tie-breaking.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from .engine import SimulationError, Simulator

__all__ = [
    "Interrupt",
    "Process",
    "ProcessError",
    "Signal",
    "Timeout",
    "WaitSignal",
    "spawn",
]


class ProcessError(SimulationError):
    """Raised on process-API misuse (bad yield values, joining self)."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries whatever the interrupter passed.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Yield target: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ProcessError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(value)`` wakes every currently waiting process, delivering
    ``value`` as the result of their ``yield``.  Signals are reusable:
    processes that wait after a fire block until the *next* fire.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self.name = name
        self._waiters: list[Process] = []
        self.fire_count = 0

    def fire(self, value: Any = None) -> int:
        """Wake all waiters with ``value``.  Returns the number woken."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        for proc in waiters:
            # Resume via the scheduler (same timestamp, FIFO order) so a
            # fire() inside an event callback cannot reenter arbitrarily.
            self._sim.schedule(0.0, proc._resume, value)
        return len(waiters)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class WaitSignal:
    """Yield target: block until ``signal`` fires.

    An optional ``timeout`` bounds the wait; on expiry the process is
    resumed with :data:`WAIT_TIMED_OUT` instead of the signal payload.
    """

    __slots__ = ("signal", "timeout")

    def __init__(self, signal: Signal, timeout: Optional[float] = None):
        self.signal = signal
        self.timeout = timeout


#: Sentinel returned from ``yield WaitSignal(sig, timeout=...)`` on expiry.
WAIT_TIMED_OUT = object()


class Process:
    """A running generator coroutine inside the simulation.

    Do not instantiate directly — use :func:`spawn`.
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.value: Any = None           # generator's return value
        self.error: Optional[BaseException] = None
        self._joiners: list[Process] = []
        self._pending_timeout = None      # EventHandle for Timeout / wait timeout
        self._waiting_signal: Optional[Signal] = None

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.finished:
            return
        self._detach()
        self._sim.schedule(0.0, self._throw, Interrupt(cause))

    def join(self) -> "WaitSignal":
        """(internal) processes yield the Process object itself to join."""
        raise ProcessError("yield the Process object itself to join it")

    # ------------------------------------------------------------------
    # Scheduler plumbing
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._sim.schedule(0.0, self._resume, None)

    def _detach(self) -> None:
        """Withdraw from whatever this process is currently waiting on."""
        if self._pending_timeout is not None:
            self._pending_timeout.cancel()
            self._pending_timeout = None
        if self._waiting_signal is not None:
            self._waiting_signal._remove_waiter(self)
            self._waiting_signal = None

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        self._detach()
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate after record
            self._finish(error=exc)
            raise
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as clean exit.
            self._finish(value=None)
            return
        except BaseException as err:  # noqa: BLE001
            self._finish(error=err)
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        """Arrange to resume when ``target`` completes."""
        if isinstance(target, Timeout):
            self._pending_timeout = self._sim.schedule(
                target.delay, self._resume, None
            )
        elif isinstance(target, Signal):
            self._waiting_signal = target
            target._add_waiter(self)
        elif isinstance(target, WaitSignal):
            self._waiting_signal = target.signal
            target.signal._add_waiter(self)
            if target.timeout is not None:
                self._pending_timeout = self._sim.schedule(
                    target.timeout, self._resume, WAIT_TIMED_OUT
                )
        elif isinstance(target, Process):
            if target is self:
                raise ProcessError("a process cannot join itself")
            if target.finished:
                self._sim.schedule(0.0, self._resume, target.value)
            else:
                target._joiners.append(self)
        else:
            raise ProcessError(
                f"process {self.name!r} yielded unsupported value {target!r}; "
                "yield Timeout, Signal, WaitSignal, or a Process"
            )

    def _finish(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.value = value
        self.error = error
        self._detach()
        joiners, self._joiners = self._joiners, []
        for j in joiners:
            self._sim.schedule(0.0, j._resume, value)

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Start ``generator`` as a process; it first runs at the current time.

    Returns the :class:`Process`, which other processes may yield to join.
    """
    if not hasattr(generator, "send"):
        raise ProcessError(
            "spawn() needs a generator (did you forget to call the function?)"
        )
    proc = Process(sim, generator, name=name)
    proc._start()
    return proc


def all_finished(processes: Iterable[Process]) -> bool:
    """True when every process in the iterable has finished."""
    return all(p.finished for p in processes)
