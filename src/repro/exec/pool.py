"""Persistent prefork worker pool.

:class:`TrialRunner` forks a fresh set of workers for every
:meth:`~repro.exec.runner.TrialRunner.run` call, which is the right
trade for a handful of long trials but pure overhead for
many-small-trial workloads (``repro report`` runs dozens of short
sweeps back to back).  :class:`WorkerPool` keeps a fixed set of forked
workers alive across runs and feeds them tasks over pipes.

Because pool workers are forked *before* the tasks exist, they cannot
inherit trial closures by memory the way the per-run fork path does.
Tasks therefore cross the pipe **by name**: the trial function as a
``module:qualname`` reference and its kwargs in an extended canonical
JSON encoding (:func:`encode_pool_value`) that also carries
module-level callables and dataclasses registered with
:func:`register_pool_dataclass`.  Specs that cannot be encoded that
way — lambdas, closures, exotic kwargs — are returned to the runner,
which falls back to its classic fork path for them (and counts them in
telemetry as ``pool_fallbacks``).  Either way the result transport is
the same canonical JSON, so pooled, forked, and serial execution stay
bit-identical.

Crash handling mirrors the per-run path: a worker that dies mid-batch
surfaces as per-trial ``WorkerCrashed`` failures for its unreported
tasks, and the pool forks a replacement before the next batch
(``pool_respawns`` in telemetry).  Use the pool as a context manager —
``close()`` sends every worker a shutdown frame and reaps it.

This module is one of the two allowed process-management sites in the
tree (lint rule DET007/DET006 — see :mod:`repro.analysis.determinism`).
"""

from __future__ import annotations

import importlib
import json
import os
import selectors
import struct
import time
from dataclasses import fields, is_dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from ..analysis.sanitizer.runtime import active_sanitizer
from .runner import TrialSpec, execute_call

__all__ = [
    "NotPoolable",
    "WorkerPool",
    "decode_pool_value",
    "encode_pool_value",
    "register_pool_dataclass",
]


class NotPoolable(Exception):
    """A spec cannot cross the pool's by-name task transport."""


# ----------------------------------------------------------------------
# Task transport: canonical JSON + by-name callables and dataclasses
# ----------------------------------------------------------------------
#: Dataclasses allowed to cross the task pipe, keyed by module:qualname.
_POOL_DATACLASSES: Dict[str, Type[Any]] = {}


def register_pool_dataclass(cls: Type[Any]) -> Type[Any]:
    """Allow instances of dataclass ``cls`` in pool task kwargs.

    Registration is an explicit opt-in (usable as a class decorator):
    the pool reconstructs instances by calling ``cls(**fields)`` in the
    worker, so only dataclasses whose constructor round-trips their
    field dict should be registered.  Import of the defining module in
    the worker happens through the same reference, so registration at
    module scope makes the class available on both ends.
    """
    if not (is_dataclass(cls) and isinstance(cls, type)):
        raise TypeError(f"{cls!r} is not a dataclass type")
    _POOL_DATACLASSES[_ref_of(cls)] = cls
    return cls


def _ref_of(obj: Any) -> str:
    return f"{obj.__module__}:{obj.__qualname__}"


def _resolve_ref(ref: str) -> Any:
    module_name, _, qualname = ref.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def encode_pool_value(value: Any) -> Any:
    """Encode a task kwarg for the pool pipe; raise :class:`NotPoolable`.

    Extends the result transport's encoding (non-finite floats as
    tagged dicts) with two *input-side* forms: module-level callables
    as ``{"__callable__": ref}`` and registered dataclass instances as
    ``{"__dataclass__": ref, "fields": {...}}``.  Anything that does
    not round-trip exactly — unresolvable callables, unregistered
    dataclasses, arbitrary objects — is rejected rather than
    approximated: a silently lossy transport would break the
    determinism contract between pooled and unpooled runs.
    """
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return {"__float__": repr(value) if value == value else "nan"}
        return value
    if isinstance(value, (list, tuple)):
        return [encode_pool_value(item) for item in value]
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise NotPoolable(f"non-string dict key {key!r}")
            out[key] = encode_pool_value(item)
        return out
    if is_dataclass(value) and not isinstance(value, type):
        ref = _ref_of(type(value))
        if ref not in _POOL_DATACLASSES:
            raise NotPoolable(
                f"dataclass {ref} not registered with register_pool_dataclass"
            )
        return {
            "__dataclass__": ref,
            "fields": {
                f.name: encode_pool_value(getattr(value, f.name))
                for f in fields(value)
            },
        }
    if callable(value):
        ref = _callable_ref(value)
        if ref is None:
            raise NotPoolable(f"callable {value!r} is not importable by name")
        return {"__callable__": ref}
    raise NotPoolable(f"cannot transport {type(value).__name__} value {value!r}")


def _callable_ref(fn: Any) -> Optional[str]:
    """``module:qualname`` if importing it yields ``fn`` itself, else None."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None  # lambdas and locals render as <lambda> / <locals>
    ref = f"{module}:{qualname}"
    try:
        resolved = _resolve_ref(ref)
    except Exception:
        return None
    return ref if resolved is fn else None


def decode_pool_value(value: Any) -> Any:
    """Invert :func:`encode_pool_value` (runs in the worker)."""
    if isinstance(value, dict):
        if set(value) == {"__float__"}:
            return float(value["__float__"])
        if set(value) == {"__callable__"}:
            return _resolve_ref(value["__callable__"])
        if set(value) == {"__dataclass__", "fields"}:
            cls = _POOL_DATACLASSES.get(value["__dataclass__"])
            if cls is None:
                cls = _resolve_ref(value["__dataclass__"])
            return cls(
                **{
                    key: decode_pool_value(item)
                    for key, item in value["fields"].items()
                }
            )
        return {key: decode_pool_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_pool_value(item) for item in value]
    return value


def spec_payload(
    spec: TrialSpec,
    timeout: Optional[float],
    retries: int,
    profile: bool = False,
    metrics: bool = False,
) -> Optional[Dict[str, Any]]:
    """The task frame for ``spec``, or None if it cannot be pooled."""
    fn_ref = _callable_ref(spec.fn)
    if fn_ref is None:
        return None
    try:
        kwargs = {
            key: encode_pool_value(item) for key, item in dict(spec.kwargs).items()
        }
    except NotPoolable:
        return None
    payload: Dict[str, Any] = {
        "op": "task",
        "fn": fn_ref,
        "kwargs": kwargs,
        "timeout": timeout,
        "retries": retries,
    }
    if profile:
        payload["profile"] = True
    if metrics:
        payload["metrics"] = True
    return payload


# ----------------------------------------------------------------------
# Frames: 4-byte big-endian length prefix + UTF-8 JSON, both directions
# ----------------------------------------------------------------------
def _frame(message: Mapping[str, Any]) -> bytes:
    data = json.dumps(message, allow_nan=False).encode("utf-8")
    return struct.pack(">I", len(data)) + data


def _worker_main(reader_fd: int, writer_fd: int, worker_id: int) -> None:
    """Forked worker loop: read task frames, write result frames, forever.

    Runs on the child's main thread, so SIGALRM deadlines work here
    exactly as they do in per-run forked workers.
    """
    san = active_sanitizer()
    if san is not None:
        # This IS the fork point for a pool worker: drop observations
        # inherited from the parent and snapshot module state here, so
        # DetSan's fork-state differ compares against what the worker
        # actually started with (see runtime.DetSanContext.after_fork).
        san.after_fork()
    buffer = b""
    with os.fdopen(reader_fd, "rb", buffering=0) as inp, os.fdopen(
        writer_fd, "wb", buffering=0
    ) as out:
        while True:
            while len(buffer) < 4 or len(buffer) < 4 + struct.unpack(
                ">I", buffer[:4]
            )[0]:
                chunk = inp.read(1 << 16)
                if not chunk:
                    return  # parent closed the task pipe: shut down
                buffer += chunk
            size = struct.unpack(">I", buffer[:4])[0]
            task = json.loads(buffer[4 : 4 + size].decode("utf-8"))
            buffer = buffer[4 + size :]
            if task.get("op") == "shutdown":
                return
            index = task["index"]
            try:
                fn = _resolve_ref(task["fn"])
                kwargs = {
                    key: decode_pool_value(item)
                    for key, item in task["kwargs"].items()
                }
            except Exception as exc:
                message: Dict[str, Any] = {
                    "ok": False,
                    "error_type": type(exc).__name__,
                    "message": f"task transport failed in worker: {exc}",
                    "traceback": "",
                    "duration": 0.0,
                    "attempts": 0,
                }
            else:
                message = execute_call(
                    fn,
                    kwargs,
                    task.get("timeout"),
                    int(task.get("retries", 0)),
                    profile=bool(task.get("profile", False)),
                    metrics=bool(task.get("metrics", False)),
                )
            message["index"] = index
            message["worker"] = worker_id
            out.write(_frame(message))


class _Worker:
    """Parent-side handle for one live pool worker."""

    __slots__ = ("pid", "task_fd", "result_fd", "tasks_done")

    def __init__(self, pid: int, task_fd: int, result_fd: int) -> None:
        self.pid = pid
        self.task_fd = task_fd
        self.result_fd = result_fd
        self.tasks_done = 0

    def alive(self) -> bool:
        try:
            pid, _ = os.waitpid(self.pid, os.WNOHANG)
        except ChildProcessError:
            return False
        return pid == 0

    def reap(self) -> None:
        for fd in (self.task_fd, self.result_fd):
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.waitpid(self.pid, 0)
        except ChildProcessError:
            pass


class WorkerPool:
    """A fixed-size set of long-lived forked trial workers.

    Workers are forked lazily on first use and reused across
    :meth:`run_specs` calls; ``runs_served`` / ``tasks_done`` /
    ``respawns`` count the amortization.  The pool is single-client and
    not thread-safe — one :class:`~repro.exec.runner.TrialRunner` drives
    it at a time.

    >>> from repro.exec import TrialRunner, TrialSpec  # doctest: +SKIP
    >>> with WorkerPool(workers=4) as pool:            # doctest: +SKIP
    ...     runner = TrialRunner(workers=4, pool=pool)
    ...     runner.run(specs_a)
    ...     runner.run(specs_b)   # same workers, no new forks
    """

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only repo
            raise RuntimeError("WorkerPool requires os.fork")
        self.workers = workers
        self._slots: List[Optional[_Worker]] = [None] * workers
        self._closed = False
        #: lifetime counters (telemetry reads these)
        self.forks = 0
        self.respawns = 0
        self.runs_served = 0
        self.tasks_done = 0
        self._unclaimed_respawns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: int) -> _Worker:
        task_r, task_w = os.pipe()
        result_r, result_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # worker child
            status = 0
            try:
                os.close(task_w)
                os.close(result_r)
                # Drop inherited sibling pipes: holding a sibling's
                # result-pipe write end would mask its EOF when it
                # crashes, breaking the parent's crash detection.
                for sibling in self._slots:
                    if sibling is not None:
                        for fd in (sibling.task_fd, sibling.result_fd):
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                _worker_main(task_r, result_w, slot)
            except BaseException:
                status = 1
            finally:
                os._exit(status)
        os.close(task_r)
        os.close(result_w)
        os.set_blocking(task_w, False)  # parent writes are multiplexed
        worker = _Worker(pid, task_w, result_r)
        self._slots[slot] = worker
        self.forks += 1
        return worker

    def _ensure(self, slot: int) -> _Worker:
        """The live worker for ``slot``, respawning a dead/missing one."""
        worker = self._slots[slot]
        if worker is not None and worker.alive():
            return worker
        if worker is not None:
            worker.reap()
            self._slots[slot] = None
            self.respawns += 1
            self._unclaimed_respawns += 1
        return self._spawn(slot)

    def healthy_workers(self) -> int:
        """How many slots currently hold a live worker (no respawning)."""
        return sum(
            1 for worker in self._slots if worker is not None and worker.alive()
        )

    def take_respawns(self) -> int:
        """Respawns since the last call (runner telemetry drains this)."""
        count = self._unclaimed_respawns
        self._unclaimed_respawns = 0
        return count

    def close(self) -> None:
        """Shut every worker down cleanly and reap it."""
        if self._closed:
            return
        self._closed = True
        shutdown = _frame({"op": "shutdown"})
        for worker in self._slots:
            if worker is None:
                continue
            try:
                os.set_blocking(worker.task_fd, True)
                os.write(worker.task_fd, shutdown)
            except OSError:
                pass  # already dead; reap below
            worker.reap()
        self._slots = [None] * self.workers

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_specs(
        self,
        specs: Sequence[TrialSpec],
        pending: Sequence[int],
        timeout: Optional[float] = None,
        retries: int = 0,
        profile: bool = False,
        metrics: bool = False,
    ) -> Tuple[Dict[int, Dict[str, Any]], List[int]]:
        """Run the poolable subset of ``pending``; return the rest.

        Returns ``(messages, unpoolable)``: result messages keyed by
        spec index (the same shape the classic fork path produces, so
        the runner's ``_collect`` handles both), plus the indices whose
        specs could not cross the transport.  Tasks shard round-robin
        over worker slots — a pure function of the poolable list and
        the pool size, never of worker health history.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        poolable: List[Tuple[int, Dict[str, Any]]] = []
        unpoolable: List[int] = []
        for index in pending:
            payload = spec_payload(
                specs[index], timeout, retries, profile=profile, metrics=metrics
            )
            if payload is None:
                unpoolable.append(index)
            else:
                payload["index"] = index
                poolable.append((index, payload))
        messages: Dict[int, Dict[str, Any]] = {}
        if poolable:
            self.runs_served += 1
            messages = self._exchange(poolable)
            self.tasks_done += len(messages)
        return messages, unpoolable

    def _exchange(
        self, tasks: List[Tuple[int, Dict[str, Any]]]
    ) -> Dict[int, Dict[str, Any]]:
        """Feed task frames out and drain result frames, multiplexed.

        Both directions go through one selector loop so a worker with a
        full task pipe can never deadlock against a worker with a full
        result pipe.  A result fd hitting EOF means that worker died;
        its unreported tasks stay absent from the returned mapping (the
        runner synthesizes ``WorkerCrashed`` failures) and its slot is
        respawned on the next batch.
        """
        slots = min(self.workers, len(tasks))
        outbox: Dict[int, bytes] = {}
        expect: Dict[int, int] = {}
        workers: Dict[int, _Worker] = {}
        for slot in range(slots):
            shard = tasks[slot::slots]
            if not shard:
                continue
            worker = self._ensure(slot)
            workers[slot] = worker
            outbox[slot] = b"".join(_frame(payload) for _, payload in shard)
            expect[slot] = len(shard)

        messages: Dict[int, Dict[str, Any]] = {}
        buffers: Dict[int, bytes] = {slot: b"" for slot in workers}
        selector = selectors.DefaultSelector()
        for slot, worker in workers.items():
            selector.register(worker.result_fd, selectors.EVENT_READ, slot)
            selector.register(worker.task_fd, selectors.EVENT_WRITE, slot)

        writing = set(workers)
        reading = set(workers)
        try:
            while reading:
                for key, events in selector.select():
                    slot = key.data
                    worker = workers[slot]
                    if events & selectors.EVENT_WRITE and slot in writing:
                        try:
                            sent = os.write(worker.task_fd, outbox[slot])
                            outbox[slot] = outbox[slot][sent:]
                        except BlockingIOError:
                            pass
                        except (BrokenPipeError, OSError):
                            # Worker died with tasks unsent; its EOF on
                            # the result fd does the bookkeeping.
                            outbox[slot] = b""
                        if not outbox[slot]:
                            writing.discard(slot)
                            selector.unregister(worker.task_fd)
                    if events & selectors.EVENT_READ and slot in reading:
                        chunk = os.read(worker.result_fd, 1 << 16)
                        if not chunk:
                            # EOF: the worker crashed mid-batch.
                            reading.discard(slot)
                            selector.unregister(worker.result_fd)
                            if slot in writing:
                                writing.discard(slot)
                                selector.unregister(worker.task_fd)
                            worker.reap()
                            self._slots[slot] = None
                            self.respawns += 1
                            self._unclaimed_respawns += 1
                            continue
                        buffers[slot] += chunk
                        while len(buffers[slot]) >= 4:
                            size = struct.unpack(">I", buffers[slot][:4])[0]
                            if len(buffers[slot]) < 4 + size:
                                break
                            frame = buffers[slot][4 : 4 + size]
                            buffers[slot] = buffers[slot][4 + size :]
                            message = json.loads(frame.decode("utf-8"))
                            messages[message.pop("index")] = message
                            worker.tasks_done += 1
                            expect[slot] -= 1
                        if expect[slot] <= 0 and slot in reading:
                            reading.discard(slot)
                            selector.unregister(worker.result_fd)
        finally:
            selector.close()
        return messages
