"""Per-node energy accounting.

"Every bit transmitted reduces the lifetime of the network" (Pottie,
quoted in Section 2.3).  The paper argues AFF's savings matter precisely
for radios whose energy cost tracks user bits closely (Section 4.4):
simple MACs like the Radiometrix RPC, as opposed to 802.11's hundreds of
bits of per-frame overhead.

:class:`EnergyModel` captures that relationship with three per-bit
costs plus a fixed per-frame overhead; :class:`EnergyMeter` applies it
per node.  Setting ``per_frame_overhead_bits`` large reproduces the
"802.11 regime" where AFF's savings wash out — an ablation the paper
describes qualitatively and we measure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyMeter", "EnergyModel", "RPC_PROFILE", "WIFI_LIKE_PROFILE"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy cost parameters, in joules.

    Attributes
    ----------
    tx_per_bit / rx_per_bit / listen_per_second:
        Marginal costs of transmitting a bit, receiving a bit, and
        keeping the receiver powered while idle.
    per_frame_overhead_bits:
        MAC/framing bits added to every frame (preamble, sync, FCS...),
        charged at ``tx_per_bit``/``rx_per_bit`` but invisible to the
        protocol layer.  The knob that separates the RPC regime from
        the 802.11 regime.
    """

    tx_per_bit: float = 1.0e-6
    rx_per_bit: float = 0.5e-6
    listen_per_second: float = 1.0e-4
    per_frame_overhead_bits: int = 16

    def frame_tx_cost(self, frame_bits: int) -> float:
        """Energy to transmit one frame of ``frame_bits`` payload bits."""
        return self.tx_per_bit * (frame_bits + self.per_frame_overhead_bits)

    def frame_rx_cost(self, frame_bits: int) -> float:
        """Energy to receive one frame of ``frame_bits`` payload bits."""
        return self.rx_per_bit * (frame_bits + self.per_frame_overhead_bits)


#: A low-power RPC-like radio: framing overhead is small, so user bits
#: dominate energy — the regime where AFF pays off.
RPC_PROFILE = EnergyModel(
    tx_per_bit=1.0e-6,
    rx_per_bit=0.5e-6,
    listen_per_second=1.0e-4,
    per_frame_overhead_bits=16,
)

#: An 802.11-like radio: hundreds of MAC-overhead bits per frame swamp
#: the few identifier bits AFF saves (Section 4.4's caveat).
WIFI_LIKE_PROFILE = EnergyModel(
    tx_per_bit=1.0e-6,
    rx_per_bit=0.5e-6,
    listen_per_second=1.0e-3,
    per_frame_overhead_bits=400,
)


class EnergyMeter:
    """Accumulates one node's energy expenditure."""

    def __init__(self, model: EnergyModel):
        self.model = model
        self.tx_joules = 0.0
        self.rx_joules = 0.0
        self.listen_joules = 0.0
        self.frames_sent = 0
        self.frames_received = 0

    def charge_tx(self, frame_bits: int) -> None:
        self.tx_joules += self.model.frame_tx_cost(frame_bits)
        self.frames_sent += 1

    def charge_rx(self, frame_bits: int) -> None:
        self.rx_joules += self.model.frame_rx_cost(frame_bits)
        self.frames_received += 1

    def charge_listen(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("listen time must be >= 0")
        self.listen_joules += self.model.listen_per_second * seconds

    @property
    def total_joules(self) -> float:
        return self.tx_joules + self.rx_joules + self.listen_joules

    def __repr__(self) -> str:
        return (
            f"<EnergyMeter total={self.total_joules:.6g}J "
            f"tx={self.tx_joules:.6g} rx={self.rx_joules:.6g} "
            f"listen={self.listen_joules:.6g}>"
        )
