#!/usr/bin/env python3
"""Interest reinforcement with RETRI identifiers (Section 6).

Eight sensors report readings tagged with ephemeral identifiers.  A sink
reinforces interesting readings by identifier alone — "whoever just sent
data with identifier 4, send more of that" — with no sensor addresses
anywhere.  Reinforced sensors speed up; ignored ones decay to a slow
base rate.

The demo runs twice:
* RETRI mode with a deliberately small 4-bit identifier space so a few
  misdirected reinforcements occur (two sensors sharing an identifier
  both speed up), and
* static mode, which never misdirects but pays fixed wide identifiers.

Run:  python examples/interest_gradient.py
"""

from repro.apps.interest import InterestSink, InterestSource
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.radio.mac import CsmaMac
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.graphs import FullMesh

N_SOURCES = 8
DURATION = 90.0


def run(mode: str, id_bits: int) -> None:
    rngs = RngRegistry(7)
    sim = Simulator()
    medium = BroadcastMedium(
        sim, FullMesh(range(N_SOURCES + 1)), rf_collisions=False,
        rng=rngs.stream("medium"),
    )
    sink = InterestSink(
        sim,
        Radio(medium, N_SOURCES, mac=CsmaMac(rng=rngs.stream("mac.sink"))),
        id_bits=id_bits,
        # The sink is interested in "high" readings only.
        interest_fn=lambda reading: reading >= 0x8000,
    )
    sources = []
    for node in range(N_SOURCES):
        reading_rng = rngs.stream(f"reading.{node}")
        source = InterestSource(
            sim,
            Radio(medium, node, mac=CsmaMac(rng=rngs.stream(f"mac.{node}"))),
            UniformSelector(IdentifierSpace(id_bits), rngs.stream(f"sel.{node}")),
            # Even-numbered sensors see high readings (interesting).
            reading_fn=(
                (lambda: 0xFFFF) if node % 2 == 0 else (lambda: 0x0001)
            ),
            epoch=5.0,
            base_interval=4.0,
            min_interval=0.5,
            static_identifier=(node if mode == "static" else None),
            rng=rngs.stream(f"src.{node}"),
        )
        source.start()
        sources.append(source)

    sim.run(until=DURATION)

    print(f"--- {mode} mode, {id_bits}-bit identifiers ---")
    for node, source in enumerate(sources):
        s = source.stats
        interesting = "interesting " if node % 2 == 0 else "boring      "
        print(
            f"  sensor {node} ({interesting}): "
            f"{s.readings_sent:3d} readings, "
            f"{s.reinforcements_received:3d} reinforcements "
            f"({s.reinforcements_misdirected} misdirected), "
            f"final interval {source.interval:.2f}s"
        )
    total_mis = sum(s.stats.reinforcements_misdirected for s in sources)
    interesting_rates = [
        s.stats.readings_sent for i, s in enumerate(sources) if i % 2 == 0
    ]
    boring_rates = [
        s.stats.readings_sent for i, s in enumerate(sources) if i % 2
    ]
    print(f"  => interesting sensors reported "
          f"{sum(interesting_rates) / len(interesting_rates):.0f}x on average, "
          f"boring ones {sum(boring_rates) / len(boring_rates):.0f}x; "
          f"{total_mis} reinforcements went to the wrong sensor")
    print()


if __name__ == "__main__":
    print("Interest reinforcement: the network learns who to listen to,")
    print("without ever naming a sensor.")
    print()
    run("RETRI", id_bits=4)
    run("static", id_bits=4)
    print("RETRI occasionally reinforces the wrong sensor (shared")
    print("identifier), but each mistake dies with the 5-second epoch;")
    print("static identifiers never misdirect but cannot shrink below")
    print("log2(network size) bits and must be kept unique under churn.")
