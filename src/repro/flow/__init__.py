"""Flow-level / hybrid-fidelity simulation (``repro.flow``).

The fourth execution fidelity of the stack, one level above the frame
simulator and the Monte Carlo event core: transaction *streams*
(arrival rate + duration descriptors, :mod:`~repro.flow.streams`) are
sampled per concurrency window from the paper's analytic collision
models (:mod:`~repro.flow.sampler`), with an optional hybrid switch
that replays only contended windows through the discrete event core
(:mod:`~repro.flow.hybrid`).  :mod:`~repro.flow.calibrate` pins the
flow sampler against the discrete ground truth on the Figure-4 grid.
:mod:`~repro.flow.shard` fans the window plan out across
:class:`~repro.exec.TrialRunner` workers, bit-identical to serial at
any worker/shard count; :mod:`~repro.flow.fastpath` vectorises the
per-window draws, bit-identical to the scalar loops.

Scale target (ROADMAP): 10k–1M-node scenarios, millions of
transactions, seconds of wall clock.  See ``docs/flow.md``.
"""

from .calibrate import (
    CalibrationPoint,
    CalibrationReport,
    calibrate,
    replicate_flow,
)
from .fastpath import HAVE_NUMPY, pure_sampling
from .hybrid import DEFAULT_SWITCH_THRESHOLD, FIDELITY_MODES, simulate, wants_frame
from .sampler import (
    FlowResult,
    WindowOutcome,
    WindowSpec,
    sample_flow,
    sample_window,
    window_collision_probability,
    window_plan,
)
from .shard import (
    PARTITION_STRATEGIES,
    WindowRange,
    merge_range_values,
    partition_plan,
    simulate_sharded,
    simulate_traced,
    window_range_trial,
)
from .streams import (
    FlowScenario,
    TransactionStream,
    aggregate_node_workload,
    figure4_scenario,
    massive_scenario,
    scenario_peak_density,
)

__all__ = [
    "CalibrationPoint",
    "CalibrationReport",
    "DEFAULT_SWITCH_THRESHOLD",
    "FIDELITY_MODES",
    "HAVE_NUMPY",
    "PARTITION_STRATEGIES",
    "FlowResult",
    "FlowScenario",
    "TransactionStream",
    "WindowOutcome",
    "WindowRange",
    "WindowSpec",
    "aggregate_node_workload",
    "calibrate",
    "figure4_scenario",
    "massive_scenario",
    "merge_range_values",
    "partition_plan",
    "pure_sampling",
    "replicate_flow",
    "sample_flow",
    "sample_window",
    "scenario_peak_density",
    "simulate",
    "simulate_sharded",
    "simulate_traced",
    "wants_frame",
    "window_collision_probability",
    "window_plan",
    "window_range_trial",
]
