"""Cross-reference static lint findings with dynamic sanitizer evidence.

Static rules predict non-determinism from code shape; the sanitizer
observes it happening.  This module joins the two: given a SARIF file
produced by ``python -m repro.lint --sarif`` and the findings of a
``repro sanitize run``, each static result is tagged

``dynamically-confirmed``
    a sanitizer finding whose rule *confirms* the static rule fired in
    the same file — the predicted hazard was observed at runtime;
``not-observed``
    no sanitizer evidence for that file.  Not proof of safety (the
    pinned scenarios exercise a slice of the tree), but a strong hint
    the static finding is latent rather than live.

The tag lands in each SARIF result's ``properties.detsan`` object
(``{"status": ..., "confirmedBy": [fingerprints...]}``), which GitHub
code scanning and SARIF viewers surface verbatim, and the text summary
groups results by status for the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Mapping, Sequence, Tuple

from ..core import Finding

__all__ = ["CONFIRMS", "annotate_sarif", "load_sarif", "render_summary"]

#: Which static rules each sanitizer rule dynamically confirms.
#:
#: SAN001 (unregistered / divergent RNG draws) is runtime evidence for
#: the determinism pack's direct-RNG rules, the stream-hygiene pack,
#: and seed-provenance taint.  SAN002 (tie-order divergence) and SAN003
#: (hash-order divergence) both realise DET005's iteration-order
#: hazard; SAN003 also confirms canonical-purity violations.  SAN004
#: (state drift) is the dynamic face of the fork/cache-safety pack.
CONFIRMS: Dict[str, FrozenSet[str]] = {
    "SAN001": frozenset(
        {"DET001", "DET002", "DET003", "RNG001", "RNG002", "SEED001"}
    ),
    "SAN002": frozenset({"DET005"}),
    "SAN003": frozenset({"DET005", "PURE001"}),
    "SAN004": frozenset({"EXEC001", "EXEC002", "EXEC003"}),
}

#: Inverse map: static rule id -> sanitizer rule ids that can confirm it.
_CONFIRMED_BY: Dict[str, List[str]] = {}
for _san_id, _static_ids in sorted(CONFIRMS.items()):
    for _static_id in sorted(_static_ids):
        _CONFIRMED_BY.setdefault(_static_id, []).append(_san_id)


def load_sarif(path: Path) -> Dict[str, Any]:
    """A SARIF document as a dict, validated just enough to annotate."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or not isinstance(data.get("runs"), list):
        raise ValueError(f"{path}: not a SARIF document (no runs array)")
    return data


def _result_path(result: Mapping[str, Any]) -> str:
    try:
        location = result["locations"][0]["physicalLocation"]
        return str(location["artifactLocation"]["uri"])
    except (KeyError, IndexError, TypeError):
        return ""


def annotate_sarif(
    document: Dict[str, Any], dynamic: Sequence[Finding]
) -> Dict[str, int]:
    """Tag every static result in ``document`` in place.

    Returns ``{"dynamically-confirmed": n, "not-observed": m}``.  A
    static result is confirmed when a sanitizer finding of a confirming
    rule landed in the same file; the matching findings' fingerprints
    go into ``properties.detsan.confirmedBy`` so the evidence is
    traceable back to the sanitize run.
    """
    by_rule_and_path: Dict[Tuple[str, str], List[str]] = {}
    for finding in dynamic:
        key = (finding.rule_id, finding.path)
        by_rule_and_path.setdefault(key, []).append(finding.fingerprint())

    counts = {"dynamically-confirmed": 0, "not-observed": 0}
    for run in document.get("runs", []):
        for result in run.get("results", []):
            rule_id = str(result.get("ruleId", ""))
            if rule_id in CONFIRMS:
                continue  # dynamic results are evidence, not subjects
            path = _result_path(result)
            confirmed_by: List[str] = []
            for san_id in _CONFIRMED_BY.get(rule_id, []):
                confirmed_by.extend(by_rule_and_path.get((san_id, path), []))
            status = "dynamically-confirmed" if confirmed_by else "not-observed"
            counts[status] += 1
            properties = result.setdefault("properties", {})
            properties["detsan"] = {
                "status": status,
                "confirmedBy": sorted(set(confirmed_by)),
            }
    return counts


def render_summary(
    document: Mapping[str, Any], counts: Mapping[str, int]
) -> str:
    """Human-readable per-status listing for the CLI."""
    lines = [
        f"{counts.get('dynamically-confirmed', 0)} static finding(s) "
        "dynamically confirmed, "
        f"{counts.get('not-observed', 0)} not observed at runtime"
    ]
    for run in document.get("runs", []):
        for result in run.get("results", []):
            detsan = result.get("properties", {}).get("detsan")
            if detsan is None:
                continue
            rule_id = result.get("ruleId", "?")
            path = _result_path(result) or "?"
            line = 0
            try:
                region = result["locations"][0]["physicalLocation"]["region"]
                line = int(region.get("startLine", 0))
            except (KeyError, IndexError, TypeError, ValueError):
                pass
            marker = (
                "CONFIRMED"
                if detsan["status"] == "dynamically-confirmed"
                else "not-observed"
            )
            lines.append(f"  {path}:{line} {rule_id}: {marker}")
    return "\n".join(lines)
