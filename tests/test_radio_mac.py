"""Unit tests for MAC strategies."""

import random

import pytest

from repro.radio.frame import Frame
from repro.radio.mac import AlohaMac, CsmaMac, SlottedMac
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


def setup(n=2, mac_factory=None, bitrate=100.0, rf_collisions=False):
    sim = Simulator()
    medium = BroadcastMedium(
        sim, FullMesh(range(n)), bitrate=bitrate, rf_collisions=rf_collisions
    )
    radios = {
        i: Radio(medium, i, mac=(mac_factory() if mac_factory else AlohaMac()))
        for i in range(n)
    }
    return sim, medium, radios


def frame(origin, size=10):
    return Frame(payload=b"\x00" * size, origin=origin)


class TestAloha:
    def test_own_frames_serialize(self):
        sim, medium, radios = setup()
        tx = radios[0]
        arrivals = []
        radios[1].set_receive_handler(lambda f: arrivals.append(sim.now))
        tx.send(frame(0))  # 0.8 s each
        tx.send(frame(0))
        sim.run()
        assert arrivals == [pytest.approx(0.8), pytest.approx(1.6)]

    def test_gap_spaces_frames(self):
        sim, medium, radios = setup(mac_factory=lambda: AlohaMac(gap=0.5))
        tx = radios[0]
        arrivals = []
        radios[1].set_receive_handler(lambda f: arrivals.append(sim.now))
        tx.send(frame(0))
        tx.send(frame(0))
        sim.run()
        assert arrivals == [pytest.approx(1.3), pytest.approx(2.6)]

    def test_queue_depth_visible(self):
        sim, medium, radios = setup()
        tx = radios[0]
        tx.send(frame(0))
        tx.send(frame(0))
        tx.send(frame(0))
        # first is in the air after spawn; remaining queue holds 2
        assert tx.mac.queue_depth >= 2
        sim.run()
        assert tx.mac.queue_depth == 0

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            AlohaMac(gap=-1.0)


class TestSlotted:
    def test_transmissions_start_on_slot_boundaries(self):
        sim, medium, radios = setup(mac_factory=lambda: SlottedMac(slot=1.0))
        tx = radios[0]
        starts = []
        tx.add_tx_listener(lambda f: starts.append(sim.now))
        sim.schedule(0.3, tx.send, frame(0))
        sim.run()
        assert starts == [pytest.approx(1.0)]

    def test_send_exactly_on_boundary_goes_immediately(self):
        sim, medium, radios = setup(mac_factory=lambda: SlottedMac(slot=1.0))
        tx = radios[0]
        starts = []
        tx.add_tx_listener(lambda f: starts.append(sim.now))
        sim.schedule(2.0, tx.send, frame(0))
        sim.run()
        assert starts == [pytest.approx(2.0)]

    def test_invalid_slot_rejected(self):
        with pytest.raises(ValueError):
            SlottedMac(slot=0.0)


class TestCsma:
    def test_defers_while_channel_busy(self):
        sim, medium, radios = setup(
            n=3,
            mac_factory=lambda: CsmaMac(
                backoff_max=0.05, max_attempts=100, rng=random.Random(1)
            ),
            bitrate=100.0,
            rf_collisions=True,
        )
        a, b = radios[0], radios[1]
        rx = radios[2]
        got = []
        rx.set_receive_handler(lambda f: got.append((f.origin, sim.now)))
        a.send(frame(0))  # occupies [0, 0.8)
        sim.schedule(0.1, b.send, frame(1))  # must defer past 0.8
        sim.run()
        assert len(got) == 2
        b_arrival = [t for origin, t in got if origin == 1][0]
        assert b_arrival > 1.6 - 0.8  # started after a's frame ended

    def test_backoffs_counted(self):
        sim, medium, radios = setup(
            n=2,
            mac_factory=lambda: CsmaMac(backoff_max=0.05, rng=random.Random(2)),
            bitrate=100.0,
        )
        a, b = radios[0], radios[1]
        a.send(frame(0))
        sim.schedule(0.1, b.send, frame(1))
        sim.run()
        assert b.mac.backoffs_taken >= 1

    def test_gives_up_after_max_attempts(self):
        """A persistently busy channel must not starve the sender forever."""
        sim, medium, radios = setup(
            n=2,
            mac_factory=lambda: CsmaMac(
                backoff_max=0.01, max_attempts=3, rng=random.Random(3)
            ),
            bitrate=1000.0,
        )
        a, b = radios[0], radios[1]
        # Saturate the air from a.
        for _ in range(100):
            a.send(frame(0))
        sim.schedule(0.001, b.send, frame(1))
        sim.run()
        assert b.frames_sent == 1  # transmitted despite busy air

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CsmaMac(backoff_max=0.0)
        with pytest.raises(ValueError):
            CsmaMac(max_attempts=0)


class TestBinding:
    def test_mac_cannot_be_shared_between_radios(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)))
        mac = AlohaMac()
        Radio(medium, 0, mac=mac)
        with pytest.raises(RuntimeError):
            Radio(medium, 1, mac=mac)
