"""Tests for explicit identifier-collision notifications (Section 3.2).

"To help alleviate this problem [hidden terminals], the receiver could
try to send an explicit 'identifier collision notification' to the two
senders."
"""

import random

import pytest

from repro.aff.driver import AffDriver
from repro.aff.instrumented import InstrumentedReceiver
from repro.aff.reassembler import Reassembler
from repro.aff.wire import FragmentCodec, NotifyFragment
from repro.core.identifiers import IdentifierSpace, ListeningSelector, UniformSelector
from repro.net.packets import Packet
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import Star


class TestWireFormat:
    def test_notify_round_trip(self):
        codec = FragmentCodec(id_bits=9)
        notify = NotifyFragment(identifier=300)
        assert codec.decode(codec.encode(notify)) == notify

    def test_notify_bits(self):
        assert FragmentCodec(id_bits=9).notify_bits == 2 + 9

    def test_identifier_out_of_space_rejected(self):
        with pytest.raises(ValueError):
            FragmentCodec(id_bits=4).encode_notify(NotifyFragment(identifier=16))


class TestReassemblerHook:
    def test_on_conflict_called_with_identifier(self):
        from repro.aff.fragmenter import Fragmenter

        conflicts = []
        reasm = Reassembler(on_conflict=conflicts.append)
        frag = Fragmenter(FragmentCodec(8), mtu_bytes=27)
        a = frag.fragment(b"A" * 60, identifier=7).fragments
        b = frag.fragment(b"B" * 60, identifier=7).fragments
        for f in [x for pair in zip(a, b) for x in pair]:
            reasm.accept(f, now=0.0)
        assert conflicts and set(conflicts) == {7}

    def test_no_hook_no_crash(self):
        from repro.aff.fragmenter import Fragmenter

        reasm = Reassembler()
        frag = Fragmenter(FragmentCodec(8), mtu_bytes=27)
        a = frag.fragment(b"A" * 60, identifier=7).fragments
        b = frag.fragment(b"B" * 60, identifier=7).fragments
        for f in [x for pair in zip(a, b) for x in pair]:
            reasm.accept(f, now=0.0)


class TestSelectorPoisoning:
    def test_note_collision_avoids_identifier(self):
        sel = ListeningSelector(IdentifierSpace(3), random.Random(1), fixed_window=0)
        sel.note_collision(5)
        picks = [sel.select() for _ in range(30)]
        assert 5 not in picks[: 2 * max(1, sel.avoid_window)]

    def test_poison_expires_after_selections(self):
        sel = ListeningSelector(IdentifierSpace(2), random.Random(2), fixed_window=1)
        sel.note_collision(3)
        ttl = max(4, 2 * sel.avoid_window)
        for _ in range(ttl):
            sel.select()
        assert 3 not in sel.poisoned()
        picks = {sel.select() for _ in range(100)}
        assert 3 in picks  # usable again

    def test_out_of_space_notification_ignored(self):
        sel = ListeningSelector(IdentifierSpace(2), random.Random(3))
        sel.note_collision(99)
        assert sel.poisoned() == set()
        assert sel.collisions_reported == 0

    def test_uniform_selector_ignores_notifications(self):
        sel = UniformSelector(IdentifierSpace(4), random.Random(4))
        sel.note_collision(3)  # no-op, must not raise
        assert 3 in {sel.select() for _ in range(200)}


class TestEndToEndNotification:
    def _hidden_star(self, notify):
        """Two hidden senders forced onto one identifier; hub notifies."""
        sim = Simulator()
        medium = BroadcastMedium(
            sim, Star(hub=2, leaves=[0, 1]), rf_collisions=False
        )
        receiver = InstrumentedReceiver(
            Radio(medium, 2), id_bits=4, notify_collisions=notify
        )

        class Scripted(ListeningSelector):
            def __init__(self, space, rng):
                super().__init__(space, rng, fixed_window=0)
                self.first = True

            def select(self):
                if self.first:
                    self.first = False
                    self.selections += 1
                    return 5  # both senders start on identifier 5
                return super().select()

        drivers = [
            AffDriver(
                Radio(medium, node),
                Scripted(IdentifierSpace(4), random.Random(10 + node)),
                listening=True,
            )
            for node in (0, 1)
        ]
        # Round 1: forced collision on identifier 5 (distinct payloads —
        # identical packets would be indistinguishable, hence no conflict).
        for d in drivers:
            marker = bytes([0xA0 + d.radio.node_id])
            d.send(Packet(payload=marker * 60, origin=d.radio.node_id))
        sim.run()
        return sim, drivers, receiver

    def test_receiver_broadcasts_on_conflict(self):
        _sim, drivers, receiver = self._hidden_star(notify=True)
        assert receiver.notifications_sent >= 1
        for d in drivers:
            assert d.stats.notifications_heard >= 1

    def test_senders_poisoned_after_notification(self):
        _sim, drivers, receiver = self._hidden_star(notify=True)
        for d in drivers:
            assert 5 in d.selector.poisoned()
            # Their next selections (within the poison TTL) avoid the
            # collided identifier even though they never heard each other
            # (hidden terminals).
            picks = [d.selector.select() for _ in range(4)]
            assert 5 not in picks

    def test_without_notification_no_poisoning(self):
        _sim, drivers, receiver = self._hidden_star(notify=False)
        assert receiver.notifications_sent == 0
        for d in drivers:
            assert d.selector.poisoned() == set()

    def test_driver_as_notifying_receiver(self):
        """AffDriver's own notify_collisions flag also broadcasts."""
        sim = Simulator()
        medium = BroadcastMedium(
            sim, Star(hub=2, leaves=[0, 1]), rf_collisions=False
        )

        class Fixed(ListeningSelector):
            def select(self):
                self.selections += 1
                return 5

        hub = AffDriver(
            Radio(medium, 2),
            UniformSelector(IdentifierSpace(4), random.Random(1)),
            notify_collisions=True,
        )
        senders = [
            AffDriver(
                Radio(medium, node),
                Fixed(IdentifierSpace(4), random.Random(node)),
                listening=True,
            )
            for node in (0, 1)
        ]
        for d in senders:
            marker = bytes([0xB0 + d.radio.node_id])
            d.send(Packet(payload=marker * 60, origin=d.radio.node_id))
        sim.run()
        assert hub.stats.notifications_sent >= 1
        assert hub.budget.transmitted("control") > 0
        for d in senders:
            assert 5 in d.selector.poisoned()


class TestCodebookClashNotification:
    def test_notification_recovers_clashed_bindings(self):
        from repro.experiments.scenarios import codebook_scenario

        plain = codebook_scenario(code_bits=6, reports=150, seed=4)
        notified = codebook_scenario(
            code_bits=6, reports=150, notify_clashes=True, seed=4
        )
        assert notified["undecodable"] < plain["undecodable"]

    def test_sender_drops_clashed_binding(self):
        import random as _random

        from repro.apps.codebook import CodebookReceiver, CodebookSender
        from repro.radio.medium import BroadcastMedium as _BM
        from repro.topology.graphs import FullMesh

        sim = Simulator()
        medium = _BM(sim, FullMesh(range(3)), rf_collisions=False)
        receiver = CodebookReceiver(
            sim, Radio(medium, 2, max_frame_bytes=255), code_bits=6,
            notify_clashes=True,
        )

        class Scripted(UniformSelector):
            def __init__(self, space, rng):
                super().__init__(space, rng)
                self.first = True

            def select(self):
                self.selections += 1
                if self.first:
                    self.first = False
                    return 9
                return super().select()

        senders = [
            CodebookSender(
                sim, Radio(medium, node, max_frame_bytes=255),
                Scripted(IdentifierSpace(6), _random.Random(node)),
            )
            for node in (0, 1)
        ]
        code_a = senders[0].report(b"attr-A", 1)
        code_b = senders[1].report(b"attr-B", 2)
        sim.run()
        assert code_a == code_b == 9
        assert receiver.clashes_notified == 1
        assert all(s.clashes_heard == 1 for s in senders)
        # Both senders dropped the clashed binding: the next report
        # rebinds with a fresh code and decodes again.
        new_code = senders[0].report(b"attr-A", 3)
        sim.run()
        assert new_code != 9
        assert receiver.stats.reports_correct >= 1
