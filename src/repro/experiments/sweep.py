"""Generic parameter sweeps with replication.

The benchmarks all share one shape: run a trial function over a grid of
parameter combinations, replicate each point over seeds, and aggregate a
scalar observable into mean ± stddev.  :func:`grid_sweep` factors that
shape out, so new experiments are a dictionary away::

    result = grid_sweep(
        lambda id_bits, seed: run_collision_trial(
            CollisionTrialConfig(id_bits=id_bits, seed=seed, duration=10.0)
        ).collision_loss_rate,
        grid={"id_bits": [3, 4, 5]},
        trials=5,
    )
    result.mean(id_bits=4)   # aggregated observable at that point

Points are evaluated deterministically: grid order is the cartesian
product in the order given, and replicate ``k`` of a point gets the
seed ``derive_seed(base_seed, f"trial:{point}:{k}")`` where ``point``
is the canonical JSON of the point's parameters (see
:mod:`repro.exec.keys`).  Seeds are therefore independent of evaluation
order and collision-free across points and base seeds — unlike the old
``base_seed + 1000*k`` convention, where ``(base=0, k=1)`` aliased
``(base=1000, k=0)`` and every grid point reused the same seed list.

Execution is delegated to :class:`repro.exec.TrialRunner`: pass
``runner=TrialRunner(workers=4, cache=ResultCache(...))`` to fan
replicates out across processes and/or reuse cached trial results.
Serial and parallel runs produce byte-identical :class:`SweepResult`\\ s.
A trial that fails (exception, timeout, crashed worker) contributes
``NaN`` — excluded from aggregation — instead of killing the sweep; the
structured failure records live in the runner's telemetry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .. import __version__
from ..exec import TrialRunner, TrialSpec, canonical_point, derive_trial_seed, trial_key
from ..exec.keys import function_name
from .results import Table, aggregate_trials

__all__ = ["SweepPoint", "SweepResult", "grid_sweep"]


@dataclass
class SweepPoint:
    """One evaluated grid point."""

    params: Dict[str, Any]
    values: List[float]
    mean: float
    stdev: float


@dataclass
class SweepResult:
    """All points of a sweep, queryable by parameter values."""

    axes: List[str]
    points: List[SweepPoint] = field(default_factory=list)

    def point(self, **params: Any) -> SweepPoint:
        """The point whose parameters match ``params`` exactly."""
        for point in self.points:
            if all(point.params.get(k) == v for k, v in params.items()):
                return point
        raise KeyError(f"no sweep point matching {params!r}")

    def mean(self, **params: Any) -> float:
        return self.point(**params).mean

    def stdev(self, **params: Any) -> float:
        return self.point(**params).stdev

    def series(self, x_axis: str, **fixed: Any):
        """Extract an (x, mean, stdev) series along one axis."""
        from .results import Series

        out = Series(label=", ".join(f"{k}={v}" for k, v in fixed.items()) or x_axis)
        for point in self.points:
            if all(point.params.get(k) == v for k, v in fixed.items()):
                out.append(point.params[x_axis], point.mean, yerr=point.stdev)
        return out

    def to_table(self, title: str, value_name: str = "value") -> Table:
        table = Table(title, self.axes + [f"{value_name} mean", "stdev", "n"])
        for point in self.points:
            table.add_row(
                *[point.params[axis] for axis in self.axes],
                point.mean,
                point.stdev,
                len(point.values),
            )
        return table


def grid_sweep(
    trial_fn: Callable[..., float],
    grid: Mapping[str, Sequence[Any]],
    trials: int = 1,
    base_seed: int = 0,
    seed_param: str = "seed",
    runner: Optional[TrialRunner] = None,
) -> SweepResult:
    """Evaluate ``trial_fn`` over the cartesian grid with replication.

    Parameters
    ----------
    trial_fn:
        Called as ``trial_fn(**params, seed=...)``; must return a float
        observable (NaN replicates are excluded from aggregation).
    grid:
        Mapping of parameter name -> values to sweep.
    trials:
        Replicates per point; replicate ``k`` receives
        ``derive_seed(base_seed, f"trial:{point}:{k}")`` as its seed.
    seed_param:
        Name of the seed keyword (set to None-like '' to disable seeding
        for deterministic trial functions).
    runner:
        A :class:`repro.exec.TrialRunner` for parallel/cached execution;
        defaults to a serial, uncached one.  The result is identical
        regardless of worker count.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if not grid:
        raise ValueError("grid must have at least one axis")
    runner = runner if runner is not None else TrialRunner()
    axes = list(grid)
    result = SweepResult(axes=axes)

    specs: List[TrialSpec] = []
    point_params: List[Dict[str, Any]] = []
    for combo in itertools.product(*(grid[axis] for axis in axes)):
        params = dict(zip(axes, combo))
        point_params.append(params)
        point = canonical_point(params)
        for k in range(trials):
            kwargs = dict(params)
            seed = None
            if seed_param:
                seed = derive_trial_seed(base_seed, point, k)
                kwargs[seed_param] = seed
            key = None
            if runner.cache is not None:
                key = trial_key(function_name(trial_fn), kwargs, seed, __version__)
            specs.append(
                TrialSpec(
                    fn=trial_fn,
                    kwargs=kwargs,
                    label=f"{point}#{k}",
                    cache_key=key,
                )
            )

    outcomes = runner.run(specs)
    for i, params in enumerate(point_params):
        slot = outcomes[i * trials : (i + 1) * trials]
        values = [
            float(o.value) if o.ok else float("nan") for o in slot
        ]
        mean, stdev = aggregate_trials(values)
        result.points.append(
            SweepPoint(params=params, values=values, mean=mean, stdev=stdev)
        )
    return result
