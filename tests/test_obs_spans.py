"""Tests for span profiling (repro.obs.spans).

Covers the aggregation arithmetic (SpanStats, cross-process merge), the
layer-bucket folding that feeds telemetry and bench-trend, and the
module-level activation slot (``profiling`` / ``span`` no-op when off).
"""

import pytest

from repro.obs.spans import (
    LAYER_BUCKETS,
    SpanProfiler,
    SpanStats,
    active_profiler,
    layer_breakdown,
    layer_of_module,
    profiling,
    span,
)


class TestSpanStats:
    def test_accumulates_count_total_min_max(self):
        stats = SpanStats()
        for seconds in (0.2, 0.1, 0.4):
            stats.add(seconds)
        assert stats.count == 3
        assert stats.total == pytest.approx(0.7)
        assert stats.min == 0.1
        assert stats.max == 0.4

    def test_to_json_empty_has_zero_min(self):
        assert SpanStats().to_json() == {
            "count": 0.0, "total": 0.0, "min": 0.0, "max": 0.0,
        }


class TestSpanProfiler:
    def test_span_context_books_time(self):
        prof = SpanProfiler()
        with prof.span("core.sample"):
            pass
        ((name, stats),) = prof.top(5)
        assert name == "core.sample"
        assert stats.count == 1
        assert stats.total >= 0.0

    def test_top_ranks_by_total_then_name(self):
        prof = SpanProfiler()
        prof.add("b.slow", 2.0)
        prof.add("a.fast", 0.5)
        prof.add("a.also", 2.0)
        assert [name for name, _ in prof.top(2)] == ["a.also", "b.slow"]

    def test_merge_folds_worker_tables(self):
        worker = SpanProfiler()
        worker.add("exec.trial", 1.0)
        worker.add("exec.trial", 3.0)
        parent = SpanProfiler()
        parent.add("exec.trial", 2.0)
        parent.merge(worker.to_json())
        ((_, stats),) = parent.top(1)
        assert stats.count == 3
        assert stats.total == pytest.approx(6.0)
        assert stats.min == 1.0 and stats.max == 3.0

    def test_merge_skips_empty_entries(self):
        prof = SpanProfiler()
        prof.merge({"idle": {"count": 0.0, "total": 0.0, "min": 0.0, "max": 0.0}})
        assert prof.to_json() == {"idle": {
            "count": 0.0, "total": 0.0, "min": 0.0, "max": 0.0,
        }}

    def test_to_json_is_name_sorted(self):
        prof = SpanProfiler()
        prof.add("z.last", 1.0)
        prof.add("a.first", 1.0)
        assert list(prof.to_json()) == ["a.first", "z.last"]


class TestLayerBreakdown:
    def test_buckets_always_present_and_folded(self):
        prof = SpanProfiler()
        prof.add("radio.transmit", 0.25)
        prof.add("radio.dispatch", 0.25)
        prof.add("core.sample", 1.0)
        breakdown = prof.layer_breakdown()
        for bucket in LAYER_BUCKETS:
            assert bucket in breakdown
        assert breakdown["radio"] == pytest.approx(0.5)
        assert breakdown["core"] == pytest.approx(1.0)
        assert breakdown["aff"] == 0.0

    def test_module_prefixes_map_most_specific_first(self):
        assert layer_of_module("repro.radio.mac") == "mac"
        assert layer_of_module("repro.radio.medium") == "radio"
        assert layer_of_module("repro.aff.reassembler") == "aff"
        assert layer_of_module("repro.sim.engine") == "engine"
        assert layer_of_module("somewhere.else") == "other"

    def test_breakdown_from_plain_table(self):
        table = {"mac.dispatch": {"count": 2.0, "total": 0.75}}
        assert layer_breakdown(table)["mac"] == 0.75


class TestActivationSlot:
    def test_off_by_default_and_span_is_noop(self):
        assert active_profiler() is None
        with span("core.sample"):  # must not raise, must not record
            pass
        assert active_profiler() is None

    def test_profiling_installs_and_restores(self):
        prof = SpanProfiler()
        with profiling(prof) as active:
            assert active is prof
            assert active_profiler() is prof
            with span("core.sample"):
                pass
        assert active_profiler() is None
        assert "core.sample" in prof.to_json()

    def test_profiling_nests(self):
        outer, inner = SpanProfiler(), SpanProfiler()
        with profiling(outer):
            with profiling(inner):
                assert active_profiler() is inner
            assert active_profiler() is outer
