"""Project call graph over resolved function references.

Built on :class:`~repro.analysis.symbols.ProjectContext`: one node per
known function/method, one edge per call whose target the symbol table
can resolve to a project-local definition.  Calls that do not resolve
(stdlib, third-party, instance methods) simply produce no edge — the
graph under-approximates calls into the outside world and
over-approximates nothing, which is the right polarity for
reachability-style rules ("is any impure function reachable from
``trial_key``?"): a missing edge can hide a finding but never invent
one.

Nested ``def``s are attributed to their enclosing top-level function:
their call sites count as the outer function's, matching how purity
leaks in practice (the closure runs under the outer frame).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from .symbols import ProjectContext

__all__ = ["CallGraph", "build_callgraph"]


@dataclass
class CallGraph:
    """Directed call edges between project function refs."""

    #: caller ref -> set of resolved callee refs
    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def callees(self, ref: str) -> Set[str]:
        return self.edges.get(ref, set())

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every ref transitively callable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        frontier: List[str] = [root for root in roots if root in self.edges]
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def path_from(self, roots: Iterable[str], target: str) -> Optional[List[str]]:
        """A shortest root->target call chain, for finding messages."""
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for root in roots:
            if root in self.edges and root not in parents:
                parents[root] = None
                frontier.append(root)
        index = 0
        while index < len(frontier):
            current = frontier[index]
            index += 1
            if current == target:
                chain: List[str] = []
                node: Optional[str] = current
                while node is not None:
                    chain.append(node)
                    node = parents[node]
                return list(reversed(chain))
            for callee in sorted(self.edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return None


def build_callgraph(project: ProjectContext) -> CallGraph:
    """Resolve every call site in every known function into edges."""
    graph = CallGraph()
    for info in project.functions():
        module = project.modules[info.module]
        callees: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                ref = project.resolve_call(module, node.func)
                if ref is not None and ref != info.ref:
                    callees.add(ref)
        graph.edges[info.ref] = callees
    return graph
