"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The paper's claims are counted claims — collisions per identifier
width, checksum-detected losses, frame escalations — so the metrics
layer is built for *bit-identical aggregation*, not wall-clock
telemetry:

* **counters** are monotone integers (integer addition commutes, so
  merge order across workers cannot change a total);
* **gauges** are integer high-watermarks merged by ``max`` (also
  order-independent);
* **histograms** carry *declared* constant bucket edges and integer
  bucket counts only — no float sums, so there is no float-ordering
  sensitivity anywhere in the registry.

The activation slot mirrors :mod:`.spans`: :func:`collecting` installs
a :class:`MetricsRegistry` for the dynamic extent of a run, and the
module-level :func:`inc` / :func:`gauge_max` / :func:`observe` hooks
are no-ops when no registry is active, so instrumented hot paths cost
one global read when metrics are off.

Like :mod:`.spans`, this module imports nothing from the rest of the
package at module scope — the simulation kernel imports it, and the
envelope/exec layers sit *above* the kernel.  Serialization helpers
defer their envelope imports to call time.

Snapshots are canonical JSONL (one sorted metric per line between a
header and a footer, same framing discipline as trace envelopes), so
``cmp`` on two snapshot files is a meaningful determinism check; see
``repro metrics {show,export,diff}``.
"""

from __future__ import annotations

import json
import os
import pathlib
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "MetricsReadError",
    "MetricsRegistry",
    "SNAPSHOT_KIND",
    "SNAPSHOT_SCHEMA",
    "active_metrics",
    "collecting",
    "diff_registries",
    "gauge_max",
    "inc",
    "observe",
    "read_snapshot",
    "render_prometheus",
    "write_snapshot",
]

#: Envelope kind stamped into snapshot headers.
SNAPSHOT_KIND = "repro.obs/metrics"

#: Bumped only when the line format changes incompatibly.
SNAPSHOT_SCHEMA = 1

Number = Union[int, float]


class MetricsReadError(Exception):
    """A metrics snapshot could not be parsed."""


def _check_edges(name: str, edges: Sequence[Number]) -> Tuple[Number, ...]:
    """Validate declared histogram edges: finite, strictly increasing."""
    result = tuple(edges)
    if not result:
        raise ValueError(f"histogram {name!r}: bucket edges must be non-empty")
    previous: Optional[Number] = None
    for edge in result:
        if isinstance(edge, bool) or not isinstance(edge, (int, float)):
            raise ValueError(
                f"histogram {name!r}: edge {edge!r} is not a number"
            )
        if isinstance(edge, float) and (edge != edge or edge in (
            float("inf"), float("-inf")
        )):
            raise ValueError(f"histogram {name!r}: edge {edge!r} is not finite")
        if previous is not None and not edge > previous:
            raise ValueError(
                f"histogram {name!r}: edges must be strictly increasing "
                f"({previous!r} >= {edge!r})"
            )
        previous = edge
    return result


class MetricsRegistry:
    """Append-only store of counters, gauges and fixed-edge histograms.

    One name has exactly one kind for the registry's lifetime; re-using
    a counter name as a gauge (or re-declaring a histogram with
    different edges) raises ``ValueError`` instead of silently forking
    the metric.
    """

    def __init__(self) -> None:
        self._kinds: Dict[str, str] = {}
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, int] = {}
        #: name -> (declared edges, per-bucket counts; len(edges)+1 long,
        #: the last bucket is the overflow bucket).
        self._histograms: Dict[str, Tuple[Tuple[Number, ...], List[int]]] = {}

    # -- recording -----------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        existing = self._kinds.get(name)
        if existing is None:
            self._kinds[name] = kind
        elif existing != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{existing}, not a {kind}"
            )

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (a non-negative int) to counter ``name``."""
        if isinstance(amount, bool) or not isinstance(amount, int):
            raise ValueError(f"counter {name!r}: amount must be an int")
        if amount < 0:
            raise ValueError(
                f"counter {name!r}: counters are monotone (amount {amount})"
            )
        self._claim(name, "counter")
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge_max(self, name: str, value: int) -> None:
        """Raise gauge ``name`` to ``value`` if that is a new high-water."""
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"gauge {name!r}: value must be an int")
        self._claim(name, "gauge")
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def observe(
        self, name: str, value: Number, edges: Sequence[Number]
    ) -> None:
        """Count ``value`` into histogram ``name`` with declared ``edges``.

        A value lands in the first bucket whose edge is >= the value;
        values above the last edge land in the overflow bucket.  The
        edges are part of the metric's identity: observing with a
        different edge tuple is an error, never a silent re-bucketing.
        """
        self._claim(name, "histogram")
        existing = self._histograms.get(name)
        if existing is None:
            declared = _check_edges(name, edges)
            counts = [0] * (len(declared) + 1)
            self._histograms[name] = (declared, counts)
        else:
            declared, counts = existing
            if tuple(edges) != declared:
                raise ValueError(
                    f"histogram {name!r}: declared edges {declared!r} "
                    f"do not match {tuple(edges)!r}"
                )
        index = len(declared)
        for i, edge in enumerate(declared):
            if value <= edge:
                index = i
                break
        counts[index] += 1

    # -- reading -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._kinds)

    def names(self) -> List[str]:
        return sorted(self._kinds)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> int:
        return self._gauges.get(name, 0)

    def histogram(
        self, name: str
    ) -> Optional[Tuple[Tuple[Number, ...], List[int]]]:
        entry = self._histograms.get(name)
        if entry is None:
            return None
        edges, counts = entry
        return edges, list(counts)

    def to_json(self) -> Dict[str, Dict[str, Any]]:
        """Canonical JSON table: ``{name: {kind, value | edges+buckets}}``.

        This is the wire form carried in worker result messages and the
        per-line form of snapshot files; :meth:`merge_json` consumes it.
        """
        from .envelope import canonical_number

        table: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            kind = self._kinds[name]
            if kind == "counter":
                table[name] = {"kind": kind, "value": self._counters.get(name, 0)}
            elif kind == "gauge":
                table[name] = {"kind": kind, "value": self._gauges.get(name, 0)}
            else:
                edges, counts = self._histograms[name]
                table[name] = {
                    "kind": kind,
                    "edges": [canonical_number(edge) for edge in edges],
                    "buckets": list(counts),
                }
        return table

    # -- merging -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (sum / max / bucketwise sum)."""
        for name, value in other._counters.items():
            self.inc(name, value)
        for name, value in other._gauges.items():
            self.gauge_max(name, value)
        for name, (edges, counts) in other._histograms.items():
            self._merge_histogram(name, edges, counts)

    def merge_json(self, table: Dict[str, Any]) -> None:
        """Fold a :meth:`to_json` table (e.g. from a worker message)."""
        for name in sorted(table):
            entry = table[name]
            if not isinstance(entry, dict):
                raise ValueError(f"metric {name!r}: malformed entry {entry!r}")
            kind = entry.get("kind")
            if kind == "counter":
                self.inc(name, int(entry.get("value", 0)))
            elif kind == "gauge":
                self.gauge_max(name, int(entry.get("value", 0)))
            elif kind == "histogram":
                edges = tuple(
                    _decode_edge(edge) for edge in entry.get("edges", ())
                )
                counts = [int(c) for c in entry.get("buckets", ())]
                self._merge_histogram(name, edges, counts)
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")

    def _merge_histogram(
        self, name: str, edges: Sequence[Number], counts: Sequence[int]
    ) -> None:
        self._claim(name, "histogram")
        existing = self._histograms.get(name)
        if existing is None:
            declared = _check_edges(name, edges)
            if len(counts) != len(declared) + 1:
                raise ValueError(
                    f"histogram {name!r}: {len(counts)} buckets for "
                    f"{len(declared)} edges"
                )
            self._histograms[name] = (declared, [int(c) for c in counts])
            return
        declared, mine = existing
        if tuple(edges) != declared:
            raise ValueError(
                f"histogram {name!r}: cannot merge edges {tuple(edges)!r} "
                f"into {declared!r}"
            )
        if len(counts) != len(mine):
            raise ValueError(
                f"histogram {name!r}: bucket count mismatch "
                f"({len(counts)} vs {len(mine)})"
            )
        for i, c in enumerate(counts):
            mine[i] += int(c)


def _decode_edge(edge: Any) -> Number:
    """Invert :func:`repro.obs.envelope.canonical_number` for edges."""
    if isinstance(edge, dict):
        tagged = edge.get("__float__")
        if isinstance(tagged, str):
            return float(tagged)
        raise ValueError(f"malformed histogram edge {edge!r}")
    if isinstance(edge, bool) or not isinstance(edge, (int, float)):
        raise ValueError(f"malformed histogram edge {edge!r}")
    return edge


# -- module activation slot (mirrors obs.spans) ------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def active_metrics() -> Optional[MetricsRegistry]:
    """The registry installed by :func:`collecting`, or ``None``."""
    return _ACTIVE


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (or a fresh one) for the ``with`` body."""
    global _ACTIVE
    installed = registry if registry is not None else MetricsRegistry()
    previous = _ACTIVE
    _ACTIVE = installed
    try:
        yield installed
    finally:
        _ACTIVE = previous


def inc(name: str, amount: int = 1) -> None:
    """Count into the active registry; no-op when metrics are off."""
    if _ACTIVE is not None:
        _ACTIVE.inc(name, amount)


def gauge_max(name: str, value: int) -> None:
    """High-watermark into the active registry; no-op when off."""
    if _ACTIVE is not None:
        _ACTIVE.gauge_max(name, value)


def observe(name: str, value: Number, edges: Sequence[Number]) -> None:
    """Histogram-observe into the active registry; no-op when off."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value, edges)


# -- snapshots ---------------------------------------------------------


def _canonical_line(record: Dict[str, Any]) -> str:
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def write_snapshot(
    path: Union[str, "os.PathLike[str]"],
    registry: MetricsRegistry,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a canonical JSONL snapshot; returns the metric count.

    Byte layout: a header line, one line per metric in sorted-name
    order, a footer with the metric count.  Two runs that produced the
    same counts produce the same bytes, so snapshot files can be
    compared with ``cmp`` (and are, in CI).
    """
    from .. import __version__

    table = registry.to_json()
    target = pathlib.Path(path)
    tmp = target.with_name(target.name + ".tmp")
    lines = [
        _canonical_line(
            {
                "kind": SNAPSHOT_KIND,
                "schema": SNAPSHOT_SCHEMA,
                "writer": __version__,
                "meta": meta or {},
            }
        )
    ]
    for name in sorted(table):
        entry = dict(table[name])
        entry["name"] = name
        lines.append(_canonical_line(entry))
    lines.append(_canonical_line({"end": True, "metrics": len(table)}))
    tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
    os.replace(tmp, target)
    return len(table)


def read_snapshot(
    path: Union[str, "os.PathLike[str]"]
) -> Tuple[MetricsRegistry, Dict[str, Any]]:
    """Parse a snapshot back into a registry; returns (registry, meta)."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line]
    if not lines:
        raise MetricsReadError(f"{path}: empty metrics snapshot")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise MetricsReadError(f"{path}: malformed header: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != SNAPSHOT_KIND:
        raise MetricsReadError(
            f"{path}: not a {SNAPSHOT_KIND} snapshot "
            f"(header {lines[0][:80]!r})"
        )
    if header.get("schema") != SNAPSHOT_SCHEMA:
        raise MetricsReadError(
            f"{path}: unsupported schema {header.get('schema')!r}"
        )
    meta = header.get("meta")
    if not isinstance(meta, dict):
        meta = {}
    registry = MetricsRegistry()
    seen = 0
    closed = False
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MetricsReadError(
                f"{path}:{lineno}: malformed line: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise MetricsReadError(f"{path}:{lineno}: not an object")
        if record.get("end") is True:
            if record.get("metrics") != seen:
                raise MetricsReadError(
                    f"{path}: footer claims {record.get('metrics')} "
                    f"metric(s), read {seen}"
                )
            closed = True
            continue
        if closed:
            raise MetricsReadError(f"{path}:{lineno}: data after footer")
        name = record.get("name")
        if not isinstance(name, str):
            raise MetricsReadError(f"{path}:{lineno}: metric without a name")
        try:
            registry.merge_json({name: record})
        except ValueError as exc:
            raise MetricsReadError(f"{path}:{lineno}: {exc}") from exc
        seen += 1
    if not closed:
        raise MetricsReadError(f"{path}: truncated snapshot (no footer)")
    return registry, meta


# -- Prometheus text export --------------------------------------------


def _prometheus_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prometheus_edge(edge: Number) -> str:
    if isinstance(edge, float):
        return repr(edge)
    return str(edge)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    ``_sum`` series are deliberately absent: the registry tracks no
    float sums (by design — see the module docstring), and Prometheus
    treats a histogram without ``_sum`` as valid.
    """
    out: List[str] = []
    table = registry.to_json()
    for name in sorted(table):
        entry = table[name]
        kind = entry["kind"]
        flat = _prometheus_name(name)
        if kind == "counter":
            out.append(f"# TYPE {flat}_total counter")
            out.append(f"{flat}_total {entry['value']}")
        elif kind == "gauge":
            out.append(f"# TYPE {flat} gauge")
            out.append(f"{flat} {entry['value']}")
        else:
            edges = [_decode_edge(edge) for edge in entry["edges"]]
            buckets = [int(b) for b in entry["buckets"]]
            out.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for edge, count in zip(edges, buckets[:-1]):
                cumulative += count
                out.append(
                    f'{flat}_bucket{{le="{_prometheus_edge(edge)}"}} '
                    f"{cumulative}"
                )
            cumulative += buckets[-1]
            out.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
            out.append(f"{flat}_count {cumulative}")
    return "\n".join(out) + ("\n" if out else "")


# -- diff --------------------------------------------------------------


def _layer_of(name: str) -> str:
    return name.split(".", 1)[0]


def diff_registries(
    left: MetricsRegistry,
    right: MetricsRegistry,
    include_exec: bool = False,
) -> List[str]:
    """Human-readable differences between two registries.

    ``exec.*`` metrics are excluded by default: they count the
    *decomposition* of a run (trials dispatched, cache traffic), which
    legitimately differs between a serial in-process run and a sharded
    one even when every simulated count agrees.  Pass ``include_exec``
    to compare them anyway (meaningful when both sides used the same
    decomposition).
    """
    lines: List[str] = []
    left_table = left.to_json()
    right_table = right.to_json()
    names = sorted(set(left_table) | set(right_table))
    for name in names:
        if not include_exec and _layer_of(name) == "exec":
            continue
        a = left_table.get(name)
        b = right_table.get(name)
        if a is None:
            lines.append(f"only in right: {name} ({_describe(b)})")
        elif b is None:
            lines.append(f"only in left: {name} ({_describe(a)})")
        elif a != b:
            lines.append(f"{name}: left {_describe(a)} != right {_describe(b)}")
    return lines


def _describe(entry: Optional[Dict[str, Any]]) -> str:
    if entry is None:
        return "absent"
    if entry["kind"] == "histogram":
        return f"histogram buckets={entry['buckets']}"
    return f"{entry['kind']} {entry['value']}"
