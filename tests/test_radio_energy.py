"""Unit tests for the energy model."""

import pytest

from repro.radio.energy import (
    RPC_PROFILE,
    WIFI_LIKE_PROFILE,
    EnergyMeter,
    EnergyModel,
)


class TestEnergyModel:
    def test_frame_costs_include_overhead(self):
        model = EnergyModel(
            tx_per_bit=1.0, rx_per_bit=0.5, per_frame_overhead_bits=10
        )
        assert model.frame_tx_cost(100) == pytest.approx(110.0)
        assert model.frame_rx_cost(100) == pytest.approx(55.0)

    def test_profiles_differ_in_overhead(self):
        assert (
            WIFI_LIKE_PROFILE.per_frame_overhead_bits
            > RPC_PROFILE.per_frame_overhead_bits
        )

    def test_saved_header_bits_matter_less_under_wifi_overhead(self):
        """Section 4.4: AFF's bit savings wash out under heavy MAC overhead."""
        bits_aff, bits_static = 9 + 16, 32 + 16  # header+data per packet
        saving_rpc = 1 - RPC_PROFILE.frame_tx_cost(bits_aff) / RPC_PROFILE.frame_tx_cost(
            bits_static
        )
        saving_wifi = 1 - WIFI_LIKE_PROFILE.frame_tx_cost(
            bits_aff
        ) / WIFI_LIKE_PROFILE.frame_tx_cost(bits_static)
        assert saving_rpc > 4 * saving_wifi


class TestEnergyMeter:
    def test_accumulates_tx_rx_listen(self):
        meter = EnergyMeter(EnergyModel(tx_per_bit=1.0, rx_per_bit=1.0,
                                        listen_per_second=2.0,
                                        per_frame_overhead_bits=0))
        meter.charge_tx(10)
        meter.charge_rx(20)
        meter.charge_listen(3.0)
        assert meter.tx_joules == pytest.approx(10.0)
        assert meter.rx_joules == pytest.approx(20.0)
        assert meter.listen_joules == pytest.approx(6.0)
        assert meter.total_joules == pytest.approx(36.0)
        assert meter.frames_sent == 1
        assert meter.frames_received == 1

    def test_negative_listen_time_rejected(self):
        meter = EnergyMeter(RPC_PROFILE)
        with pytest.raises(ValueError):
            meter.charge_listen(-1.0)
