"""Tiny constant folder for module-level integer constants.

The wire-format rules cross-check ``BitWriter.write`` widths against
declared maxima like ``MAX_PACKET_BYTES = (1 << _LENGTH_BITS) - 1``.
That only needs integer arithmetic over module-level ``NAME = <expr>``
assignments — no control flow, no calls — so this folder handles
exactly that and returns ``None`` for anything else.
"""

from __future__ import annotations

import ast
from typing import Dict, Mapping, Optional

__all__ = ["collect_module_constants", "fold_int"]

_MAX_SHIFT = 1 << 16  # refuse absurd shifts; this is a linter, not a VM


def fold_int(node: ast.AST, env: Mapping[str, int]) -> Optional[int]:
    """Evaluate ``node`` to an ``int`` if it is a constant expression.

    Supports integer literals, names bound in ``env``, unary ``+ - ~``,
    the binary operators ``+ - * // % << >> | & ^ **``, and ``min`` /
    ``max`` over two or more foldable arguments.  Returns ``None``
    (never raises) when the expression is not statically an integer.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            return None
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp):
        operand = fold_int(node.operand, env)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Invert):
            return ~operand
        return None
    if isinstance(node, ast.BinOp):
        left = fold_int(node.left, env)
        right = fold_int(node.right, env)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            if isinstance(node.op, ast.LShift):
                if right > _MAX_SHIFT or right < 0:
                    return None
                return left << right
            if isinstance(node.op, ast.RShift):
                if right < 0:
                    return None
                return left >> right
            if isinstance(node.op, ast.BitOr):
                return left | right
            if isinstance(node.op, ast.BitAnd):
                return left & right
            if isinstance(node.op, ast.BitXor):
                return left ^ right
            if isinstance(node.op, ast.Pow):
                if right > 64 or right < 0:
                    return None
                return int(left**right)
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    if isinstance(node, ast.Call):
        # ``min``/``max`` over explicit arguments; the interval engine
        # (:mod:`.ranges`) must agree with this folding on point inputs,
        # which a test pins.  Single-argument forms take an iterable and
        # are not foldable; keywords (``key=``/``default=``) change the
        # semantics, so their presence disables folding.
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("min", "max")
            and len(node.args) >= 2
            and not node.keywords
            and not any(isinstance(arg, ast.Starred) for arg in node.args)
        ):
            folded = [fold_int(arg, env) for arg in node.args]
            values = [value for value in folded if value is not None]
            if len(values) == len(folded):
                return min(values) if func.id == "min" else max(values)
    return None


def collect_module_constants(tree: ast.Module) -> Dict[str, int]:
    """Fold every top-level ``NAME = <const int expr>`` in order.

    Later definitions see earlier ones, matching Python's execution
    order, so chains like ``_LENGTH_BITS = 16`` followed by
    ``MAX_PACKET_BYTES = (1 << _LENGTH_BITS) - 1`` fold fully.
    """
    env: Dict[str, int] = {}
    for stmt in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        folded = fold_int(value, env)
        if folded is not None:
            env[target.id] = folded
    return env
