"""SARIF 2.1.0 serialisation of a lint report.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca of code-scanning UIs — GitHub's code-scanning tab, VS Code's
SARIF viewer, most CI dashboards.  Emitting it costs one JSON shape
and buys every one of those surfaces for free, so ``python -m
repro.lint --sarif out.sarif`` writes one alongside the normal output.

The mapping is deliberately minimal: one ``run``, one ``result`` per
finding, the rule catalogue under ``tool.driver.rules``, and the
baseline fingerprint as a ``partialFingerprints`` entry so downstream
tools can track a finding across commits exactly like our own baseline
does (the fingerprint hashes the flagged line's content, not its
number).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .core import LintReport, ProjectRule, Rule

__all__ = ["to_sarif", "write_sarif", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"
_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: partialFingerprints key; bump if the fingerprint recipe changes.
_FINGERPRINT_KEY = "reproLint/v1"

RuleLike = Union[Rule, ProjectRule]


_HELP_DOC = "docs/static-analysis.md"


def to_sarif(
    report: LintReport,
    rules: Sequence[RuleLike],
    properties: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The SARIF document for ``report`` as a JSON-ready dict.

    ``properties``, when given, becomes the run's ``properties`` bag —
    informational payloads like the value-range proof ledger ride along
    without becoming results (they never affect exit codes or
    code-scanning alerts).
    """
    rule_descriptors: List[Dict[str, Any]] = []
    rule_index: Dict[str, int] = {}
    level_by_id: Dict[str, str] = {}
    for rule in sorted(rules, key=lambda r: r.rule_id):
        if rule.rule_id in rule_index:
            continue
        rule_index[rule.rule_id] = len(rule_descriptors)
        level_by_id[rule.rule_id] = rule.level
        descriptor: Dict[str, Any] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": rule.level},
        }
        if rule.help_anchor:
            descriptor["helpUri"] = f"{_HELP_DOC}#{rule.help_anchor}"
        rule_descriptors.append(descriptor)

    results: List[Dict[str, Any]] = []
    for finding in report.findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": level_by_id.get(finding.rule_id, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {_FINGERPRINT_KEY: finding.fingerprint()},
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)

    notifications: List[Dict[str, Any]] = [
        {
            "level": "error",
            "message": {"text": f"{path}: {message}"},
        }
        for path, message in report.errors
    ]

    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "repro.lint",
                "informationUri": _HELP_DOC,
                "rules": rule_descriptors,
            }
        },
        "results": results,
        "invocations": [
            {
                "executionSuccessful": not report.errors,
                "toolExecutionNotifications": notifications,
            }
        ],
    }
    if properties:
        run["properties"] = properties
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def write_sarif(
    path: Path,
    report: LintReport,
    rules: Sequence[RuleLike],
    properties: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the SARIF document for ``report`` to ``path``."""
    document = to_sarif(report, rules, properties=properties)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
