"""Packet structures, checksums, and reassembly machinery."""

from .checksum import (
    ChecksumFn,
    checksum_by_name,
    crc16_ccitt,
    fletcher16,
    internet_checksum,
)
from .packets import BitBudget, Packet, next_packet_seq
from .reassembly import PartialPacket, ReassemblyBuffer, ReassemblyStats

__all__ = [
    "BitBudget",
    "ChecksumFn",
    "Packet",
    "PartialPacket",
    "ReassemblyBuffer",
    "ReassemblyStats",
    "checksum_by_name",
    "crc16_ccitt",
    "fletcher16",
    "internet_checksum",
    "next_packet_seq",
]
