"""Unit tests for interest reinforcement over RETRI identifiers."""

import random

import pytest

from repro.apps.interest import InterestSink, InterestSource
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


class _ScriptedSelector(UniformSelector):
    def __init__(self, space, values):
        super().__init__(space, random.Random(0))
        self._values = list(values)

    def select(self):
        self.selections += 1
        if self._values:
            return self._values.pop(0)
        return super().select()


def build(n_sources=2, id_bits=8, scripted=None, interest_fn=None, epoch=1000.0):
    sim = Simulator()
    medium = BroadcastMedium(
        sim, FullMesh(range(n_sources + 1)), rf_collisions=False
    )
    sink = InterestSink(
        sim, Radio(medium, n_sources), id_bits=id_bits, interest_fn=interest_fn
    )
    sources = []
    for node in range(n_sources):
        space = IdentifierSpace(id_bits)
        if scripted is not None:
            selector = _ScriptedSelector(space, scripted[node])
        else:
            selector = UniformSelector(space, random.Random(node))
        source = InterestSource(
            sim,
            Radio(medium, node),
            selector,
            epoch=epoch,
            base_interval=1.0,
            rng=random.Random(100 + node),
        )
        sources.append(source)
    return sim, sources, sink


class TestReinforcementLoop:
    def test_feedback_reaches_the_right_source(self):
        sim, sources, sink = build(scripted=[[3], [7]])
        for s in sources:
            s.start()
        sim.run(until=20.0)
        for s in sources:
            assert s.stats.readings_sent > 0
            assert s.stats.reinforcements_received > 0
            assert s.stats.reinforcements_misdirected == 0
            assert s.stats.reinforcements_correct == s.stats.reinforcements_received

    def test_reinforcement_speeds_up_reporting(self):
        sim, sources, sink = build(scripted=[[3]], n_sources=1)
        sources[0].start()
        sim.run(until=30.0)
        # Constant reinforcement drives the interval to the floor.
        assert sources[0].interval == pytest.approx(sources[0].min_interval)

    def test_uninterested_sink_sends_no_feedback(self):
        sim, sources, sink = build(
            scripted=[[3]], n_sources=1, interest_fn=lambda r: False
        )
        sources[0].start()
        sim.run(until=20.0)
        assert sink.feedback_sent == 0
        assert sources[0].stats.reinforcements_received == 0
        # Interval decays back toward (and stays at) the base.
        assert sources[0].interval == pytest.approx(sources[0].base_interval)

    def test_identifier_collision_misdirects_feedback(self):
        """Two sources on the same identifier: each receives the other's
        reinforcements too — the app-level collision cost."""
        sim, sources, sink = build(scripted=[[5], [5]])
        for s in sources:
            s.start()
        sim.run(until=20.0)
        total_mis = sum(s.stats.reinforcements_misdirected for s in sources)
        assert total_mis > 0

    def test_epoch_rotation_changes_identifier(self):
        sim, sources, sink = build(n_sources=1, epoch=2.0)
        source = sources[0]
        source.start()
        seen = set()

        def sample():
            seen.add(source.current_identifier)
            sim.schedule(1.0, sample)

        sim.schedule(0.5, sample)
        sim.run(until=40.0)
        assert len(seen) > 1  # fresh identifiers across epochs

    def test_static_identifier_mode_never_rotates(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False)
        InterestSink(sim, Radio(medium, 1), id_bits=8)
        source = InterestSource(
            sim,
            Radio(medium, 0),
            UniformSelector(IdentifierSpace(8), random.Random(1)),
            epoch=1.0,
            static_identifier=42,
            rng=random.Random(2),
        )
        source.start()
        sim.run(until=10.0)
        assert source.current_identifier == 42

    def test_stop_halts_reporting(self):
        sim, sources, sink = build(n_sources=1)
        sources[0].start()
        sim.run(until=5.0)
        count = sources[0].stats.readings_sent
        sources[0].stop()
        sim.run(until=20.0)
        assert sources[0].stats.readings_sent == count


class TestBitAccounting:
    def test_reading_header_is_kind_plus_identifier(self):
        sim, sources, sink = build(n_sources=1, id_bits=6)
        sources[0].start()
        sim.run(until=3.0)
        header = sources[0].budget.transmitted("header")
        readings = sources[0].stats.readings_sent
        # kind(2) + id(6) = 8 bits, byte-aligned frame of 24 bits total:
        # 8 header + 16 reading payload per message.
        assert header == readings * 8

    def test_wider_identifiers_cost_more_header(self):
        sim_a, sources_a, _ = build(n_sources=1, id_bits=4)
        sim_b, sources_b, _ = build(n_sources=1, id_bits=16)
        sources_a[0].start()
        sources_b[0].start()
        sim_a.run(until=10.0)
        sim_b.run(until=10.0)
        per_reading_a = (
            sources_a[0].budget.transmitted("header")
            / sources_a[0].stats.readings_sent
        )
        per_reading_b = (
            sources_b[0].budget.transmitted("header")
            / sources_b[0].stats.readings_sent
        )
        assert per_reading_b > per_reading_a
