"""Topology analysis helpers: hidden terminals, components, density.

The listening heuristic's blind spot is the *hidden terminal* pair: two
senders out of each other's range but sharing a receiver (Section 3.2
footnote).  These helpers quantify how much of a topology is exposed to
that failure mode, so experiments can correlate listening effectiveness
with hidden-pair fraction.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .graphs import Topology

__all__ = [
    "connected_components",
    "hidden_terminal_fraction",
    "hidden_terminal_pairs",
    "is_connected",
    "mean_degree",
]


def hidden_terminal_pairs(topology: Topology) -> Set[Tuple[int, int, int]]:
    """All (sender_a, sender_b, receiver) hidden-terminal triples.

    A triple qualifies when ``receiver`` hears both senders but the
    senders do not hear each other.  Returned with sender pair ordered
    ``a < b`` to deduplicate.
    """
    triples: Set[Tuple[int, int, int]] = set()
    for receiver in topology.nodes:
        heard = sorted(topology.neighbors(receiver))
        for i, a in enumerate(heard):
            a_neighbors = topology.neighbors(a)
            for b in heard[i + 1 :]:
                if b not in a_neighbors:
                    triples.add((a, b, receiver))
    return triples


def hidden_terminal_fraction(topology: Topology) -> float:
    """Fraction of co-receiver sender pairs that are mutually hidden.

    0.0 for a full mesh (listening can be perfect); approaches 1.0 for a
    star (listening is useless).  NaN when no receiver hears two senders.
    """
    hidden = 0
    total = 0
    for receiver in topology.nodes:
        heard = sorted(topology.neighbors(receiver))
        for i, a in enumerate(heard):
            a_neighbors = topology.neighbors(a)
            for b in heard[i + 1 :]:
                total += 1
                if b not in a_neighbors:
                    hidden += 1
    if total == 0:
        return float("nan")
    return hidden / total


def connected_components(topology: Topology) -> List[Set[int]]:
    """Connected components via BFS (no networkx dependency needed)."""
    remaining = set(topology.nodes)
    components: List[Set[int]] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        frontier = [seed]
        while frontier:
            node = frontier.pop()
            for peer in topology.neighbors(node):
                if peer not in component:
                    component.add(peer)
                    frontier.append(peer)
        components.append(component)
        remaining -= component
    return components


def is_connected(topology: Topology) -> bool:
    """True when the topology forms a single connected component."""
    components = connected_components(topology)
    return len(components) <= 1


def mean_degree(topology: Topology) -> float:
    """Average neighbour count — the spatial density knob."""
    nodes = topology.nodes
    if not nodes:
        return 0.0
    return sum(topology.degree(n) for n in nodes) / len(nodes)
