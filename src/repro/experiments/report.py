"""One-shot reproduction reports.

:func:`generate_report` regenerates every figure and extension scenario
and writes a browsable directory:

* ``figure_N.txt`` — the numeric table plus an ASCII chart;
* ``figure_N.json`` — the machine-readable twin (diffable, archivable);
* ``scenario_<name>.txt`` / ``.json`` — each extension scenario;
* ``INDEX.md`` — what was run, with which parameters.

Used by ``python -m repro report`` and directly scriptable.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..exec import TrialRunner
from . import figures as figs
from . import scenarios
from .persistence import figure_to_json, save_json
from .plotting import render_series
from .results import Table

__all__ = ["ReportConfig", "generate_report"]


@dataclass
class ReportConfig:
    """Fidelity knobs for the simulated parts of a report."""

    trials: int = 2
    duration: float = 15.0
    seed: int = 0
    #: subset of scenario names to run (None = all)
    scenarios: Optional[List[str]] = None
    #: execution layer for the trial-shaped parts (None = serial,
    #: uncached); worker count and cache state never change results
    runner: Optional[TrialRunner] = None


#: name -> (callable taking a ReportConfig, short description)
SCENARIOS: Dict[str, tuple] = {
    "hidden-terminal": (
        lambda cfg: scenarios.hidden_terminal_experiment(
            duration=cfg.duration, seed=cfg.seed, runner=cfg.runner
        ),
        "listening vs hidden terminals (mesh vs star)",
    ),
    "efficiency": (
        lambda cfg: {
            "aff_9bit": scenarios.measured_efficiency(
                "aff", id_bits=9, duration=cfg.duration, seed=cfg.seed
            ).efficiency,
            "static_32bit": scenarios.measured_efficiency(
                "static", id_bits=32, duration=cfg.duration, seed=cfg.seed
            ).efficiency,
        },
        "measured end-to-end efficiency, AFF vs static",
    ),
    "dynamic-alloc": (
        lambda cfg: scenarios.dynamic_allocation_overhead(seed=cfg.seed),
        "claim/defend address allocation cost under churn",
    ),
    "interest": (
        lambda cfg: scenarios.interest_scenario(
            duration=cfg.duration, seed=cfg.seed
        ),
        "interest reinforcement misdirection",
    ),
    "codebook": (
        lambda cfg: scenarios.codebook_scenario(seed=cfg.seed),
        "attribute-codebook compression",
    ),
    "density-estimation": (
        lambda cfg: scenarios.density_estimation_accuracy(
            duration=cfg.duration, seed=cfg.seed
        ),
        "estimating T from overheard introductions",
    ),
    "flooding": (
        lambda cfg: scenarios.flooding_scenario(seed=cfg.seed),
        "flood duplicate suppression coverage",
    ),
    "density-tracking": (
        lambda cfg: {
            k: v
            for k, v in scenarios.density_step_tracking(
                phase_seconds=cfg.duration, seed=cfg.seed
            ).items()
            if k != "samples"
        },
        "online T estimate tracking a load step",
    ),
    "massive-flow": (
        lambda cfg: scenarios.massive_flow_scenario(
            horizon=max(4 * cfg.duration, 60.0), seed=cfg.seed, runner=cfg.runner
        ),
        "10k-node flow-level run with a hybrid burst cross-check",
    ),
}


def _figure_text(figure: "figs.FigureResult", x_log: bool = False) -> str:
    plottable = [s for s in figure.series if any(not math.isnan(v) for v in s.y)]
    chart = render_series(plottable, title=figure.name, x_log=x_log)
    return figure.table.render() + "\n\n" + chart + "\n"


def generate_report(
    output_dir: Union[str, pathlib.Path],
    config: Optional[ReportConfig] = None,
    runner: Optional[TrialRunner] = None,
) -> List[pathlib.Path]:
    """Regenerate everything into ``output_dir``.  Returns written paths.

    With a :class:`repro.exec.TrialRunner` (and its result cache), a
    re-run only computes trials whose inputs changed — everything else
    is served from the cache, byte-identical.
    """
    config = config or ReportConfig()
    if runner is not None:
        config = ReportConfig(
            trials=config.trials,
            duration=config.duration,
            seed=config.seed,
            scenarios=config.scenarios,
            runner=runner,
        )
    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []
    index_lines = [
        "# Reproduction report",
        "",
        f"- simulated fidelity: {config.trials} trials x "
        f"{config.duration:.0f}s (paper protocol: 10 x 120s)",
        f"- base seed: {config.seed}",
        "",
        "## Figures",
        "",
    ]

    figure_makers = [
        (1, lambda: figs.figure_1(), False),
        (2, lambda: figs.figure_2(), False),
        (3, lambda: figs.figure_3(), True),
        (
            4,
            lambda: figs.figure_4(
                trials=config.trials, duration=config.duration,
                seed=config.seed, runner=config.runner,
            ),
            False,
        ),
    ]
    for number, make, x_log in figure_makers:
        result = make()
        text_path = out / f"figure_{number}.txt"
        text_path.write_text(_figure_text(result, x_log=x_log))
        written.append(text_path)
        json_path = out / f"figure_{number}.json"
        save_json(json_path, figure_to_json(result))
        written.append(json_path)
        index_lines.append(
            f"- [{result.name}](figure_{number}.txt) "
            f"([json](figure_{number}.json))"
        )

    index_lines += ["", "## Scenarios", ""]
    selected = config.scenarios or sorted(SCENARIOS)
    for name in selected:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; valid: {', '.join(sorted(SCENARIOS))}"
            )
        runner, description = SCENARIOS[name]
        outcome = runner(config)
        table = Table(f"scenario: {name} — {description}", ["metric", "value"])
        for key, value in outcome.items():
            table.add_row(key, value)
        stem = f"scenario_{name.replace('-', '_')}"
        text_path = out / f"{stem}.txt"
        text_path.write_text(table.render() + "\n")
        written.append(text_path)
        json_path = out / f"{stem}.json"
        save_json(
            json_path,
            {k: (None if isinstance(v, float) and math.isnan(v) else v)
             for k, v in outcome.items()},
        )
        written.append(json_path)
        index_lines.append(f"- [{name}]({stem}.txt): {description}")

    index_path = out / "INDEX.md"
    index_path.write_text("\n".join(index_lines) + "\n")
    written.append(index_path)
    return written
