"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure", "1"])
        assert args.number == 1
        assert args.trials == 3

    def test_scenario_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nonsense"])


class TestAnalyticCommands:
    def test_figure_1_prints_table_and_chart(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "AFF T=16" in out
        assert "legend:" in out  # the ASCII chart

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_figure_3_log_axis(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "transaction density" in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["figure", "9"]) == 2
        assert "figures 1-4" in capsys.readouterr().err

    def test_model_query(self, capsys):
        assert main(["model", "--data-bits", "16", "--density", "16"]) == 0
        out = capsys.readouterr().out
        assert "optimal identifier bits" in out
        assert "9" in out


class TestSimulatedCommands:
    def test_figure_4_quick(self, capsys):
        assert main([
            "figure", "4", "--trials", "1", "--duration", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "measured random" in out

    def test_validate_quick(self, capsys):
        assert main(["validate", "--trials", "1", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "collision rates" in out

    def test_scenario_dynamic_alloc(self, capsys):
        assert main(["scenario", "dynamic-alloc"]) == 0
        out = capsys.readouterr().out
        assert "dynamic_efficiency" in out

    def test_scenario_hidden_terminal_quick(self, capsys):
        assert main(["scenario", "hidden-terminal", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "mesh.listening" in out

    def test_report_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert main([
            "report", "--output", str(out_dir),
            "--trials", "1", "--duration", "3",
        ]) == 0
        files = {p.name for p in out_dir.iterdir()}
        assert "figure_1.txt" in files
        assert "figure_4.txt" in files
        assert "figure_1.json" in files  # machine-readable twin
        assert "scenario_hidden_terminal.txt" in files
        assert (out_dir / "figure_1.txt").read_text().strip()

    def test_report_json_round_trips(self, tmp_path, capsys):
        from repro.experiments.persistence import figure_from_json, load_json

        out_dir = tmp_path / "report"
        main(["report", "--output", str(out_dir),
              "--trials", "1", "--duration", "3"])
        fig = figure_from_json(load_json(out_dir / "figure_1.json"))
        assert fig.series_by_label("AFF T=16").peak()[0] == 9

    def test_sweep_command(self, capsys):
        assert main([
            "sweep", "--id-bits", "3,6", "--senders", "3",
            "--trials", "1", "--duration", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "collision-rate sweep" in out
        assert "id_bits" in out


class TestMonteCarloCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["montecarlo"])
        assert args.id_bits == 8
        assert args.shards == 1
        assert args.pool is False

    def test_quick_run_prints_table(self, capsys):
        assert main([
            "montecarlo", "--id-bits", "5", "--rate", "4",
            "--horizon", "40", "--trials", "2", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "Monte Carlo: H=5 bits" in out
        assert "simulated collision rate (mean)" in out

    def test_sharded_pooled_run(self, capsys):
        assert main([
            "montecarlo", "--id-bits", "5", "--rate", "4",
            "--horizon", "40", "--trials", "2", "--shards", "2",
            "--workers", "2", "--pool", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out + capsys.readouterr().err
        assert "shards=2" in out


class TestCacheCommand:
    def test_stats_gc_purge_lifecycle(self, tmp_path, capsys):
        import repro
        from repro.exec import ResultCache, trial_key

        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        cache.put(trial_key("fn", {"x": 1}, 0, "v"), 1.0)
        cache.put(trial_key("fn", {"x": 2}, 0, "v"), 2.0,
                  meta={"version": "0.0.1"})

        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert repro.__version__ in out
        assert "0.0.1" in out

        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 1

        assert main(["cache", "purge", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 0

    def test_gc_max_bytes_enforces_size_cap(self, tmp_path, capsys):
        from repro.exec import ResultCache, trial_key

        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        for x in range(3):
            cache.put(trial_key("fn", {"x": x}, 0, "v"), float(x))

        # Entries are stamped with the current version, so without a
        # cap nothing is collected; with --max-bytes 1 everything goes.
        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 0 entr" in capsys.readouterr().out
        assert main(["cache", "gc", "--cache-dir", str(cache_dir),
                     "--max-bytes", "1"]) == 0
        assert "removed 3 entr" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 0

    def test_action_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "shrink"])


class TestBenchTrendCommand:
    def bench(self, results_dir, mean):
        from repro.experiments.persistence import save_envelope

        save_envelope(
            results_dir / "BENCH_micro.json", "benchmark",
            {"name": "micro", "fidelity": {"full": False},
             "metrics": {}, "timing": {"mean": mean}},
        )

    def test_records_then_flags_regression(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        self.bench(results, 1.0)
        assert main(["bench-trend", "--results", str(results)]) == 0
        capsys.readouterr()
        self.bench(results, 2.0)  # 100% slower than best
        assert main(["bench-trend", "--results", str(results)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_no_record_only_analyzes(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        self.bench(results, 1.0)
        assert main([
            "bench-trend", "--results", str(results), "--no-record",
        ]) == 0
        assert not (results / "TREND.jsonl").exists()
        assert "no benchmark history" in capsys.readouterr().out
