"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes
----------
0   no findings (after suppressions and baseline)
1   findings (or unparsable files)
2   bad invocation (unknown rule id, unreadable baseline, no files)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .core import (
    Baseline,
    LintReport,
    Linter,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    project_registry,
    registry,
)
from .sarif import write_sarif

if TYPE_CHECKING:
    from .ranges import LedgerEntry

__all__ = ["main"]

DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Protocol-aware static analysis for the RETRI reproduction: "
            "determinism, wire-format, and RNG-stream hygiene rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "additionally run the project-wide dataflow rules "
            "(SEED/EXEC/PURE packs) over all files as one unit"
        ),
    )
    parser.add_argument(
        "--ranges",
        action="store_true",
        help=(
            "build the interval-engine proof ledger for every bit-packed "
            "wire field (implies --project; the WIRE004/RANGE* rules "
            "themselves always run in project mode)"
        ),
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help=(
            "print the per-field proof ledger table after the findings "
            "(implies --ranges)"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 file",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "rewrite the baseline keeping only fingerprints that still "
            "fire (at their observed multiplicity), print what was "
            "pruned, and exit 0"
        ),
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help=(
            "fail (exit 1) when the baseline carries stale entries that "
            "no current finding matches"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "additionally run the dynamic determinism sanitizer (DetSan) "
            "over the pinned scenarios and merge its SAN* findings into "
            "the report (before baseline filtering)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_rule_ids(spec: str, known: Sequence[str]) -> List[str]:
    ids = [part.strip().upper() for part in spec.split(",") if part.strip()]
    unknown = [rule_id for rule_id in ids if rule_id not in known]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return ids


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> Tuple[List[Rule], List[ProjectRule], List[Rule]]:
    from .sanitizer.rules import SANITIZER_RULES

    known = (
        sorted(registry())
        + sorted(project_registry())
        + sorted(rule.rule_id for rule in SANITIZER_RULES)
    )
    rules = all_rules()
    project_rules = all_project_rules()
    sanitizer_rules = list(SANITIZER_RULES)
    if select:
        wanted = set(_parse_rule_ids(select, known))
        rules = [rule for rule in rules if rule.rule_id in wanted]
        project_rules = [rule for rule in project_rules if rule.rule_id in wanted]
        sanitizer_rules = [
            rule for rule in sanitizer_rules if rule.rule_id in wanted
        ]
    if ignore:
        dropped = set(_parse_rule_ids(ignore, known))
        rules = [rule for rule in rules if rule.rule_id not in dropped]
        project_rules = [
            rule for rule in project_rules if rule.rule_id not in dropped
        ]
        sanitizer_rules = [
            rule for rule in sanitizer_rules if rule.rule_id not in dropped
        ]
    return rules, project_rules, sanitizer_rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.report:
        args.ranges = True
    if args.ranges:
        args.project = True

    if args.list_rules:
        from .sanitizer.rules import SANITIZER_RULES

        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.description}")
        for project_rule in all_project_rules():
            print(f"{project_rule.rule_id}  [project] {project_rule.description}")
        for dyn_rule in SANITIZER_RULES:
            print(f"{dyn_rule.rule_id}  [dynamic] {dyn_rule.description}")
        return 0

    try:
        rules, project_rules, sanitizer_rules = _select_rules(
            args.select, args.ignore
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline: Optional[Baseline] = None
    needs_baseline = args.prune_baseline or args.check_baseline
    if needs_baseline and not baseline_path.exists():
        print(f"error: no baseline at {baseline_path}", file=sys.stderr)
        return 2
    if (
        not args.no_baseline and not args.write_baseline and baseline_path.exists()
    ) or needs_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    # Baseline filtering is applied here, not inside the Linter, so the
    # sanitizer's dynamic findings can be merged in first and the
    # prune/check modes can see the unfiltered set.
    linter = Linter(rules=rules, baseline=None, project_rules=project_rules)
    report = linter.lint_paths(paths, project=args.project)

    # The proof ledger rides along as informational output only: it is
    # built from the same parsed project the rules just saw, and never
    # changes the exit code (overflows surface as WIRE004 findings).
    ledger: Optional[List[LedgerEntry]] = None
    if args.ranges and linter.last_project is not None:
        from .ranges import build_proof_ledger

        ledger = build_proof_ledger(linter.last_project)

    if args.sanitize:
        from .sanitizer.detectors import run_suite

        suite = run_suite()
        wanted_ids = {rule.rule_id for rule in sanitizer_rules}
        report.findings.extend(
            finding
            for finding in suite.findings
            if finding.rule_id in wanted_ids
        )

    if args.prune_baseline or args.check_baseline:
        assert baseline is not None
        return _baseline_maintenance(args, baseline, baseline_path, report)

    if baseline is not None:
        report.findings = baseline.filter(report.findings)

    if args.sarif:
        sarif_rules: List[Union[Rule, ProjectRule]] = [*rules, *project_rules]
        if args.sanitize:
            sarif_rules.extend(sanitizer_rules)
        sarif_properties = None
        if ledger is not None:
            from .ranges import ledger_properties

            sarif_properties = ledger_properties(ledger)
        write_sarif(
            Path(args.sarif), report, sarif_rules, properties=sarif_properties
        )

    if args.write_baseline:
        Baseline.from_findings(report.findings).dump(baseline_path)
        print(
            f"wrote {len(report.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        payload: Dict[str, object] = {
            "files_checked": report.files_checked,
            "findings": [finding.to_json() for finding in report.findings],
            "errors": [
                {"path": path, "message": message}
                for path, message in report.errors
            ],
        }
        if ledger is not None:
            payload["ledger"] = [entry.to_json() for entry in ledger]
        print(json.dumps(payload, indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        if args.report and ledger is not None:
            from .ranges import render_proof_ledger

            print(render_proof_ledger(ledger))
        for path, message in report.errors:
            print(f"{path}: parse error: {message}", file=sys.stderr)
        summary = (
            f"{report.files_checked} file(s) checked, "
            f"{len(report.findings)} finding(s), {len(report.errors)} error(s)"
        )
        print(summary, file=sys.stderr)

    return 0 if report.ok else 1


def _baseline_maintenance(
    args: argparse.Namespace,
    baseline: Baseline,
    baseline_path: Path,
    report: LintReport,
) -> int:
    """``--prune-baseline`` / ``--check-baseline`` against live findings.

    ``report.findings`` must be the *unfiltered* set: both modes compare
    what actually fires now against what the baseline tolerates.  A
    baseline entry is stale when its fingerprint fires fewer times than
    the entry's count — the debt it grandfathers no longer exists.
    """
    fired: Dict[str, int] = {}
    for finding in report.findings:
        fingerprint = finding.fingerprint()
        fired[fingerprint] = fired.get(fingerprint, 0) + 1

    stale: List[Tuple[str, int, int]] = []  # (fingerprint, tolerated, firing)
    kept: Dict[str, int] = {}
    for fingerprint in sorted(baseline.entries):
        tolerated = baseline.entries[fingerprint]
        firing = min(tolerated, fired.get(fingerprint, 0))
        if firing:
            kept[fingerprint] = firing
        if firing < tolerated:
            stale.append((fingerprint, tolerated, firing))

    if args.check_baseline:
        for fingerprint, tolerated, firing in stale:
            print(
                f"stale baseline entry {fingerprint}: tolerates {tolerated} "
                f"finding(s), {firing} still firing"
            )
        print(
            f"{len(baseline.entries)} baseline entr(ies), {len(stale)} stale",
            file=sys.stderr,
        )
        return 1 if stale else 0

    Baseline(kept).dump(baseline_path)
    for fingerprint, tolerated, firing in stale:
        print(f"pruned {fingerprint}: {tolerated} -> {firing}")
    print(
        f"pruned {len(stale)} entr(ies); {len(kept)} remain in {baseline_path}",
        file=sys.stderr,
    )
    return 0
