"""Tests for the collision-trial harness (short runs)."""

import pytest

from repro.experiments.harness import (
    CollisionTrialConfig,
    replicate,
    run_collision_trial,
)
from repro.topology.graphs import Star


def quick(**kwargs):
    defaults = dict(id_bits=5, n_senders=3, duration=5.0, seed=1)
    defaults.update(kwargs)
    return CollisionTrialConfig(**defaults)


class TestConfig:
    def test_paper_defaults(self):
        config = CollisionTrialConfig()
        assert config.n_senders == 5
        assert config.packet_bytes == 80
        assert config.duration == 120.0
        assert config.mtu_bytes == 27

    def test_invalid_selector_rejected(self):
        with pytest.raises(ValueError):
            CollisionTrialConfig(selector="psychic")

    def test_need_a_sender(self):
        with pytest.raises(ValueError):
            CollisionTrialConfig(n_senders=0)

    def test_host_gap_positive(self):
        assert CollisionTrialConfig().host_gap > 0


class TestSingleTrial:
    def test_trial_produces_traffic_and_measurements(self):
        result = run_collision_trial(quick())
        assert result.packets_offered > 0
        assert result.received_unique > 0
        assert 0.0 <= result.collision_loss_rate <= 1.0
        assert result.measured_density > 1.0

    def test_determinism_same_seed_same_result(self):
        a = run_collision_trial(quick(seed=42))
        b = run_collision_trial(quick(seed=42))
        assert a.collision_loss_rate == b.collision_loss_rate
        assert a.received_unique == b.received_unique
        assert a.packets_offered == b.packets_offered

    def test_different_seeds_differ(self):
        a = run_collision_trial(quick(seed=1, id_bits=3))
        b = run_collision_trial(quick(seed=2, id_bits=3))
        # Counts virtually never coincide exactly across seeds.
        assert (a.would_be_lost, a.received_unique) != (
            b.would_be_lost,
            b.received_unique,
        )

    def test_more_identifier_bits_fewer_collisions(self):
        small = run_collision_trial(quick(id_bits=2, duration=10.0))
        large = run_collision_trial(quick(id_bits=12, duration=10.0))
        assert large.collision_loss_rate < small.collision_loss_rate

    def test_oracle_never_collides(self):
        result = run_collision_trial(quick(selector="oracle", id_bits=4))
        assert result.collision_loss_rate == 0.0
        assert result.ground_truth_collision_rate == 0.0

    def test_listening_beats_uniform(self):
        uniform = run_collision_trial(quick(id_bits=4, duration=15.0))
        listening = run_collision_trial(
            quick(id_bits=4, duration=15.0, selector="listening")
        )
        assert listening.collision_loss_rate < uniform.collision_loss_rate

    def test_custom_topology_factory(self):
        result = run_collision_trial(
            quick(topology_factory=lambda n: Star(hub=n, leaves=range(n)))
        )
        assert result.received_unique > 0

    def test_e2e_loss_at_least_would_be_never_negative(self):
        result = run_collision_trial(quick(id_bits=3, duration=10.0))
        assert 0.0 <= result.e2e_loss_rate <= 1.0


class TestReplicate:
    def test_replicate_aggregates(self):
        mean, sd, results = replicate(quick(), trials=3)
        assert len(results) == 3
        assert 0.0 <= mean <= 1.0
        assert sd >= 0.0

    def test_trials_use_distinct_seeds(self):
        _, _, results = replicate(quick(id_bits=3), trials=3)
        rates = {r.would_be_lost for r in results}
        assert len(rates) > 1

    def test_replicate_deterministic(self):
        m1, s1, _ = replicate(quick(), trials=2)
        m2, s2, _ = replicate(quick(), trials=2)
        assert m1 == m2 and s1 == s2

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            replicate(quick(), trials=0)
