"""Adversarial robustness: garbage on the air must never crash or corrupt.

Sensor radios deliver noise, truncated frames, and other protocols'
traffic.  The decoders must reject bad input with the documented
exceptions only, and — the paper's core safety property — a reassembler
must never deliver a payload that no sender actually sent, no matter how
fragments interleave.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aff.driver import AffDriver
from repro.aff.fragmenter import Fragmenter
from repro.aff.reassembler import Reassembler
from repro.aff.static_frag import StaticCodec
from repro.aff.wire import FragmentCodec, MalformedFragmentError
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.net.packets import Packet
from repro.radio.frame import Frame
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


class TestDecoderFuzz:
    @given(data=st.binary(max_size=64), id_bits=st.integers(min_value=0, max_value=32))
    def test_aff_decode_never_crashes(self, data, id_bits):
        codec = FragmentCodec(id_bits)
        try:
            fragment = codec.decode(data)
        except MalformedFragmentError:
            return
        # Anything that parses must re-encode to a decodable fragment.
        assert codec.decode(codec.encode(fragment)) == fragment

    @given(data=st.binary(max_size=64), addr_bits=st.integers(min_value=1, max_value=48))
    def test_static_decode_never_crashes(self, data, addr_bits):
        codec = StaticCodec(addr_bits)
        try:
            fragment = codec.decode(data)
        except ValueError:
            return
        assert codec.decode(codec.encode(fragment)) == fragment

    @given(
        data=st.binary(min_size=1, max_size=40),
        id_bits=st.integers(min_value=0, max_value=16),
    )
    def test_reassembler_survives_garbage_that_happens_to_parse(self, data, id_bits):
        codec = FragmentCodec(id_bits)
        reasm = Reassembler()
        try:
            fragment = codec.decode(data)
        except MalformedFragmentError:
            return
        reasm.accept(fragment, now=0.0)  # must not raise


class TestNeverFabricatesPayloads:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_packets=st.integers(min_value=2, max_value=8),
        id_bits=st.integers(min_value=0, max_value=3),
    )
    def test_interleaved_collisions_never_deliver_unsent_payloads(
        self, seed, n_packets, id_bits
    ):
        """Tiny identifier spaces force heavy collisions; shuffle all
        fragments together; everything delivered must be an exact sent
        payload."""
        rng = random.Random(seed)
        frag = Fragmenter(FragmentCodec(id_bits), mtu_bytes=27)
        sent = []
        fragments = []
        for _ in range(n_packets):
            payload = rng.randbytes(rng.randrange(1, 120))
            sent.append(payload)
            identifier = rng.randrange(max(1, 1 << id_bits))
            fragments.extend(frag.fragment(payload, identifier).fragments)
        rng.shuffle(fragments)
        reasm = Reassembler()
        delivered = []
        for fragment in fragments:
            out = reasm.accept(fragment, now=0.0)
            if out is not None:
                delivered.append(out)
        sent_set = set(sent)
        for payload in delivered:
            assert payload in sent_set

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_full_stack_random_traffic_integrity(self, seed):
        """End-to-end with real radios: random senders, tiny id space,
        everything delivered anywhere must have been sent by someone."""
        rng = random.Random(seed)
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(3)), rf_collisions=False)
        sent = set()
        delivered = []
        drivers = []
        for node in range(3):
            radio = Radio(medium, node)
            drivers.append(
                AffDriver(
                    radio,
                    UniformSelector(IdentifierSpace(2), random.Random(seed + node)),
                    deliver=delivered.append,
                    reassembly_timeout=1.0,
                )
            )
        for i in range(10):
            node = rng.randrange(3)
            payload = rng.randbytes(rng.randrange(1, 90))
            sent.add(payload)
            sim.schedule(
                i * rng.uniform(0.0, 0.05),
                drivers[node].send,
                Packet(payload=payload, origin=node),
            )
        sim.run(until=10.0)
        for payload in delivered:
            assert payload in sent


class TestHostileFrames:
    def test_driver_ignores_foreign_protocol_frames(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False)
        tx = Radio(medium, 0)
        rx_driver = AffDriver(
            Radio(medium, 1),
            UniformSelector(IdentifierSpace(8), random.Random(1)),
        )
        rng = random.Random(2)
        for _ in range(50):
            tx.send(Frame(payload=rng.randbytes(rng.randrange(1, 27)), origin=0))
        sim.run()
        # Some garbage may coincidentally parse; none may crash, and
        # nothing real was sent, so nothing may be delivered.
        assert rx_driver.delivered == []

    def test_truncated_replay_of_valid_frame(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False)
        sender = AffDriver(
            Radio(medium, 0), UniformSelector(IdentifierSpace(8), random.Random(3))
        )
        receiver = AffDriver(
            Radio(medium, 1), UniformSelector(IdentifierSpace(8), random.Random(4))
        )
        identifier = sender.send(Packet(payload=b"legit" * 10, origin=0))
        sim.run()
        # Replay a truncated copy of a legitimate data fragment.
        plan = sender.fragmenter.fragment(b"legit" * 10, identifier)
        valid = sender.codec.encode(plan.fragments[1])
        sender.radio.send(
            Frame(payload=valid[: len(valid) // 3], origin=0)
        )
        sim.run()
        # Either malformed (counted) or parsed-but-harmless; never a crash.
        assert receiver.stats.malformed_frames >= 0
