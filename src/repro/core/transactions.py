"""Ground-truth transaction tracking and collision detection.

A *transaction* is "any computation during which some state must be
maintained by the nodes involved" (Section 1) — here: an interval of
simulated time, an owner node, a transaction identifier, and the set of
receivers that can observe it.

:class:`TransactionLog` is the experiment harness's omniscient view: it
knows every transaction's true owner, so it can decide — like the
paper's instrumented driver — which transactions *collided* (another
overlapping transaction used the same identifier within a shared
audience) independent of what the protocol under test delivered.  It
also measures the realised transaction density ``T`` as the
time-weighted average number of concurrently open transactions, which is
how simulation results are matched against the analytic model's ``T``
parameter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..sim.monitor import TimeWeightedValue

__all__ = ["Transaction", "TransactionLog"]

_txn_seq = itertools.count(1)


@dataclass(slots=True, eq=False)
class Transaction:
    """One tracked transaction (ground truth, not protocol state).

    ``slots=True`` matters: Monte Carlo replays allocate one instance
    per simulated transaction (hundreds of thousands on long horizons),
    and slotted instances are both smaller and faster to create than
    ``__dict__``-backed ones.  ``eq=False`` keeps identity comparison:
    every instance draws a unique ``uid``, so field equality never held
    between distinct transactions anyway, and the log's open-list
    removal is an identity scan, not a field-by-field walk.
    """

    owner: int
    identifier: int
    start: float
    audience: Optional[FrozenSet[int]] = None
    end: Optional[float] = None
    uid: int = field(default_factory=lambda: next(_txn_seq))

    @property
    def open(self) -> bool:
        return self.end is None

    def overlaps(self, other: "Transaction") -> bool:
        """Temporal overlap, treating open transactions as unbounded."""
        self_end = self.end if self.end is not None else float("inf")
        other_end = other.end if other.end is not None else float("inf")
        return self.start < other_end and other.start < self_end

    def shares_audience(self, other: "Transaction") -> bool:
        """True when some receiver could see both transactions.

        ``audience=None`` means "visible everywhere" (the full-mesh case)
        and intersects with anything.
        """
        if self.audience is None or other.audience is None:
            return True
        return bool(self.audience & other.audience)

    def __repr__(self) -> str:
        state = "open" if self.open else f"end={self.end:.3f}"
        return (
            f"<Txn uid={self.uid} owner={self.owner} id={self.identifier} "
            f"start={self.start:.3f} {state}>"
        )


class TransactionLog:
    """Records transactions and detects ground-truth identifier collisions.

    Collision semantics follow the model's success criterion: "a
    transaction is successful if and only if the source uses an
    identifier that is unique with respect to all other transactions at
    the same point in the network for the entire duration of the
    transaction" (Section 4.1).  Both parties to a shared identifier are
    marked collided.
    """

    def __init__(self) -> None:
        self._all: List[Transaction] = []
        self._open_by_id: Dict[int, List[Transaction]] = {}
        self._collided: Set[int] = set()  # txn uids
        self._density = TimeWeightedValue()
        self._last_time = 0.0

    # ------------------------------------------------------------------
    def begin(
        self,
        owner: int,
        identifier: int,
        time: float,
        audience: Optional[Set[int]] = None,
    ) -> Transaction:
        """Open a transaction; immediately flags collisions with open peers."""
        txn = Transaction(
            owner=owner,
            identifier=identifier,
            start=time,
            audience=frozenset(audience) if audience is not None else None,
        )
        open_list = self._open_by_id.get(identifier)
        if open_list is None:
            open_list = self._open_by_id[identifier] = []
        else:
            collided = self._collided
            for peer in open_list:  # same id, still open
                if peer.owner != owner and txn.shares_audience(peer):
                    collided.add(txn.uid)
                    collided.add(peer.uid)
        self._all.append(txn)
        open_list.append(txn)
        self._density.adjust(time, +1)
        if time > self._last_time:
            self._last_time = time
        return txn

    def end(self, txn: Transaction, time: float) -> None:
        """Close a transaction at ``time``."""
        if txn.end is not None:
            raise ValueError(f"{txn!r} already ended")
        if time < txn.start:
            raise ValueError("transaction cannot end before it starts")
        txn.end = time
        open_list = self._open_by_id.get(txn.identifier)
        if open_list is not None and txn in open_list:
            open_list.remove(txn)
            if not open_list:
                del self._open_by_id[txn.identifier]
        self._density.adjust(time, -1)
        if time > self._last_time:
            self._last_time = time

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def collided(self, txn: Transaction) -> bool:
        return txn.uid in self._collided

    @property
    def transactions(self) -> List[Transaction]:
        return list(self._all)

    @property
    def total(self) -> int:
        return len(self._all)

    @property
    def collision_count(self) -> int:
        """Number of *transactions* marked collided (both parties count)."""
        return len(self._collided)

    def collision_rate(self) -> float:
        """Fraction of transactions that suffered an identifier collision.

        This is the observable the paper's Figure 4 plots and that Eq. 4
        predicts as ``1 - (1 - 2^-H)^(2(T-1))``.
        """
        if not self._all:
            return float("nan")
        return len(self._collided) / len(self._all)

    def measured_density(self, now: Optional[float] = None) -> float:
        """Realised transaction density: time-weighted mean concurrency."""
        return self._density.average(now if now is not None else self._last_time)

    def open_count(self) -> int:
        return sum(len(v) for v in self._open_by_id.values())

    def successes(self) -> List[Transaction]:
        return [t for t in self._all if t.uid not in self._collided]

    def failures(self) -> List[Transaction]:
        return [t for t in self._all if t.uid in self._collided]
