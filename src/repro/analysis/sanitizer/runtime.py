"""DetSan runtime: the activation slot and in-process instrumentation.

The sanitizer is the dynamic half of the determinism story: the static
packs (``DET*``/``SEED*``/``EXEC*``/``PURE*``) are deliberately
under-approximating, so hash-order dependence, cross-stream RNG
contamination, and event-queue tie-order sensitivity can only be proven
absent by *running* the code under instrumentation.  This module holds
the runtime pieces that instrumented code touches on its hot paths:

* a module-level activation slot exactly like
  :mod:`repro.obs.spans` — :func:`sanitizing` installs a
  :class:`DetSanContext` for a ``with`` block, instrumented code asks
  :func:`active_sanitizer` (usually once, at construction) and pays one
  ``None``-check when the sanitizer is off;
* the **RNG draw ledger** (:class:`RngLedger`): every draw from a
  registered :mod:`repro.sim.rng` stream is attributed to
  ``(stream, call site)`` via a shallow stack fingerprint, and draws
  from the :mod:`random` module's hidden global instance are recorded
  as *unregistered* (rule SAN001);
* the **tie perturber**'s rank function (:meth:`DetSanContext.tie_rank`):
  a deterministic pseudo-random ordering key for same-timestamp events,
  derived from the sanitizer seed so perturbed runs are reproducible;
* **fork-state snapshots** (:func:`state_snapshot`): a registry of
  named probes that hash designated module state (RNG fallback
  counters, the pool dataclass registry, the global ``random``
  instance's state), compared before/after trials and across fork
  boundaries (rule SAN004).

Observations cross process boundaries as plain JSON payloads: a forked
worker drains its ledger into the result message
(:func:`repro.exec.runner.execute_call`) and the parent absorbs it
(:meth:`DetSanContext.absorb`), tagged with the worker's pid so the
analysis in :mod:`.detectors` can compare call-site sets *across*
processes.

This module imports nothing from the rest of the package (stdlib
only): the simulation kernel and the RNG registry import it, so it
must sit at the very bottom of the layering, beside
:mod:`repro.obs.spans`.
"""

from __future__ import annotations

import hashlib
import os
import random as _random_module
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Set

__all__ = [
    "DetSanContext",
    "InstrumentedStream",
    "RngLedger",
    "active_sanitizer",
    "register_state_probe",
    "sanitizing",
    "state_snapshot",
]

#: ``random.Random`` methods that consume pseudo-random state.  Draws
#: through any of these on an instrumented stream are booked in the
#: ledger; everything else (``seed``, ``getstate``, ...) passes through
#: unrecorded.
_DRAW_METHODS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

_THIS_FILE = __file__


def _digest(material: str) -> str:
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def _display_path(filename: str) -> str:
    """``filename`` relative to the CWD when possible (matches lint)."""
    path = Path(filename)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except (ValueError, OSError):
        return path.as_posix()


def _callsite() -> str:
    """``path:line:function`` of the nearest frame outside this module.

    A *shallow* fingerprint by design: one frame identifies the drawing
    call site without hashing whole stacks (which would make the same
    logical draw look different under trivially different callers).
    Frames inside this module and inside the stdlib ``random`` module
    are skipped so wrappers never attribute draws to themselves.
    """
    random_file = getattr(_random_module, "__file__", "")
    frame = sys._getframe(1)
    for _ in range(16):
        if frame is None:  # pragma: no cover - extremely shallow stacks
            break
        code = frame.f_code
        if code.co_filename not in (_THIS_FILE, random_file):
            return f"{_display_path(code.co_filename)}:{frame.f_lineno}:{code.co_name}"
        back = frame.f_back
        if back is None:
            break
        frame = back
    return "<unknown>:0:<unknown>"


# ----------------------------------------------------------------------
# The RNG draw ledger
# ----------------------------------------------------------------------
class InstrumentedStream:
    """A recording proxy around one registered ``random.Random`` stream.

    Draw methods book ``(stream name, call site)`` in the ledger and
    then delegate to the *underlying* stream object, so the sequence of
    values is bit-identical with the sanitizer on or off — the proxy
    observes, it never draws.
    """

    __slots__ = ("_stream", "_name", "_ledger")

    def __init__(self, stream: Any, name: str, ledger: "RngLedger") -> None:
        object.__setattr__(self, "_stream", stream)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_ledger", ledger)

    def __getattr__(self, attr: str) -> Any:
        value = getattr(object.__getattribute__(self, "_stream"), attr)
        if attr in _DRAW_METHODS:
            name: str = object.__getattribute__(self, "_name")
            ledger: RngLedger = object.__getattribute__(self, "_ledger")

            def _recorded(*args: Any, **kwargs: Any) -> Any:
                ledger.record_draw(name, _callsite())
                return value(*args, **kwargs)

            return _recorded
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedStream {object.__getattribute__(self, '_name')!r}>"


class RngLedger:
    """Per-process draw bookkeeping: who drew from which stream, where.

    Aggregated at record time — a counter per ``(stream, call site)``,
    never a per-draw log — so instrumenting a million-draw trial costs
    a dict increment per draw and ships a few hundred bytes.
    """

    def __init__(self) -> None:
        #: stream names handed out by a registry in this process
        self.registered: Set[str] = set()
        #: stream name -> call site -> draw count
        self.draws: Dict[str, Dict[str, int]] = {}
        #: ``random.<fn>`` global-instance draws: fn -> call site -> count
        self.unregistered: Dict[str, Dict[str, int]] = {}
        self._wrappers: Dict[int, InstrumentedStream] = {}

    def instrument(self, name: str, stream: Any) -> InstrumentedStream:
        """Register ``name`` and return the (cached) recording proxy."""
        self.registered.add(name)
        wrapper = self._wrappers.get(id(stream))
        if wrapper is None:
            wrapper = InstrumentedStream(stream, name, self)
            self._wrappers[id(stream)] = wrapper
        return wrapper

    def record_draw(self, stream: str, site: str) -> None:
        sites = self.draws.setdefault(stream, {})
        sites[site] = sites.get(site, 0) + 1

    def record_unregistered(self, func: str, site: str) -> None:
        sites = self.unregistered.setdefault(func, {})
        sites[site] = sites.get(site, 0) + 1

    def export(self) -> Dict[str, Any]:
        """This process's observations as a JSON-safe payload."""
        return {
            "pid": os.getpid(),
            "registered": sorted(self.registered),
            "draws": {
                stream: dict(sites) for stream, sites in sorted(self.draws.items())
            },
            "unregistered": {
                func: dict(sites)
                for func, sites in sorted(self.unregistered.items())
            },
        }

    def reset(self) -> None:
        """Drop all observations (registered names included)."""
        self.registered.clear()
        self.draws.clear()
        self.unregistered.clear()
        self._wrappers.clear()


# ----------------------------------------------------------------------
# Fork-state snapshot probes
# ----------------------------------------------------------------------
_STATE_PROBES: Dict[str, Callable[[], str]] = {}


def register_state_probe(name: str, probe: Callable[[], str]) -> None:
    """Register a named module-state probe for :func:`state_snapshot`.

    A probe returns a short stable digest of some designated module
    state.  Probes must be read-only and must not import anything:
    probe the module via ``sys.modules`` so an unloaded subsystem
    hashes as ``"unloaded"`` instead of being dragged in.
    """
    _STATE_PROBES[name] = probe


def state_snapshot() -> Dict[str, str]:
    """Digest of every registered probe, keyed by probe name."""
    return {name: _STATE_PROBES[name]() for name in sorted(_STATE_PROBES)}


def _module_attr(module: str, attr: str) -> Any:
    loaded = sys.modules.get(module)
    if loaded is None:
        return None
    return getattr(loaded, attr, None)


def _probe_rng_fallback_counts() -> str:
    counts = _module_attr("repro.sim.rng", "_fallback_counts")
    if counts is None:
        return "unloaded"
    return _digest(repr(sorted(counts.items())))


def _probe_pool_dataclasses() -> str:
    table = _module_attr("repro.exec.pool", "_POOL_DATACLASSES")
    if table is None:
        return "unloaded"
    return _digest(repr(sorted(table)))


def _probe_global_random_state() -> str:
    # The hidden module-level instance: any draw through ``random.*``
    # advances it, so this probe catches global-RNG consumption even
    # when the ledger's function patching missed the call path.
    return _digest(repr(_random_module.getstate()))


register_state_probe("sim.rng.fallback_counts", _probe_rng_fallback_counts)
register_state_probe("exec.pool.dataclasses", _probe_pool_dataclasses)
register_state_probe("random.global_state", _probe_global_random_state)


# ----------------------------------------------------------------------
# The sanitizer context
# ----------------------------------------------------------------------
class DetSanContext:
    """One sanitizer activation: ledger, tie seed, drift observations.

    ``perturb_ties`` is deliberately mutable: the tie-order detector
    runs a scenario once with it off (the reference trace) and once
    with it on, under one context, so the draw ledger spans both runs.
    """

    def __init__(self, seed: int = 0, perturb_ties: bool = False) -> None:
        self.seed = int(seed)
        self.perturb_ties = perturb_ties
        self.ledger = RngLedger()
        #: module-state snapshot at fork/activation time (SAN004 anchor)
        self.fork_baseline: Optional[Dict[str, str]] = None
        #: drift observations: probe/phase/before/after/site dicts
        self.drift: List[Dict[str, Any]] = []
        self._absorbed: List[Dict[str, Any]] = []

    # -- tie perturbation ------------------------------------------------
    def tie_rank(self, time: float, seq: int) -> int:
        """Deterministic shuffle key for a same-timestamp event.

        Derived from ``(sanitizer seed, timestamp, sequence number)``
        via SHA-256, so a perturbed run is itself exactly reproducible
        — rerunning with the same sanitizer seed replays the identical
        perturbed order (``seq`` still breaks rank collisions).
        """
        material = f"{self.seed}:{time!r}:{seq}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    # -- fork-state drift ------------------------------------------------
    def check_fork_drift(self, snapshot: Dict[str, str]) -> None:
        """Compare ``snapshot`` against the fork-time baseline.

        Called at trial start: drift here means module state changed
        *between* trials (cross-task contamination in a reused pool
        worker), as opposed to inside one.
        """
        if self.fork_baseline is None:
            self.fork_baseline = dict(snapshot)
            return
        for probe in sorted(snapshot):
            before = self.fork_baseline.get(probe)
            if before is None or before == snapshot[probe]:
                continue
            if before == "unloaded":
                # A probed module was imported since the baseline —
                # first-load, not drift.  Re-anchor silently.
                self.fork_baseline[probe] = snapshot[probe]
                continue
            self.record_drift(probe, "fork", before, snapshot[probe], None)

    def record_trial_drift(
        self,
        before: Dict[str, str],
        after: Dict[str, str],
        site: Optional[str],
    ) -> None:
        """Book probes whose state changed across one trial call.

        First-load transitions (``"unloaded"`` before) are not drift:
        a lazy import inside the trial legitimately brings a probed
        module into existence.
        """
        for probe in sorted(after):
            prior = before.get(probe, after[probe])
            if prior != after[probe] and prior != "unloaded":
                self.record_drift(probe, "trial", prior, after[probe], site)
        # Re-anchor so an already-reported mutation is not re-reported
        # as fork-phase drift at the start of the next trial.
        self.fork_baseline = dict(after)

    def record_drift(
        self,
        probe: str,
        phase: str,
        before: str,
        after: str,
        site: Optional[str],
    ) -> None:
        entry = {
            "probe": probe,
            "phase": phase,
            "before": before,
            "after": after,
            "site": site,
        }
        if entry not in self.drift:
            self.drift.append(entry)

    # -- cross-process transport ----------------------------------------
    def after_fork(self) -> None:
        """Reset inherited observations in a freshly forked child.

        The fork copied the parent's ledger by memory; draining it here
        keeps the child's export limited to what the *child* observed
        (the parent still holds its own copy), and re-anchors the
        fork-state baseline at the true fork point.
        """
        self.ledger.reset()
        self.drift = []
        self._absorbed = []
        self.fork_baseline = state_snapshot()

    def export_for_message(self) -> Dict[str, Any]:
        """Drain this process's observations into a result-message payload."""
        payload = self.ledger.export()
        payload["drift"] = list(self.drift)
        self.ledger.draws.clear()
        self.ledger.unregistered.clear()
        self.drift = []
        return payload

    def absorb(self, payload: Dict[str, Any]) -> None:
        """Fold a worker's (or our own round-tripped) payload back in."""
        self._absorbed.append(payload)

    def observations(self) -> List[Dict[str, Any]]:
        """All payloads for analysis: absorbed plus the live ledger."""
        live = self.ledger.export()
        live["drift"] = list(self.drift)
        return [*self._absorbed, live]


# ----------------------------------------------------------------------
# Activation: the module slot and global-RNG patching
# ----------------------------------------------------------------------
_ACTIVE: Optional[DetSanContext] = None


def active_sanitizer() -> Optional[DetSanContext]:
    """The installed sanitizer context, or None when DetSan is off."""
    return _ACTIVE


def _patch_global_random(ledger: RngLedger) -> Dict[str, Any]:
    """Wrap ``random``'s module-level draw functions to record callers.

    The wrappers delegate to the original bound methods, so the global
    instance's sequence is unchanged — only the *fact* of an
    unregistered draw (and its call site) is booked.  Returns the
    originals for :func:`_unpatch_global_random`.
    """
    originals: Dict[str, Any] = {}
    for name in sorted(_DRAW_METHODS):
        original = getattr(_random_module, name, None)
        if original is None:
            continue
        originals[name] = original

        def _wrap(func_name: str, func: Any) -> Any:
            def _recorded(*args: Any, **kwargs: Any) -> Any:
                ledger.record_unregistered(f"random.{func_name}", _callsite())
                return func(*args, **kwargs)

            return _recorded

        setattr(_random_module, name, _wrap(name, original))
    return originals


def _unpatch_global_random(originals: Dict[str, Any]) -> None:
    for name, original in originals.items():
        setattr(_random_module, name, original)


@contextmanager
def sanitizing(
    context: Optional[DetSanContext] = None,
) -> Iterator[DetSanContext]:
    """Install ``context`` (a fresh one by default) for the block.

    Activation patches the :mod:`random` module's global draw
    functions (restored on exit) and takes the initial fork-state
    baseline.  Instrumented code binds the context at construction, so
    objects built inside the block stay instrumented for their
    lifetime; objects built outside it are never touched.
    """
    global _ACTIVE
    ctx = context if context is not None else DetSanContext()
    previous = _ACTIVE
    _ACTIVE = ctx
    originals = _patch_global_random(ctx.ledger)
    if ctx.fork_baseline is None:
        ctx.fork_baseline = state_snapshot()
    try:
        yield ctx
    finally:
        _unpatch_global_random(originals)
        _ACTIVE = previous
