"""Unit tests for attribute-name compression with RETRI codes."""

import random

import pytest

from repro.apps.codebook import CodebookReceiver, CodebookSender
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh

ATTR_A = b"type=temperature,quadrant=NE,unit=C"
ATTR_B = b"type=motion,quadrant=SW,window=60s"


class _ScriptedSelector(UniformSelector):
    def __init__(self, space, values):
        super().__init__(space, random.Random(0))
        self._values = list(values)

    def select(self):
        self.selections += 1
        if self._values:
            return self._values.pop(0)
        return super().select()


def build(n_senders=2, code_bits=8, scripted=None, lifetime=1000.0):
    sim = Simulator()
    medium = BroadcastMedium(
        sim, FullMesh(range(n_senders + 1)), rf_collisions=False
    )
    receiver = CodebookReceiver(
        sim, Radio(medium, n_senders, max_frame_bytes=255), code_bits=code_bits
    )
    senders = []
    for node in range(n_senders):
        space = IdentifierSpace(code_bits)
        selector = (
            _ScriptedSelector(space, scripted[node])
            if scripted is not None
            else UniformSelector(space, random.Random(node))
        )
        senders.append(
            CodebookSender(
                sim,
                Radio(medium, node, max_frame_bytes=255),
                selector,
                binding_lifetime=lifetime,
            )
        )
    return sim, senders, receiver


class TestCompression:
    def test_binding_sent_once_then_codes_only(self):
        sim, senders, receiver = build(n_senders=1)
        for value in range(5):
            senders[0].report(ATTR_A, value)
        sim.run()
        assert senders[0].bindings_sent == 1
        assert senders[0].reports_sent == 5
        assert receiver.stats.reports_decoded == 5
        assert receiver.stats.reports_correct == 5

    def test_decoded_values_preserved(self):
        sim, senders, receiver = build(n_senders=1)
        senders[0].report(ATTR_A, 1234)
        sim.run()
        assert receiver.decoded == [(ATTR_A, 1234)]

    def test_distinct_attributes_get_distinct_codes(self):
        sim, senders, receiver = build(n_senders=1, code_bits=12)
        code_a = senders[0].report(ATTR_A, 1)
        code_b = senders[0].report(ATTR_B, 2)
        sim.run()
        assert code_a != code_b
        assert receiver.stats.reports_correct == 2

    def test_expired_binding_is_reannounced(self):
        sim, senders, receiver = build(n_senders=1, lifetime=5.0)
        senders[0].report(ATTR_A, 1)
        sim.run()
        sim.schedule(10.0, senders[0].report, ATTR_A, 2)
        sim.run(until=20.0)
        assert senders[0].bindings_sent == 2

    def test_report_without_binding_is_undecodable(self):
        sim, senders, receiver = build(n_senders=1)
        # Craft: bind, then poison the receiver by clearing its state.
        senders[0].report(ATTR_A, 1)
        sim.run()
        receiver._bindings.clear()
        senders[0].report(ATTR_A, 2)  # binding still live at sender
        sim.run()
        assert receiver.stats.reports_undecodable == 1


class TestCodeClashes:
    def test_clash_detected_and_code_poisoned(self):
        """Two senders bind different attributes to the same code: the
        receiver detects the clash and refuses to decode that code."""
        sim, senders, receiver = build(scripted=[[9], [9]])
        senders[0].report(ATTR_A, 1)
        senders[1].report(ATTR_B, 2)
        sim.run()
        assert receiver.stats.code_clashes_detected == 1
        # Subsequent reports on code 9 are dropped, not mis-decoded.
        senders[0].report(ATTR_A, 3)
        sim.run()
        assert receiver.stats.reports_undecodable >= 1

    def test_missed_first_binding_causes_counted_misdecode(self):
        """If the receiver never heard A's binding, B's clash is invisible
        and A's reports decode as B's attribute — ground truth counts it."""
        sim, senders, receiver = build(scripted=[[9], [9]])
        # Receiver misses sender 0's binding: simulate by binding before
        # the receiver's radio attaches... simpler: sender1 binds first,
        # then sender0's binding poisons; instead test the mis-decode path
        # by clearing the clash record.
        senders[1].report(ATTR_B, 2)
        sim.run()
        # Sender 0 now uses code 9 for ATTR_A but its binding frame is
        # "lost": inject only the report by reaching into the sender.
        code, fresh = senders[0]._code_for(ATTR_A)
        assert code == 9
        payload = senders[0].codec.encode_report(code, 7)
        from repro.radio.frame import Frame

        frame = Frame(
            payload=payload,
            origin=0,
            header_bits=8 * len(payload) - 16,
            payload_bits=16,
            ground_truth={"attribute": ATTR_A, "value": 7, "source": 0},
        )
        senders[0].radio.send(frame)
        sim.run()
        assert receiver.stats.reports_misdecoded == 1

    def test_same_attribute_rebinding_is_not_a_clash(self):
        sim, senders, receiver = build(scripted=[[9], [9]])
        senders[0].report(ATTR_A, 1)
        senders[1].report(ATTR_A, 2)  # same attribute, same code: agree
        sim.run()
        assert receiver.stats.code_clashes_detected == 0
        assert receiver.stats.reports_correct == 2


class TestStaticCodes:
    def test_static_code_fn_used(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False)
        receiver = CodebookReceiver(
            sim, Radio(medium, 1, max_frame_bytes=255), code_bits=16
        )
        sender = CodebookSender(
            sim,
            Radio(medium, 0, max_frame_bytes=255),
            UniformSelector(IdentifierSpace(16), random.Random(1)),
            static_code_fn=lambda attr: 777,
        )
        code = sender.report(ATTR_A, 5)
        sim.run()
        assert code == 777
        assert receiver.stats.reports_correct == 1
