"""Tests for repro.obs.metrics: the deterministic metrics registry.

The load-bearing property is bit-identity: a run's metrics snapshot is
a pure function of the scenario and seed, never of the execution layout
(serial vs sharded, worker count, partition strategy).
"""

import json

import pytest

from repro.exec import TrialRunner
from repro.flow.hybrid import simulate
from repro.flow.shard import simulate_sharded
from repro.flow.streams import massive_scenario
from repro.obs.metrics import (
    MetricsReadError,
    MetricsRegistry,
    active_metrics,
    collecting,
    diff_registries,
    inc,
    read_snapshot,
    render_prometheus,
    write_snapshot,
)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_sum(self):
        registry = MetricsRegistry()
        registry.inc("a.events")
        registry.inc("a.events", 4)
        assert registry.counter("a.events") == 5

    def test_counter_rejects_negative_and_non_int(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("a.events", -1)
        with pytest.raises(ValueError):
            registry.inc("a.events", 1.5)
        with pytest.raises(ValueError):
            registry.inc("a.events", True)

    def test_gauge_is_high_watermark(self):
        registry = MetricsRegistry()
        registry.gauge_max("a.depth", 3)
        registry.gauge_max("a.depth", 9)
        registry.gauge_max("a.depth", 5)
        assert registry.gauge("a.depth") == 9

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        for value in (2, 4, 5, 100):
            registry.observe("a.bits", value, (4, 8, 12, 16))
        edges, buckets = registry.histogram("a.bits")
        assert edges == (4, 8, 12, 16)
        assert buckets == [2, 1, 0, 0, 1]  # <=4 twice, <=8 once, +Inf once

    def test_histogram_edge_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.observe("a.bits", 1, (4, 8))
        with pytest.raises(ValueError):
            registry.observe("a.bits", 1, (4, 16))

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.inc("a.x")
        with pytest.raises(ValueError):
            registry.gauge_max("a.x", 1)
        with pytest.raises(ValueError):
            registry.observe("a.x", 1, (1, 2))

    def test_merge_sums_maxes_and_buckets(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry in (left, right):
            registry.inc("a.events", 2)
            registry.gauge_max("a.depth", 4)
            registry.observe("a.bits", 5, (4, 8))
        right.gauge_max("a.depth", 7)
        left.merge(right)
        assert left.counter("a.events") == 4
        assert left.gauge("a.depth") == 7
        assert left.histogram("a.bits")[1] == [0, 2, 0]

    def test_merge_is_order_independent(self):
        parts = []
        for k in range(3):
            registry = MetricsRegistry()
            registry.inc("a.events", k + 1)
            registry.gauge_max("a.depth", 10 - k)
            registry.observe("a.bits", 4 * k, (4, 8))
            parts.append(registry.to_json())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for table in parts:
            forward.merge_json(table)
        for table in reversed(parts):
            backward.merge_json(table)
        assert forward.to_json() == backward.to_json()


# ----------------------------------------------------------------------
# Activation slot
# ----------------------------------------------------------------------
class TestActivation:
    def test_inactive_by_default(self):
        assert active_metrics() is None
        inc("a.ignored")  # no-op, must not raise

    def test_collecting_activates_and_restores(self):
        registry = MetricsRegistry()
        with collecting(registry):
            assert active_metrics() is registry
            inc("a.events")
        assert active_metrics() is None
        assert registry.counter("a.events") == 1


# ----------------------------------------------------------------------
# Snapshots and exports
# ----------------------------------------------------------------------
class TestSnapshot:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("radio.frames_tx", 7)
        registry.gauge_max("engine.queue_depth", 12)
        registry.observe("aff.id_collision_bits", 6, (4, 8, 12, 16))
        return registry

    def test_round_trip(self, tmp_path):
        registry = self._registry()
        path = tmp_path / "metrics.jsonl"
        count = write_snapshot(path, registry, meta={"seed": 3})
        assert count == 3
        loaded, meta = read_snapshot(path)
        assert meta == {"seed": 3}
        assert loaded.to_json() == registry.to_json()

    def test_snapshot_bytes_are_canonical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_snapshot(a, self._registry())
        write_snapshot(b, self._registry())
        assert a.read_bytes() == b.read_bytes()
        header = json.loads(a.read_text().splitlines()[0])
        assert header["kind"] == "repro.obs/metrics"

    def test_truncated_snapshot_rejected(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        write_snapshot(path, self._registry())
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(MetricsReadError):
            read_snapshot(path)

    def test_prometheus_rendering(self):
        text = render_prometheus(self._registry())
        assert "# TYPE repro_radio_frames_tx_total counter" in text
        assert "repro_radio_frames_tx_total 7" in text
        assert "# TYPE repro_engine_queue_depth gauge" in text
        assert 'repro_aff_id_collision_bits_bucket{le="+Inf"} 1' in text
        assert "repro_aff_id_collision_bits_count 1" in text

    def test_diff_excludes_exec_by_default(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("exec.trials", 1)
        right.inc("exec.trials", 8)
        assert diff_registries(left, right) == []
        assert diff_registries(left, right, include_exec=True) != []

    def test_diff_reports_divergence(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("flow.windows", 3)
        right.inc("flow.windows", 4)
        lines = diff_registries(left, right)
        assert len(lines) == 1
        assert "flow.windows" in lines[0]


# ----------------------------------------------------------------------
# Serial vs sharded bit-identity (the acceptance gate)
# ----------------------------------------------------------------------
def _scenario():
    return massive_scenario(
        n_nodes=300, id_bits=6, horizon=60.0, window=10.0,
        packets_per_node=0.4,
    )


def _serial_snapshot(tmp_path, scenario):
    registry = MetricsRegistry()
    with collecting(registry):
        result = simulate(scenario, seed=7, fidelity="hybrid",
                          switch_threshold=4.0)
    path = tmp_path / "serial.jsonl"
    write_snapshot(path, registry)
    return result, path


class TestShardedParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ["cost", "even"])
    def test_sharded_snapshot_matches_serial(self, tmp_path, workers, strategy):
        scenario = _scenario()
        serial_result, serial_path = _serial_snapshot(tmp_path, scenario)

        registry = MetricsRegistry()
        with collecting(registry):
            sharded_result = simulate_sharded(
                scenario, seed=7, fidelity="hybrid", switch_threshold=4.0,
                shards=3, strategy=strategy,
                runner=TrialRunner(workers=workers),
            )
        sharded_path = tmp_path / f"sharded-{workers}-{strategy}.jsonl"
        write_snapshot(sharded_path, registry)

        assert sharded_result == serial_result
        left, _ = read_snapshot(serial_path)
        right, _ = read_snapshot(sharded_path)
        # Simulated counters agree exactly; exec.* is decomposition-
        # dependent (the serial run fans out zero trials) and excluded.
        assert diff_registries(left, right) == []
        assert right.counter("flow.windows") == 6
        assert right.counter("flow.transactions") == sharded_result.transactions
        assert right.counter("flow.collisions") == sharded_result.collisions
        assert right.counter("exec.trials") == 3

    def test_sharded_snapshots_byte_identical_across_workers(self, tmp_path):
        # At a fixed decomposition the whole snapshot — exec counters
        # included — is byte-identical at any worker count.
        scenario = _scenario()
        paths = []
        for workers in (1, 2, 4):
            registry = MetricsRegistry()
            with collecting(registry):
                simulate_sharded(
                    scenario, seed=7, fidelity="hybrid",
                    switch_threshold=4.0, shards=3, strategy="cost",
                    runner=TrialRunner(workers=workers),
                )
            path = tmp_path / f"w{workers}.jsonl"
            write_snapshot(path, registry)
            paths.append(path)
        blobs = {path.read_bytes() for path in paths}
        assert len(blobs) == 1


# ----------------------------------------------------------------------
# Telemetry integration
# ----------------------------------------------------------------------
def test_metrics_fold_into_run_telemetry():
    scenario = _scenario()
    runner = TrialRunner(workers=2)
    registry = MetricsRegistry()
    with collecting(registry):
        simulate_sharded(
            scenario, seed=7, fidelity="hybrid", switch_threshold=4.0,
            shards=3, runner=runner,
        )
    summary = runner.telemetry.summary()
    assert "metrics" in summary
    table = summary["metrics"]
    assert table["flow.windows"]["value"] == 6
    # Telemetry's view is the trial-side table; the parent registry saw
    # the same simulated counts plus the parent-side exec bookkeeping.
    assert table["flow.transactions"] == {
        "kind": "counter",
        "value": registry.counter("flow.transactions"),
    }
