"""Unit and property tests for the generic reassembly buffer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.reassembly import PartialPacket, ReassemblyBuffer


class TestPartialPacket:
    def test_contiguous_completion(self):
        p = PartialPacket(total_length=10)
        p.add_span(0, b"01234")
        assert not p.is_complete()
        p.add_span(5, b"56789")
        assert p.is_complete()
        assert p.assemble() == b"0123456789"

    def test_out_of_order_spans(self):
        p = PartialPacket(total_length=6)
        p.add_span(3, b"def")
        p.add_span(0, b"abc")
        assert p.is_complete()
        assert p.assemble() == b"abcdef"

    def test_gap_prevents_completion(self):
        p = PartialPacket(total_length=10)
        p.add_span(0, b"ab")
        p.add_span(5, b"fghij")
        assert not p.is_complete()

    def test_unknown_length_never_complete(self):
        p = PartialPacket()
        p.add_span(0, b"data")
        assert not p.is_complete()

    def test_duplicate_identical_span_accepted(self):
        p = PartialPacket(total_length=4)
        assert p.add_span(0, b"ab")
        assert p.add_span(0, b"ab")
        p.add_span(2, b"cd")
        assert p.assemble() == b"abcd"

    def test_conflicting_same_offset_rejected(self):
        p = PartialPacket(total_length=4)
        assert p.add_span(0, b"ab")
        assert not p.add_span(0, b"XY")

    def test_overlapping_agreeing_spans_accepted(self):
        p = PartialPacket(total_length=6)
        assert p.add_span(0, b"abcd")
        assert p.add_span(2, b"cdef")
        assert p.is_complete()
        assert p.assemble() == b"abcdef"

    def test_overlapping_disagreeing_spans_rejected(self):
        p = PartialPacket(total_length=6)
        assert p.add_span(0, b"abcd")
        assert not p.add_span(2, b"XXef")

    def test_zero_length_packet_completes_immediately(self):
        p = PartialPacket(total_length=0)
        assert p.is_complete()
        assert p.assemble() == b""

    def test_assemble_without_length_raises(self):
        with pytest.raises(ValueError):
            PartialPacket().assemble()

    def test_span_past_total_length_truncated_on_assemble(self):
        p = PartialPacket(total_length=3)
        p.add_span(0, b"abcdef")
        assert p.assemble() == b"abc"

    def test_bytes_held(self):
        p = PartialPacket(total_length=10)
        p.add_span(0, b"ab")
        p.add_span(5, b"xyz")
        assert p.bytes_held() == 5

    @given(
        payload=st.binary(min_size=1, max_size=200),
        chunk=st.integers(min_value=1, max_value=50),
        seed=st.integers(),
    )
    def test_any_permutation_of_chunks_reassembles(self, payload, chunk, seed):
        import random

        spans = [
            (off, payload[off : off + chunk]) for off in range(0, len(payload), chunk)
        ]
        random.Random(seed).shuffle(spans)
        p = PartialPacket(total_length=len(payload))
        for off, data in spans:
            assert p.add_span(off, data)
        assert p.is_complete()
        assert p.assemble() == payload


class TestReassemblyBuffer:
    def test_get_or_create_and_complete(self):
        buf: ReassemblyBuffer[int] = ReassemblyBuffer()
        entry = buf.get_or_create(7, now=0.0)
        entry.total_length = 2
        entry.add_span(0, b"ab")
        assert 7 in buf
        done = buf.complete(7)
        assert done.assemble() == b"ab"
        assert 7 not in buf
        assert buf.stats.completed == 1

    def test_timeout_eviction(self):
        buf: ReassemblyBuffer[int] = ReassemblyBuffer(timeout=5.0)
        buf.get_or_create(1, now=0.0)
        buf.get_or_create(2, now=3.0)
        evicted = buf.evict_stale(now=6.0)
        assert evicted == 1
        assert 1 not in buf
        assert 2 in buf

    def test_touch_refreshes_staleness(self):
        buf: ReassemblyBuffer[int] = ReassemblyBuffer(timeout=5.0)
        buf.get_or_create(1, now=0.0)
        buf.get_or_create(1, now=4.0)  # touch
        assert buf.evict_stale(now=8.0) == 0

    def test_max_entries_evicts_lru(self):
        buf: ReassemblyBuffer[int] = ReassemblyBuffer(max_entries=2)
        buf.get_or_create(1, now=0.0)
        buf.get_or_create(2, now=1.0)
        buf.get_or_create(3, now=2.0)  # evicts key 1
        assert 1 not in buf
        assert 2 in buf and 3 in buf

    def test_drop_counts_as_eviction(self):
        buf: ReassemblyBuffer[int] = ReassemblyBuffer()
        buf.get_or_create(1, now=0.0)
        buf.drop(1)
        assert buf.stats.evicted == 1
        buf.drop(99)  # absent key: no-op
        assert buf.stats.evicted == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ReassemblyBuffer(timeout=0)
        with pytest.raises(ValueError):
            ReassemblyBuffer(max_entries=0)

    def test_peek_does_not_create(self):
        buf: ReassemblyBuffer[int] = ReassemblyBuffer()
        assert buf.peek(5) is None
        assert len(buf) == 0
