"""Tests for the protocol-aware static-analysis subsystem.

Each rule gets fixture snippets with expected findings (true
positives) and clean counterparts (no false positives); the tier-1
gate at the bottom lints the real ``src/`` tree and must stay clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import Baseline, Linter, all_rules
from repro.analysis.cli import main as lint_main

SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def lint_source(tmp_path: Path, source: str, relpath: str = "mod.py"):
    """Write ``source`` under ``tmp_path`` and lint it with all rules."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    report = Linter().lint_paths([target])
    assert not report.errors, report.errors
    return report.findings


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
# Rule pack 1: determinism
# ----------------------------------------------------------------------
class TestDeterminismRules:
    def test_det001_flags_unseeded_random_default(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "def make(rng=None):\n"
            "    return rng or random.Random()\n",
        )
        assert rule_ids(findings) == ["DET001"]
        assert findings[0].line == 3

    def test_det001_flags_from_import_and_alias(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from random import Random\n"
            "import random as _r\n"
            "a = Random()\n"
            "b = _r.Random()\n",
        )
        assert rule_ids(findings) == ["DET001", "DET001"]

    def test_det001_allows_seeded_random(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "a = random.Random(42)\n"
            "b = random.Random(derive_seed(0, 'x'))\n",
        )
        assert findings == []

    def test_det002_flags_module_level_draws(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "x = random.random()\n"
            "y = random.choice([1, 2])\n",
        )
        assert rule_ids(findings) == ["DET002", "DET002"]

    def test_det002_flags_aliased_and_from_imports(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random as _random\n"
            "from random import randint\n"
            "a = _random.shuffle([1])\n"
            "b = randint(0, 3)\n",
        )
        assert rule_ids(findings) == ["DET002", "DET002"]

    def test_det002_ignores_injected_rng_methods(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "class C:\n"
            "    def draw(self):\n"
            "        return self.rng.random() + self.rng.choice([1])\n",
        )
        assert findings == []

    def test_det003_flags_function_local_import(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def sample():\n"
            "    import random as _random\n"
            "    return _random\n",
        )
        assert "DET003" in rule_ids(findings)

    def test_det003_allows_module_level_import(self, tmp_path):
        findings = lint_source(tmp_path, "import random\n")
        assert findings == []

    def test_det004_flags_wall_clock_in_sim_code(self, tmp_path):
        source = (
            "import time\n"
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return time.time(), datetime.now()\n"
        )
        findings = lint_source(tmp_path, source, relpath="sim/clock.py")
        assert rule_ids(findings) == ["DET004", "DET004"]

    def test_det004_ignores_code_outside_sim_packages(self, tmp_path):
        source = "import time\nt = time.time()\n"
        findings = lint_source(tmp_path, source, relpath="tools/bench.py")
        assert findings == []

    def test_det005_flags_set_iteration_in_kernel_code(self, tmp_path):
        source = (
            "def drain(items):\n"
            "    for x in set(items):\n"
            "        yield x\n"
            "    return [y for y in {1, 2, 3}]\n"
        )
        findings = lint_source(tmp_path, source, relpath="core/sched.py")
        assert rule_ids(findings) == ["DET005", "DET005"]

    def test_det005_allows_sorted_set_iteration(self, tmp_path):
        source = (
            "def drain(items):\n"
            "    for x in sorted(set(items)):\n"
            "        yield x\n"
        )
        findings = lint_source(tmp_path, source, relpath="core/sched.py")
        assert findings == []

    def test_det006_flags_multiprocessing_imports(self, tmp_path):
        source = (
            "import multiprocessing\n"
            "from multiprocessing import Pool\n"
            "from multiprocessing.pool import ThreadPool\n"
        )
        findings = lint_source(tmp_path, source, relpath="experiments/sweep.py")
        assert rule_ids(findings) == ["DET006", "DET006", "DET006"]

    def test_det006_flags_os_fork_calls(self, tmp_path):
        source = (
            "import os\n"
            "from os import fork\n"
            "pid_a = os.fork()\n"
            "pid_b = fork()\n"
        )
        findings = lint_source(tmp_path, source, relpath="experiments/run.py")
        assert rule_ids(findings) == ["DET006", "DET006"]

    def test_det006_flags_process_pool_executor(self, tmp_path):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import concurrent.futures as cf\n"
            "pool = cf.ProcessPoolExecutor()\n"
        )
        findings = lint_source(tmp_path, source, relpath="experiments/run.py")
        assert rule_ids(findings) == ["DET006", "DET006"]

    def test_det006_exempts_the_exec_package(self, tmp_path):
        source = (
            "import os\n"
            "pid = os.fork()\n"
        )
        findings = lint_source(tmp_path, source, relpath="exec/runner.py")
        assert findings == []

    def test_det006_exempts_the_worker_pool_module(self, tmp_path):
        source = (
            "import os\n"
            "pid = os.fork()\n"
        )
        findings = lint_source(tmp_path, source, relpath="exec/pool.py")
        assert findings == []

    def test_det006_allowlist_is_per_module_not_per_package(self, tmp_path):
        # Only the two licensed modules may manage processes; the rest
        # of the exec package is not exempt.
        source = "import os\npid = os.fork()\n"
        findings = lint_source(tmp_path, source, relpath="exec/cache.py")
        assert rule_ids(findings) == ["DET006"]

    def test_det006_allows_thread_pool_executor(self, tmp_path):
        source = "from concurrent.futures import ThreadPoolExecutor\n"
        findings = lint_source(tmp_path, source, relpath="experiments/run.py")
        assert findings == []


# ----------------------------------------------------------------------
# Rule pack 2: wire-format invariants
# ----------------------------------------------------------------------
class TestWireRules:
    def test_wire001_flags_constant_overflowing_field(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "KIND_BITS = 2\n"
            "w = BitWriter()\n"
            "w.write(5, KIND_BITS)\n",
        )
        assert "WIRE001" in rule_ids(findings)

    def test_wire001_flags_mask_wider_than_field(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "CRC_BITS = 16\n"
            "def encode(w_in, value):\n"
            "    w = BitWriter()\n"
            "    w.write(value & 0x1FFFF, CRC_BITS)\n",
        )
        assert "WIRE001" in rule_ids(findings)

    def test_wire001_allows_exact_mask(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "CRC_BITS = 16\n"
            "def encode(value):\n"
            "    w = BitWriter()\n"
            "    w.write(value & 0xFFFF, CRC_BITS)\n"
            "    w.write(3, CRC_BITS)\n",
        )
        assert findings == []

    def test_wire002_flags_magic_literal_width(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def encode(value):\n"
            "    w = BitWriter()\n"
            "    w.write(value, 7)\n",
        )
        assert rule_ids(findings) == ["WIRE002"]

    def test_wire002_allows_named_width(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "LEN_BITS = 8\n"
            "def encode(value, width):\n"
            "    w = BitWriter()\n"
            "    w.write(value, LEN_BITS)\n"
            "    w.write(value, width)\n",
        )
        assert findings == []

    def test_wire003_flags_layout_exceeding_frame_budget(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "WORD_BITS = 64\n"
            "def encode(a, b, c, d):\n"
            "    w = BitWriter()\n"
            "    w.write(a, WORD_BITS)\n"
            "    w.write(b, WORD_BITS)\n"
            "    w.write(c, WORD_BITS)\n"
            "    w.write(d, WORD_BITS)\n",
        )
        assert "WIRE003" in rule_ids(findings)

    def test_wire003_allows_small_layout(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "WORD_BITS = 64\n"
            "def encode(a):\n"
            "    w = BitWriter()\n"
            "    w.write(a, WORD_BITS)\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule pack 3: RNG-stream hygiene
# ----------------------------------------------------------------------
class TestRngStreamRules:
    def test_rng001_flags_duplicate_stream_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def build(rngs):\n"
            "    a = rngs.stream('medium')\n"
            "    b = rngs.stream('medium')\n"
            "    return a, b\n",
        )
        assert rule_ids(findings) == ["RNG001"]
        assert findings[0].line == 3

    def test_rng001_allows_distinct_names_and_scopes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def build(rngs):\n"
            "    return rngs.stream('medium'), rngs.stream('mac')\n"
            "def build2(rngs):\n"
            "    return rngs.stream('medium')\n",
        )
        assert findings == []

    def test_rng002_flags_id_interpolation(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def build(rngs, node):\n"
            "    return rngs.stream(f'mac.{id(node)}')\n",
        )
        assert rule_ids(findings) == ["RNG002"]

    def test_rng002_flags_repr_conversion(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def build(rngs, node):\n"
            "    return rngs.stream(f'mac.{node!r}')\n",
        )
        assert rule_ids(findings) == ["RNG002"]

    def test_rng002_allows_stable_interpolations(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def build(rngs, node):\n"
            "    return rngs.stream(f'mac.{node}')\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule pack 6: observability invariants
# ----------------------------------------------------------------------
class TestObservabilityRules:
    def test_obs001_flags_computed_emit_category(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(recorder, kind):\n"
            "    recorder.emit(0.0, 'frame.' + kind)\n",
        )
        assert rule_ids(findings) == ["OBS001"]
        assert findings[0].line == 2

    def test_obs001_flags_computed_span_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.obs.spans import span\n"
            "def run(layer):\n"
            "    with span(f'{layer}.dispatch'):\n"
            "        pass\n",
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_obs001_flags_keyword_category(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(recorder, kind):\n"
            "    recorder.emit(0.0, category=kind)\n",
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_obs001_allows_literal_categories(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.obs.spans import span\n"
            "def run(recorder):\n"
            "    recorder.emit(0.0, 'frame.tx', size=3)\n"
            "    with span('radio.transmit'):\n"
            "        pass\n",
        )
        assert findings == []

    def test_obs001_ignores_unrelated_calls(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(profiler, name, value):\n"
            "    profiler.add(name, value)\n"
            "    print(name)\n",
        )
        assert findings == []

    def test_obs001_inline_suppression(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(recorder, kind):\n"
            "    recorder.emit(0.0, kind)  # lint: ignore[OBS001]\n",
        )
        assert findings == []

    def test_obs002_flags_computed_metric_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(metrics, layer):\n"
            "    metrics.inc('events.' + layer)\n",
        )
        assert rule_ids(findings) == ["OBS002"]
        assert findings[0].line == 2

    def test_obs002_flags_computed_gauge_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(metrics, name, depth):\n"
            "    metrics.gauge_max(name, depth)\n",
        )
        assert rule_ids(findings) == ["OBS002"]

    def test_obs002_flags_runtime_histogram_edges(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(metrics, widths):\n"
            "    metrics.observe('aff.bits', 8, tuple(widths))\n",
        )
        assert rule_ids(findings) == ["OBS002"]

    def test_obs002_flags_edges_list_literal(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(metrics):\n"
            "    metrics.observe('aff.bits', 8, edges=[4, 8, 16])\n",
        )
        assert rule_ids(findings) == ["OBS002"]

    def test_obs002_allows_literal_name_and_inline_tuple(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(metrics):\n"
            "    metrics.inc('radio.frames_tx')\n"
            "    metrics.inc('exec.retries', 2)\n"
            "    metrics.gauge_max('engine.queue_depth', 17)\n"
            "    metrics.observe('aff.bits', 8, (4, 8, 12, 16))\n",
        )
        assert findings == []

    def test_obs002_allows_module_constant_edges(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "EDGES = (4, 8, 12, 16)\n"
            "def run(metrics, bits):\n"
            "    metrics.observe('aff.bits', bits, EDGES)\n",
        )
        assert findings == []

    def test_obs002_flags_unknown_edges_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(metrics, edges):\n"
            "    metrics.observe('aff.bits', 8, edges)\n",
        )
        assert rule_ids(findings) == ["OBS002"]

    def test_obs002_ignores_selector_observe(self, tmp_path):
        # IdentifierSelector.observe(identifier) shares the method name
        # but not the histogram shape; it must not be flagged.
        findings = lint_source(
            tmp_path,
            "def run(selector, identifier):\n"
            "    selector.observe(identifier)\n",
        )
        assert findings == []

    def test_obs002_inline_suppression(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def run(metrics, name):\n"
            "    metrics.inc(name)  # lint: ignore[OBS002]\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule pack 8: flow-fidelity sampling hygiene
# ----------------------------------------------------------------------
class TestFlowRules:
    def test_flow001_flags_underived_random_construction(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "def draw_window(k):\n"
            "    rng = random.Random(1234)\n"
            "    return rng.random()\n",
            relpath="flow/sampler.py",
        )
        assert rule_ids(findings) == ["FLOW001"]
        assert findings[0].line == 3

    def test_flow001_flags_ambient_module_draw(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "def draw_window(k):\n"
            "    return random.random()\n",
            relpath="flow/sampler.py",
        )
        # DET002 co-fires on the shared-state draw; FLOW001 adds the
        # flow-specific requirement.
        assert "FLOW001" in rule_ids(findings)

    def test_flow001_allows_registry_and_derived_streams(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "from repro.sim.rng import RngRegistry, derive_seed\n"
            "def draw_window(seed, k):\n"
            "    rng = RngRegistry(seed).stream(f'flow.window.{k}')\n"
            "    frame = random.Random(derive_seed(seed, 'flow.frame'))\n"
            "    return rng.random() + frame.random()\n",
            relpath="flow/sampler.py",
        )
        assert [f for f in findings if f.rule_id == "FLOW001"] == []

    def test_flow001_scoped_to_flow_packages(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "def draw(k):\n"
            "    return random.Random(1234).random()\n",
            relpath="core/sampler.py",
        )
        assert "FLOW001" not in rule_ids(findings)

    def test_flow001_inline_suppression(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "def draw_window(k):\n"
            "    rng = random.Random(1234)  # lint: ignore[FLOW001]\n"
            "    return rng.random()\n",
            relpath="flow/sampler.py",
        )
        assert [f for f in findings if f.rule_id == "FLOW001"] == []

    def test_flow001_sarif_help_uri(self, tmp_path):
        from repro.analysis.sarif import to_sarif

        target = tmp_path / "flow" / "sampler.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "import random\n"
            "def draw_window(k):\n"
            "    return random.Random(99).random()\n",
            encoding="utf-8",
        )
        report = Linter().lint_paths([target])
        document = to_sarif(report, all_rules())
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert any(
            rule["id"] == "FLOW001"
            and rule["helpUri"].endswith("#pack-8--flow-fidelity-flow")
            for rule in rules
        )


# ----------------------------------------------------------------------
# Suppression and baseline workflow
# ----------------------------------------------------------------------
class TestSuppressionAndBaseline:
    SOURCE = (
        "import random\n"
        "def make(rng=None):\n"
        "    return rng or random.Random()\n"
    )

    def test_inline_suppression_by_rule_id(self, tmp_path):
        source = self.SOURCE.replace(
            "random.Random()", "random.Random()  # lint: ignore[DET001]"
        )
        assert lint_source(tmp_path, source) == []

    def test_blanket_inline_suppression(self, tmp_path):
        source = self.SOURCE.replace(
            "random.Random()", "random.Random()  # lint: ignore"
        )
        assert lint_source(tmp_path, source) == []

    def test_suppression_of_other_rule_does_not_mask(self, tmp_path):
        source = self.SOURCE.replace(
            "random.Random()", "random.Random()  # lint: ignore[WIRE001]"
        )
        assert rule_ids(lint_source(tmp_path, source)) == ["DET001"]

    def test_baseline_masks_known_findings_only(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.SOURCE, encoding="utf-8")
        findings = Linter().lint_paths([target]).findings
        assert len(findings) == 1

        baseline = Baseline.from_findings(findings)
        masked = Linter(baseline=baseline).lint_paths([target])
        assert masked.findings == []

        # A *new* finding is never masked by the old baseline.
        target.write_text(
            self.SOURCE + "def other():\n    import random\n", encoding="utf-8"
        )
        still = Linter(baseline=baseline).lint_paths([target]).findings
        assert rule_ids(still) == ["DET003"]

    def test_baseline_round_trips_through_disk(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.SOURCE, encoding="utf-8")
        findings = Linter().lint_paths([target]).findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).dump(path)
        loaded = Baseline.load(path)
        assert loaded.filter(findings) == []


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out

    def test_exit_two_on_unknown_rule(self, tmp_path):
        assert lint_main([str(tmp_path), "--select", "NOPE999"]) == 2

    def test_exit_two_on_missing_path(self, tmp_path):
        assert lint_main([str(tmp_path / "does-not-exist")]) == 2

    def test_json_output_parses(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        code = lint_main([str(tmp_path), "--no-baseline", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "DET002"

    def test_select_and_ignore(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--select", "WIRE001"]) == 0
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--ignore", "DET002"]) == 0
        )

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        assert lint_main(["bad.py", "--write-baseline"]) == 0
        assert lint_main(["bad.py"]) == 0
        assert lint_main(["bad.py", "--no-baseline"]) == 1

    def test_list_rules_covers_all_packs(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET005", "WIRE001", "WIRE003", "RNG001", "RNG002"):
            assert rule_id in out

    def test_parse_error_reported_not_crashed(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def (:\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "parse error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Tier-1 gate: the shipped tree must lint clean
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_src_tree_lints_clean(self):
        report = Linter().lint_paths([SRC_ROOT / "repro"])
        assert report.errors == []
        assert report.findings == [], "\n".join(
            finding.render() for finding in report.findings
        )
        assert report.files_checked > 50

    def test_module_entry_point_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(SRC_ROOT / "repro")],
            capture_output=True,
            text=True,
            cwd=str(SRC_ROOT.parent),
            env={**os.environ, "PYTHONPATH": str(SRC_ROOT)},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_every_rule_pack_registered(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert {
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
            "DET006",
            "WIRE001",
            "WIRE002",
            "WIRE003",
            "RNG001",
            "RNG002",
            "OBS001",
            "OBS002",
            "FLOW001",
        } <= ids


# ----------------------------------------------------------------------
# Optional: mypy checks the strictly-typed packages
# ----------------------------------------------------------------------
def test_mypy_strict_on_analysis_and_exec_packages():
    pytest.importorskip("mypy")
    from mypy import api as mypy_api

    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(SRC_ROOT.parent / "setup.cfg"),
         "-p", "repro.analysis", "-p", "repro.exec", "-p", "repro.obs",
         "-p", "repro.flow"]
    )
    assert status == 0, stdout + stderr
