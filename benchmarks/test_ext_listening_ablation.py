"""Ablation: the listening heuristic's avoidance-window size.

The paper fixes 'recently' at the most recent 2T transactions.  This
ablation sweeps the window (0 = uniform selection, up to 4T) to show the
paper's choice sits near the sweet spot: too small leaves collisions on
the table, too large herds every sender into the same shrinking residual
pool (which can even hurt at small identifier spaces).
"""

import random
from dataclasses import replace

from conftest import DURATION

from repro.core.identifiers import IdentifierSpace, ListeningSelector
from repro.experiments.harness import CollisionTrialConfig, run_collision_trial
from repro.experiments.results import Table

WINDOWS = (0, 2, 5, 10, 20, 40)
ID_BITS = 6
N_SENDERS = 5


def run_sweep():
    rows = []
    for window in WINDOWS:
        config = CollisionTrialConfig(
            id_bits=ID_BITS,
            n_senders=N_SENDERS,
            duration=DURATION,
            selector="listening",
            seed=500 + window,
        )
        # Pin the window via a custom harness pass: monkey-free approach —
        # run with listening and then override the selector factory through
        # the config's topology hook is not available, so reproduce the
        # harness's trial inline with fixed-window selectors.
        result = _trial_with_fixed_window(config, window)
        rows.append((window, result))
    return rows


def _trial_with_fixed_window(config, window):
    """Same trial as the harness but with a fixed avoidance window."""
    from repro.aff.driver import AffDriver
    from repro.aff.instrumented import InstrumentedReceiver
    from repro.apps.workloads import ContinuousStreamSender
    from repro.radio.mac import AlohaMac
    from repro.radio.medium import BroadcastMedium
    from repro.radio.radio import Radio
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry
    from repro.topology.graphs import FullMesh

    rngs = RngRegistry(config.seed)
    sim = Simulator()
    medium = BroadcastMedium(
        sim, FullMesh(range(config.n_senders + 1)),
        rf_collisions=False, rng=rngs.stream("medium"),
    )
    receiver = InstrumentedReceiver(
        Radio(medium, config.n_senders, max_frame_bytes=config.mtu_bytes,
              mac=AlohaMac(gap=config.host_gap)),
        id_bits=config.id_bits,
        reassembly_timeout=config.reassembly_timeout,
    )
    for node in range(config.n_senders):
        radio = Radio(medium, node, max_frame_bytes=config.mtu_bytes,
                      mac=AlohaMac(gap=config.host_gap))
        selector = ListeningSelector(
            IdentifierSpace(config.id_bits),
            rngs.stream(f"selector.{node}"),
            fixed_window=window,
        )
        driver = AffDriver(radio, selector, listening=True,
                           reassembly_timeout=config.reassembly_timeout)
        ContinuousStreamSender(
            sim, driver, node_id=node, packet_bytes=config.packet_bytes,
            duration=config.duration, rng=rngs.stream(f"traffic.{node}"),
        ).start()
    sim.run(until=config.duration + 1.0)
    return receiver.collision_loss_rate()


def test_listening_window_ablation(benchmark, publish):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        f"Ablation: listening window size (H={ID_BITS}, T={N_SENDERS}; "
        f"paper's choice is 2T = {2 * N_SENDERS})",
        ["avoid window", "collision loss rate"],
    )
    for window, rate in rows:
        table.add_row(window, rate)
    publish("ext_listening_ablation", table.render())

    by_window = dict(rows)
    # Window 0 is uniform selection: the worst of the sweep (within noise).
    assert by_window[0] >= max(by_window[10], by_window[20]) - 0.02
    # The paper's 2T window performs at least as well as no listening.
    assert by_window[2 * N_SENDERS] < by_window[0]
