"""Canonical trial identities: points, derived seeds, cache keys.

Everything the execution layer does — sharding trials across workers,
replaying cached results, comparing serial and parallel runs — rests on
one property: a trial's identity is a *pure function of its inputs*,
never of execution order, object identity, or wall-clock time.  This
module defines that identity.

* :func:`canonical_point` renders a parameter mapping as a canonical
  JSON string (sorted keys, compact separators, callables by qualified
  name) so the same logical point always produces the same bytes.
* :func:`derive_trial_seed` maps ``(base_seed, point, k)`` to replicate
  ``k``'s seed via :func:`repro.sim.rng.derive_seed` — SHA-256 based,
  collision-resistant, stable across platforms.  This replaces the old
  ``base_seed + 1000*k`` convention, whose arithmetic collided across
  base seeds (``base=0, k=1`` equalled ``base=1000, k=0``).
* :func:`trial_key` hashes ``(function, params, seed, version)`` into
  the content address under which a trial's result is cached.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import fields, is_dataclass
from typing import Any, Mapping

from ..sim.rng import derive_seed

__all__ = [
    "canonical_point",
    "canonical_value",
    "derive_trial_seed",
    "segment_seed",
    "trial_key",
]

#: Bump when the canonical encoding itself changes (invalidates all keys).
KEY_SCHEMA = 1


def canonical_value(value: Any) -> Any:
    """A JSON-stable stand-in for ``value``.

    Primitives pass through; non-finite floats become tagged strings;
    sequences and mappings recurse (mappings with sorted keys);
    callables are named by module-qualified name (their *identity*, not
    their address); dataclasses flatten to their field dict.  Anything
    else falls back to ``type:repr`` — stable only as far as the type's
    ``__repr__`` is, which is the caller's contract to keep.
    """
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "float:nan"
        if math.isinf(value):
            return f"float:{value!r}"
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, Mapping):
        return {
            str(key): canonical_value(value[key]) for key in sorted(value, key=str)
        }
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_value(getattr(value, f.name)) for f in fields(value)
        }
    if callable(value):
        module = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__", getattr(value, "__name__", repr(value)))
        return f"callable:{module}.{name}"
    return f"{type(value).__module__}.{type(value).__qualname__}:{value!r}"


def canonical_point(params: Mapping[str, Any]) -> str:
    """Canonical string form of one grid point's parameters."""
    encoded = {str(key): canonical_value(params[key]) for key in sorted(params)}
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"), allow_nan=False)


def derive_trial_seed(base_seed: int, point: str, k: int) -> int:
    """Seed of replicate ``k`` at grid point ``point``.

    ``derive_seed(base_seed, f"trial:{point}:{k}")`` — every (point,
    replicate) pair gets a statistically independent 64-bit seed, and no
    two distinct pairs can alias the way the additive convention did.
    """
    return derive_seed(base_seed, f"trial:{point}:{k}")


def segment_seed(seed: int, index: int) -> int:
    """Seed of horizon segment ``index`` within a sharded trial.

    ``derive_seed(seed, f"segment:{index}")`` — each time segment of a
    sharded Monte Carlo trial draws from its own derived stream, so the
    segment set (and hence the trial) is a pure function of ``(seed,
    shards)`` regardless of which worker computes which segment.
    """
    return derive_seed(seed, f"segment:{index}")


def function_name(fn: Any) -> str:
    """The qualified name under which ``fn``'s results are cached."""
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
    return f"{module}.{name}"


def trial_key(fn_name: str, params: Mapping[str, Any], seed: Any, version: str) -> str:
    """Content address of one trial's result.

    SHA-256 over the canonical JSON of ``{schema, fn, params, seed,
    version}``.  Any change to the trial function's name, a parameter,
    the seed, or the package version yields a different key — stale
    results are never *invalidated*, they are simply never found.
    """
    material = json.dumps(
        {
            "schema": KEY_SCHEMA,
            "fn": fn_name,
            "params": canonical_value(dict(params)),
            "seed": canonical_value(seed),
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
