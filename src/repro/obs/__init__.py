"""Unified observability: trace export, span profiling, trace diffing.

One pipeline for everything the reproduction can *observe* about a run
without perturbing it:

* :mod:`.spans` — lightweight wall-clock span profiling, wired into the
  simulator's dispatch loop, the exec layer, and the AFF/radio hot
  paths; per-layer breakdowns feed :class:`repro.exec.telemetry
  .RunTelemetry` and ``bench-trend``.
* :mod:`.metrics` — deterministic counters / gauges / fixed-bucket
  histograms with the same activation-slot shape as spans; snapshots
  are canonical JSONL and merge bit-identically across worker and
  shard boundaries (``repro metrics {show,export,diff}``).
* :mod:`.forensics` — per-transaction lifecycle reconstruction from
  exported traces (``repro obs why``).
* :mod:`.envelope` — a versioned, streaming JSONL envelope for
  :class:`repro.sim.trace.TraceRecord` streams.
* :mod:`.merge` — heap-merge of per-worker/per-segment trace shards
  into one deterministically ordered stream.
* :mod:`.diff` — field-by-field comparison of two traces; the
  mechanical check that ``shards=N``/``--pool`` runs are bit-identical
  to serial.
* :mod:`.record` / :mod:`.cli` — ``python -m repro obs
  {record,summary,top,diff}``.

Everything here is observational only: no simulation or result path
reads a profiler or a recorder, so enabling observability cannot change
a simulated bit (the golden-regression suite runs with it on).

This ``__init__`` deliberately re-exports only :mod:`.spans` and
:mod:`.metrics`, which import nothing from the rest of the package at
module scope — the simulation kernel and the exec layer import these
names, and pulling in the envelope here would close an import cycle
through :mod:`repro.exec.runner`.  Import :mod:`repro.obs.envelope`
and friends explicitly.
"""

from __future__ import annotations

from .metrics import (
    MetricsRegistry,
    active_metrics,
    collecting,
    gauge_max,
    inc,
    observe,
)
from .spans import (
    LAYER_BUCKETS,
    SpanProfiler,
    SpanStats,
    active_profiler,
    layer_breakdown,
    layer_of_module,
    profiling,
    span,
)

__all__ = [
    "LAYER_BUCKETS",
    "MetricsRegistry",
    "SpanProfiler",
    "SpanStats",
    "active_metrics",
    "active_profiler",
    "collecting",
    "gauge_max",
    "inc",
    "layer_breakdown",
    "layer_of_module",
    "observe",
    "profiling",
    "span",
]
