"""The windowed flow-level collision sampler.

The load-bearing property (ISSUE 7 satellite): across the Figure-4
grid the flow sampler's mean collision rate converges to the analytic
model it draws from — Eq. 4 (`collision_probability`) under
``model="eq4"``, the exact mixed-duration Poisson model under
``model="mixed"`` — within a few standard errors.  Determinism and
window accounting are pinned alongside.
"""

import math
import random

import pytest

from repro.core.model import collision_probability, collision_probability_mixed
from repro.flow.sampler import (
    poisson,
    sample_flow,
    sample_window,
    window_collision_probability,
    window_plan,
)
from repro.flow.streams import FlowScenario, TransactionStream, figure4_scenario

FIG4_BITS = (2, 3, 5, 8)
FIG4_DENSITIES = (2.0, 5.0, 16.0)


def _tolerance(p: float, n: int) -> float:
    """Four standard errors of a Bernoulli mean, floored for tiny p."""
    return max(4.0 * math.sqrt(p * (1.0 - p) / max(n, 1)), 0.01)


class TestWindowPlan:
    def test_stationary_stream_fills_every_window(self):
        scenario = figure4_scenario(5, 5.0, horizon=100.0, window=10.0)
        plan = window_plan(scenario)
        assert len(plan) == 10
        for spec in plan:
            assert spec.arrival_rate == pytest.approx(5.0)
            assert spec.density == pytest.approx(5.0)

    def test_partial_overlap_scales_rate(self):
        streams = (
            TransactionStream("base", 2.0, 1.0),
            TransactionStream("burst", 10.0, 1.0, start=5.0, stop=10.0),
        )
        scenario = FlowScenario(5, 20.0, 10.0, streams)
        first, second = window_plan(scenario)
        # Burst active half of window 0: contributes half its rate.
        assert first.arrival_rate == pytest.approx(2.0 + 5.0)
        assert second.arrival_rate == pytest.approx(2.0)
        assert first.density == pytest.approx(7.0)

    def test_density_uses_effective_density_mix(self):
        streams = (
            TransactionStream("short", 4.0, 0.5),
            TransactionStream("long", 1.0, 4.0),
        )
        scenario = FlowScenario(5, 10.0, 10.0, streams)
        (spec,) = window_plan(scenario)
        assert spec.density == pytest.approx(4.0 * 0.5 + 1.0 * 4.0)


class TestPoisson:
    def test_zero_mean(self):
        assert poisson(random.Random(1), 0.0) == 0

    def test_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            poisson(random.Random(1), -1.0)

    def test_large_mean_within_bounds(self):
        # Chunked sampling must not underflow; mean 20k, sd ~141.
        rng = random.Random(7)
        draw = poisson(rng, 20_000.0)
        assert abs(draw - 20_000) < 1_000

    def test_mean_converges(self):
        rng = random.Random(3)
        draws = [poisson(rng, 12.5) for _ in range(2_000)]
        assert sum(draws) / len(draws) == pytest.approx(12.5, rel=0.05)


class TestSamplerDeterminism:
    def test_same_seed_same_result(self):
        scenario = figure4_scenario(4, 5.0, horizon=100.0, window=10.0)
        assert sample_flow(scenario, 42) == sample_flow(scenario, 42)

    def test_different_seeds_differ(self):
        scenario = figure4_scenario(4, 5.0, horizon=100.0, window=10.0)
        assert sample_flow(scenario, 1) != sample_flow(scenario, 2)

    def test_windows_partition_totals(self):
        scenario = figure4_scenario(4, 5.0, horizon=100.0, window=10.0)
        result = sample_flow(scenario, 9)
        assert result.transactions == sum(
            w.transactions for w in result.windows
        )
        assert result.collisions == sum(w.collisions for w in result.windows)
        assert all(w.fidelity == "flow" for w in result.windows)


class TestEq4Convergence:
    """Satellite: flow mean collision rate -> Eq. 4 across the grid."""

    @pytest.mark.parametrize("id_bits", FIG4_BITS)
    @pytest.mark.parametrize("density", FIG4_DENSITIES)
    def test_flow_rate_matches_eq4(self, id_bits, density):
        scenario = figure4_scenario(
            id_bits, density, horizon=400.0, window=25.0
        )
        result = sample_flow(scenario, seed=100 * id_bits + int(density))
        expected = float(collision_probability(id_bits, density))
        # Under model="eq4" every transaction is a Bernoulli(expected)
        # draw, so the mean must sit within sampling noise of Eq. 4.
        eq4 = sample_flow(
            scenario, seed=100 * id_bits + int(density), model="eq4"
        )
        assert eq4.collision_rate == pytest.approx(
            expected, abs=_tolerance(expected, eq4.transactions)
        )
        # The default mixed model converges to its own (exact) target.
        mixed_expected = collision_probability_mixed(id_bits, density, [1.0])
        assert result.collision_rate == pytest.approx(
            mixed_expected, abs=_tolerance(mixed_expected, result.transactions)
        )

    def test_transaction_count_matches_offered_load(self):
        scenario = figure4_scenario(8, 5.0, horizon=400.0, window=25.0)
        result = sample_flow(scenario, 5)
        # Poisson(2000) within five standard deviations.
        assert abs(result.transactions - 2000) < 5 * math.sqrt(2000)


class TestWindowCollisionProbability:
    def test_eq4_clamps_subunit_density(self):
        scenario = figure4_scenario(4, 0.25, horizon=10.0, window=10.0)
        (spec,) = window_plan(scenario)
        # Density below 1 means no expected contention; Eq. 4's domain
        # starts at T=1 where collisions are impossible.
        assert window_collision_probability(4, spec, model="eq4") == 0.0

    def test_unknown_model_rejected(self):
        scenario = figure4_scenario(4, 5.0, horizon=10.0, window=10.0)
        (spec,) = window_plan(scenario)
        with pytest.raises(ValueError):
            window_collision_probability(4, spec, model="exact")

    def test_idle_window_draws_nothing(self):
        stream = TransactionStream("late", 5.0, 1.0, start=50.0)
        scenario = FlowScenario(4, 100.0, 10.0, (stream,))
        plan = window_plan(scenario)
        outcome = sample_window(plan[0], 4, random.Random(1))
        assert outcome.transactions == 0 and outcome.collisions == 0


class TestMemoization:
    """`window_collision_probability` memoizes on the load mix.

    ISSUE 8 satellite: windows sharing (rate, durations, weights,
    density) — every window of a stationary scenario, every replicate
    of a calibration grid point — must compute the mixed model's
    numeric integration once, and the memoized value must equal the
    direct model evaluation exactly.
    """

    def setup_method(self):
        from repro.flow.sampler import _collision_probability_cached

        _collision_probability_cached.cache_clear()

    def test_equivalent_windows_share_one_computation(self):
        from repro.flow.sampler import _collision_probability_cached

        scenario = figure4_scenario(5, 5.0, horizon=100.0, window=10.0)
        plan = window_plan(scenario)
        assert len(plan) == 10
        values = {
            window_collision_probability(5, spec, model="mixed")
            for spec in plan
        }
        assert len(values) == 1  # stationary load: one distinct mix
        info = _collision_probability_cached.cache_info()
        assert info.misses == 1
        assert info.hits == len(plan) - 1

    def test_memoized_value_equals_direct_model(self):
        for density in FIG4_DENSITIES:
            scenario = figure4_scenario(5, density, horizon=50.0, window=10.0)
            spec = window_plan(scenario)[0]
            expected = collision_probability_mixed(
                5, spec.arrival_rate, list(spec.durations), list(spec.weights)
            )
            # Twice: the miss and the hit must both equal the model.
            assert window_collision_probability(5, spec) == expected
            assert window_collision_probability(5, spec) == expected

    def test_eq4_memoized_value_equals_direct_model(self):
        scenario = figure4_scenario(4, 5.0, horizon=50.0, window=10.0)
        spec = window_plan(scenario)[0]
        expected = collision_probability(4, max(spec.density, 1.0))
        assert window_collision_probability(4, spec, model="eq4") == expected
        assert window_collision_probability(4, spec, model="eq4") == expected

    def test_distinct_mixes_do_not_collide(self):
        light = window_plan(figure4_scenario(5, 2.0, horizon=10.0, window=10.0))[0]
        heavy = window_plan(figure4_scenario(5, 16.0, horizon=10.0, window=10.0))[0]
        assert window_collision_probability(5, light) != (
            window_collision_probability(5, heavy)
        )
