"""The ``python -m repro flow`` command surface.

::

    repro flow run --nodes 10000 --fidelity flow --summary flow.json
    repro flow run --nodes 2000 --fidelity hybrid --threshold 8
    repro flow run --nodes 100000 --flow-workers 4 --trace run.jsonl
    repro flow calibrate --trials 3 --tolerance 0.05 --workers 4
    repro flow calibrate --id-bits 3 5 --density 2 5 --horizon 120
    repro flow calibrate --workers 4 --flow-shards 4 --fidelity frame

``flow calibrate`` exits 0 when every grid point's flow-vs-discrete
collision-rate divergence is within tolerance, 1 when the budget is
exceeded (the CI smoke gate), 2 on invalid configuration.

Imported lazily by :func:`repro.cli.build_parser`; top-level CLI
helpers are imported at call time so the modules stay cycle-free.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, Optional

__all__ = ["configure_parser"]


def _write_envelope(
    path: str,
    kind: str,
    payload: Dict[str, Any],
    spans: Optional[Dict[str, Dict[str, float]]],
    telemetry: Optional[Dict[str, Any]],
) -> None:
    """Persist a flow summary the way obs summaries are persisted.

    Same envelope machinery (:mod:`repro.experiments.persistence`) and
    the same span-table / layer-breakdown fields, so ``repro obs top``
    and the bench-trend tooling read flow summaries unchanged.
    """
    from ..experiments.persistence import save_envelope
    from ..obs.spans import layer_breakdown

    if spans:
        payload["spans"] = spans
        payload["layer_times"] = {
            layer: round(total, 6)
            for layer, total in layer_breakdown(spans).items()
        }
    if telemetry is not None:
        payload["telemetry"] = telemetry
    save_envelope(path, kind, payload)


def _merged_spans(
    profiler: Optional[Any], runner: Any
) -> Optional[Dict[str, Dict[str, float]]]:
    from ..obs.spans import SpanProfiler

    spans: Dict[str, Dict[str, float]] = {}
    if profiler is not None:
        spans = profiler.to_json()
    if runner is not None and runner.telemetry.spans:
        merged = SpanProfiler()
        merged.merge(spans)
        merged.merge(runner.telemetry.spans)
        spans = merged.to_json()
    return spans or None


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from ..obs.spans import SpanProfiler, profiling
    from .hybrid import simulate
    from .streams import massive_scenario, scenario_peak_density

    scenario = massive_scenario(
        n_nodes=args.nodes,
        id_bits=args.id_bits,
        horizon=args.horizon,
        window=args.window,
        packets_per_node=args.rate,
    )
    # Sharded execution engages when the user asks for workers/shards
    # or a trace (traces always go through the shard-and-merge path so
    # serial and parallel runs produce byte-identical files).
    sharded = (
        args.flow_workers > 1
        or args.flow_shards is not None
        or args.trace is not None
    )
    runner: Optional[Any] = None
    profiler: Optional[SpanProfiler] = SpanProfiler() if args.profile else None
    clock = SpanProfiler.clock
    t0 = clock()
    with profiling(profiler) if profiler is not None else nullcontext():
        if sharded:
            from ..exec import TrialRunner
            from .shard import simulate_sharded, simulate_traced

            runner = TrialRunner(
                workers=args.flow_workers, profile=args.profile
            )
            if args.trace:
                result = simulate_traced(
                    scenario,
                    args.seed,
                    args.trace,
                    fidelity=args.fidelity,
                    switch_threshold=args.threshold,
                    model=args.model,
                    shards=args.flow_shards,
                    strategy=args.partition,
                    runner=runner,
                )
            else:
                result = simulate_sharded(
                    scenario,
                    args.seed,
                    fidelity=args.fidelity,
                    switch_threshold=args.threshold,
                    model=args.model,
                    shards=args.flow_shards,
                    strategy=args.partition,
                    runner=runner,
                )
        else:
            result = simulate(
                scenario,
                args.seed,
                fidelity=args.fidelity,
                switch_threshold=args.threshold,
                model=args.model,
            )
    wall = clock() - t0
    layout = ""
    if sharded:
        shards = (
            args.flow_shards
            if args.flow_shards is not None
            else max(args.flow_workers, 1)
        )
        layout = f", {args.flow_workers} worker(s) × {shards} shard(s)"
    print(
        f"{args.fidelity} run: {result.transactions} transactions, "
        f"collision rate {result.collision_rate:.4f}, "
        f"{result.frame_windows}/{len(result.windows)} frame window(s), "
        f"peak density {scenario_peak_density(scenario):.1f}, "
        f"{wall:.2f}s wall{layout}"
    )
    if args.trace:
        print(f"wrote {args.trace}")
    if args.summary:
        payload: Dict[str, Any] = {
            "scenario": {
                "nodes": args.nodes,
                "id_bits": args.id_bits,
                "horizon": args.horizon,
                "window": args.window,
                "rate": args.rate,
            },
            "fidelity": args.fidelity,
            "switch_threshold": args.threshold,
            "model": args.model,
            "seed": args.seed,
            "transactions": result.transactions,
            "collisions": result.collisions,
            "collision_rate": result.collision_rate,
            "frame_windows": result.frame_windows,
            "windows": len(result.windows),
            "wall_time": wall,
        }
        if sharded:
            payload["flow_workers"] = args.flow_workers
            payload["flow_shards"] = args.flow_shards
            payload["partition"] = args.partition
        _write_envelope(
            args.summary,
            "flow-summary",
            payload,
            spans=_merged_spans(profiler, runner),
            telemetry=(
                runner.telemetry.summary()
                if runner is not None and runner.telemetry.trials
                else None
            ),
        )
        print(f"wrote {args.summary}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from ..cli import _finish_exec, _make_runner
    from ..obs.spans import SpanProfiler, profiling
    from .calibrate import calibrate

    runner = _make_runner(args)
    profiler: Optional[SpanProfiler] = SpanProfiler() if args.profile else None
    try:
        with profiling(profiler) if profiler is not None else nullcontext():
            report = calibrate(
                id_bits_grid=args.id_bits,
                densities=args.density,
                trials=args.trials,
                base_seed=args.seed,
                horizon=args.horizon,
                window=args.window,
                warmup=args.warmup,
                tolerance=args.tolerance,
                fidelity=args.fidelity,
                switch_threshold=args.threshold,
                model=args.model,
                runner=runner,
                flow_shards=args.flow_shards,
                partition=args.partition,
            )
    except ValueError as exc:
        print(f"flow calibrate: {exc}", file=sys.stderr)
        return 2
    finally:
        _finish_exec(runner, args)
    print(report.render())
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    if args.summary:
        _write_envelope(
            args.summary,
            "flow-calibration",
            report.to_json(),
            spans=_merged_spans(profiler, runner),
            telemetry=(
                runner.telemetry.summary() if runner.telemetry.trials else None
            ),
        )
        print(f"wrote {args.summary}")
    return 0 if report.ok else 1


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``flow`` sub-subcommands to the given subparser."""
    from ..cli import _add_exec_flags
    from ..experiments.figures import FIG4_DEFAULT_ID_BITS
    from .calibrate import DEFAULT_DENSITIES, DEFAULT_TOLERANCE
    from .hybrid import DEFAULT_SWITCH_THRESHOLD, FIDELITY_MODES
    from .sampler import COLLISION_MODELS
    from .shard import PARTITION_STRATEGIES

    sub = parser.add_subparsers(dest="flow_command", required=True)

    run = sub.add_parser(
        "run",
        help="run the massive-scenario family at flow/hybrid/frame fidelity",
    )
    run.add_argument("--nodes", type=int, default=10_000,
                     help="nodes in the scenario (default 10000)")
    run.add_argument("--id-bits", type=int, default=10)
    run.add_argument("--horizon", type=float, default=600.0)
    run.add_argument("--window", type=float, default=10.0,
                     help="concurrency-window width in seconds")
    run.add_argument("--rate", type=float, default=0.2,
                     help="per-node transaction rate (transactions/second)")
    run.add_argument("--fidelity", choices=FIDELITY_MODES, default="flow")
    run.add_argument("--threshold", type=float,
                     default=DEFAULT_SWITCH_THRESHOLD,
                     help="hybrid switch: density at which a window "
                     "escalates to frame fidelity")
    run.add_argument("--model", choices=COLLISION_MODELS, default="mixed")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--summary", default=None, metavar="PATH",
                     help="write a flow-summary envelope (result, spans, "
                     "layer breakdown)")
    run.add_argument("--profile", action="store_true",
                     help="profile per-layer wall time (observational only)")
    run.add_argument("--flow-workers", type=int, default=1, metavar="N",
                     help="TrialRunner workers for sharded window "
                     "execution (results bit-identical at any count)")
    run.add_argument("--flow-shards", type=int, default=None, metavar="N",
                     help="window ranges to partition the plan into "
                     "(default: one per worker)")
    run.add_argument("--partition", choices=PARTITION_STRATEGIES,
                     default="cost",
                     help="shard partition strategy (cost balances "
                     "offered load + frame escalations)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="export the merged run trace (byte-identical "
                     "at any worker/shard count)")
    run.add_argument("--metrics", default=None, metavar="PATH",
                     help="write the run's deterministic metrics "
                     "snapshot (JSONL) to PATH; bit-identical at any "
                     "worker/shard count")
    run.set_defaults(func=_cmd_run)

    cal = sub.add_parser(
        "calibrate",
        help="compare flow-level vs discrete collision rates on the "
        "Figure-4 grid (exit 1 past the divergence budget)",
    )
    cal.add_argument("--id-bits", type=int, nargs="+",
                     default=list(FIG4_DEFAULT_ID_BITS), metavar="H",
                     help="identifier sizes to sweep (default: the "
                     "Figure-4 set)")
    cal.add_argument("--density", type=float, nargs="+",
                     default=list(DEFAULT_DENSITIES), metavar="T",
                     help="transaction densities to sweep")
    cal.add_argument("--trials", type=int, default=3)
    cal.add_argument("--horizon", type=float, default=300.0)
    cal.add_argument("--window", type=float, default=25.0)
    cal.add_argument("--warmup", type=float, default=5.0,
                     help="discrete-core warmup excluded from its rate")
    cal.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                     help="per-point absolute divergence budget")
    cal.add_argument("--fidelity", choices=FIDELITY_MODES, default="flow")
    cal.add_argument("--threshold", type=float,
                     default=DEFAULT_SWITCH_THRESHOLD)
    cal.add_argument("--model", choices=COLLISION_MODELS, default="mixed")
    cal.add_argument("--seed", type=int, default=0)
    cal.add_argument("--out", default=None, metavar="PATH",
                     help="write the per-point report as JSON")
    cal.add_argument("--summary", default=None, metavar="PATH",
                     help="write a flow-calibration envelope (report, "
                     "spans, telemetry)")
    cal.add_argument("--flow-shards", type=int, default=None, metavar="N",
                     help="shard each flow replicate's window plan "
                     "across the runner (bit-identical results)")
    cal.add_argument("--partition", choices=PARTITION_STRATEGIES,
                     default="cost",
                     help="shard partition strategy")
    _add_exec_flags(cal)
    cal.set_defaults(func=_cmd_calibrate)
