"""Online statistics for simulation measurements.

:class:`Counter` and :class:`RunningStats` accumulate observations in
O(1) memory (Welford's algorithm for mean/variance), and
:class:`TimeWeightedValue` integrates a piecewise-constant signal over
simulated time — used e.g. for "average number of concurrent
transactions", the paper's transaction density ``T``.

Every monitor round-trips through JSON (``to_json`` / ``from_json``):
the payload restores the *exact* internal state, so a monitor serialised
mid-run and restored continues bit-identically.  Non-finite floats are
encoded as the strings ``"nan"`` / ``"inf"`` / ``"-inf"`` (strict JSON
has no spelling for them); the codec lives here rather than reusing the
exec transport because :mod:`repro.sim` sits below :mod:`repro.exec` in
the layering.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Union

__all__ = ["Counter", "RunningStats", "TimeWeightedValue", "Histogram"]


def _enc(value: float) -> Union[float, str]:
    """A float as strict JSON: non-finite values become strings."""
    if value != value:
        return "nan"
    if value in (math.inf, -math.inf):
        return "inf" if value > 0 else "-inf"
    return value


def _dec(value: Union[float, int, str]) -> float:
    return float(value)


class Counter:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.incr amount must be >= 0")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def to_json(self) -> Dict[str, Any]:
        return {"counts": dict(self._counts)}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Counter":
        counter = cls()
        counter._counts = {
            str(name): int(count) for name, count in payload["counts"].items()
        }
        return counter


class RunningStats:
    """Streaming mean / variance / min / max (Welford's algorithm).

    Numerically stable for long runs; O(1) per observation.
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Record one observation."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); NaN with fewer than 2 points."""
        return self._m2 / (self.n - 1) if self.n >= 2 else math.nan

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    @property
    def minimum(self) -> float:
        return self._min if self.n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self.n else math.nan

    def __repr__(self) -> str:
        return f"<RunningStats n={self.n} mean={self.mean:.6g} sd={self.stdev:.6g}>"

    def to_json(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "mean": _enc(self._mean),
            "m2": _enc(self._m2),
            "min": _enc(self._min),
            "max": _enc(self._max),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RunningStats":
        stats = cls()
        stats.n = int(payload["n"])
        stats._mean = _dec(payload["mean"])
        stats._m2 = _dec(payload["m2"])
        stats._min = _dec(payload["min"])
        stats._max = _dec(payload["max"])
        return stats


class TimeWeightedValue:
    """Time-integral of a piecewise-constant signal.

    Call :meth:`set` whenever the signal changes; :meth:`average` returns
    the time-weighted mean over the observed window.  This is how we
    measure the paper's transaction density ``T`` — the *average number
    of concurrent transactions* — from a simulation.
    """

    def __init__(self, time: float = 0.0, value: float = 0.0):
        self._start = time
        self._last_time = time
        self._value = value
        self._integral = 0.0

    def set(self, time: float, value: float) -> None:
        """Record that the signal took ``value`` starting at ``time``."""
        if time < self._last_time:
            raise ValueError("TimeWeightedValue updates must be time-ordered")
        self._integral += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value

    def adjust(self, time: float, delta: float) -> None:
        """Increment/decrement the signal (e.g. +1 on txn begin, -1 on end).

        Inlined rather than delegating to :meth:`set`: this runs twice
        per simulated transaction in the Monte Carlo hot loop, where
        the extra method dispatch is measurable.
        """
        last = self._last_time
        if time < last:
            raise ValueError("TimeWeightedValue updates must be time-ordered")
        value = self._value
        self._integral += value * (time - last)
        self._last_time = time
        self._value = value + delta

    @property
    def current(self) -> float:
        return self._value

    def average(self, now: Optional[float] = None) -> float:
        """Time-weighted mean from construction until ``now`` (or last update)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("average(now) must not precede the last update")
        integral = self._integral + self._value * (end - self._last_time)
        span = end - self._start
        return integral / span if span > 0 else self._value

    def to_json(self) -> Dict[str, Any]:
        return {
            "start": _enc(self._start),
            "last_time": _enc(self._last_time),
            "value": _enc(self._value),
            "integral": _enc(self._integral),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TimeWeightedValue":
        signal = cls(time=_dec(payload["start"]), value=_dec(payload["value"]))
        signal._last_time = _dec(payload["last_time"])
        signal._integral = _dec(payload["integral"])
        return signal


class Histogram:
    """Fixed-bin histogram over ``[lo, hi)`` with overflow/underflow bins."""

    def __init__(self, lo: float, hi: float, bins: int):
        if hi <= lo:
            raise ValueError("Histogram needs hi > lo")
        if bins < 1:
            raise ValueError("Histogram needs at least one bin")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self._width = (hi - lo) / bins
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.n = 0

    def add(self, x: float) -> None:
        self.n += 1
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            self.counts[int((x - self.lo) / self._width)] += 1

    def bin_edges(self) -> List[float]:
        return [self.lo + i * self._width for i in range(self.bins + 1)]

    def normalized(self) -> List[float]:
        """Bin fractions of all in-range observations (empty -> zeros)."""
        total = sum(self.counts)
        if total == 0:
            return [0.0] * self.bins
        return [c / total for c in self.counts]

    def to_json(self) -> Dict[str, Any]:
        return {
            "lo": _enc(self.lo),
            "hi": _enc(self.hi),
            "bins": self.bins,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "n": self.n,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Histogram":
        hist = cls(_dec(payload["lo"]), _dec(payload["hi"]), int(payload["bins"]))
        counts = [int(count) for count in payload["counts"]]
        if len(counts) != hist.bins:
            raise ValueError(
                f"histogram payload has {len(counts)} counts for "
                f"{hist.bins} bins"
            )
        hist.counts = counts
        hist.underflow = int(payload["underflow"])
        hist.overflow = int(payload["overflow"])
        hist.n = int(payload["n"])
        return hist
