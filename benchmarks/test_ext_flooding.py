"""Extension: RETRI identifiers for flood duplicate suppression.

Section 6 frames RETRI as fitting any state "that has meaning over some
time period and in some location"; a flooding mesh's dedup cache is
exactly that.  This bench sweeps the flood-identifier size on a grid
with many concurrent floods and compares against the traditional
(source, seq) key:

* undersized identifiers lose coverage to collision suppression;
* adequately sized RETRI identifiers reach the same full coverage as
  (source, seq) at a lower per-flood header cost — and the needed size
  depends on how many floods share a dedup window, not on how many
  nodes exist.
"""

from repro.experiments.results import Table
from repro.experiments.scenarios import flooding_scenario

RETRI_BITS = (4, 6, 8, 10, 12)
STATIC_BITS = 14  # 6 source bits (36 nodes) + 8 sequence bits


def run_sweep():
    rows = []
    for bits in RETRI_BITS:
        rows.append((f"RETRI {bits}-bit", flooding_scenario(id_bits=bits, seed=5)))
    rows.append(
        (
            f"static (src,seq) {STATIC_BITS}-bit",
            flooding_scenario(id_bits=STATIC_BITS, static=True, seed=5),
        )
    )
    return rows


def test_flooding(benchmark, publish):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        "Extension: flood duplicate suppression on a 6x6 grid, 40 overlapping floods",
        ["identifiers", "mean coverage", "full-coverage floods",
         "transmissions", "header bits/flood"],
    )
    for name, r in rows:
        table.add_row(name, r["mean_coverage"], r["full_coverage_fraction"],
                      int(r["transmissions"]), r["header_bits_per_flood"])
    publish("ext_flooding", table.render())

    by_name = dict(rows)
    static_name = f"static (src,seq) {STATIC_BITS}-bit"
    coverages = [r["mean_coverage"] for _name, r in rows[:-1]]
    # Coverage grows monotonically with identifier size...
    assert all(a <= b + 0.02 for a, b in zip(coverages, coverages[1:]))
    # ...reaching the static scheme's full coverage by 12 bits at no more
    # than its cost (on this byte-padded radio the last 2 bits of saving
    # round away; at 10 bits the saving is real)...
    assert by_name["RETRI 12-bit"]["mean_coverage"] >= 0.99
    assert by_name[static_name]["mean_coverage"] >= 0.99
    assert (
        by_name["RETRI 12-bit"]["header_bits_per_flood"]
        <= by_name[static_name]["header_bits_per_flood"]
    )
    # ...while 10-bit identifiers already achieve ~full coverage at a
    # strictly lower on-air header cost.
    assert by_name["RETRI 10-bit"]["mean_coverage"] >= 0.95
    assert (
        by_name["RETRI 10-bit"]["header_bits_per_flood"]
        < 0.80 * by_name[static_name]["header_bits_per_flood"]
    )
