"""Flow calibration: trial identity, caching, and the CLI gate.

The satellite under test: a flow trial's cache-key material includes
the fidelity mode, switch threshold, and collision model, so flow /
hybrid / frame runs of the same ``(H, T)`` grid point can never alias
in the result cache (the same guarantee SEED002 pins statically for
seed derivation).
"""

import json

import pytest

from repro import __version__
from repro.cli import main
from repro.exec import (
    ResultCache,
    TrialRunner,
    canonical_point,
    derive_trial_seed,
    trial_key,
)
from repro.experiments.persistence import load_envelope
from repro.flow.calibrate import (
    DEFAULT_TOLERANCE,
    CalibrationPoint,
    calibrate,
    replicate_flow,
)

_FN = "repro.flow.calibrate.flow_collision_trial"


def _point_params(**overrides):
    params = {
        "id_bits": 5,
        "density": 5.0,
        "horizon": 300.0,
        "window": 25.0,
        "fidelity": "flow",
        "switch_threshold": 8.0,
        "model": "mixed",
    }
    params.update(overrides)
    return params


class TestCacheKeyMaterial:
    """Satellite: fidelity/threshold/model are part of trial identity."""

    def test_keys_distinct_across_fidelity_threshold_model(self):
        variants = [
            _point_params(),
            _point_params(fidelity="hybrid"),
            _point_params(fidelity="frame"),
            _point_params(fidelity="hybrid", switch_threshold=16.0),
            _point_params(model="eq4"),
        ]
        keys = []
        for params in variants:
            seed = derive_trial_seed(0, canonical_point(params), 0)
            keys.append(trial_key(_FN, params, seed, __version__))
        assert len(set(keys)) == len(keys)

    def test_seeds_distinct_across_fidelity(self):
        seeds = {
            derive_trial_seed(
                0, canonical_point(_point_params(fidelity=mode)), 0
            )
            for mode in ("flow", "hybrid", "frame")
        }
        assert len(seeds) == 3

    def test_threshold_alone_changes_key_even_with_same_seed(self):
        # Even if seed derivation collided, the cache key must not.
        a = _point_params(fidelity="hybrid", switch_threshold=8.0)
        b = _point_params(fidelity="hybrid", switch_threshold=12.0)
        seed = 1234
        assert trial_key(_FN, a, seed, __version__) != trial_key(
            _FN, b, seed, __version__
        )


class TestReplicateFlowCaching:
    def test_second_run_is_fully_cached(self, tmp_path):
        runner = TrialRunner(cache=ResultCache(tmp_path))
        first = replicate_flow(5, 5.0, trials=2, horizon=60.0, runner=runner)
        assert runner.last_telemetry.cache_misses == 2
        again = replicate_flow(5, 5.0, trials=2, horizon=60.0, runner=runner)
        assert runner.last_telemetry.cache_misses == 0
        assert again == first

    def test_other_fidelity_recomputes(self, tmp_path):
        runner = TrialRunner(cache=ResultCache(tmp_path))
        replicate_flow(5, 5.0, trials=2, horizon=60.0, runner=runner)
        replicate_flow(
            5,
            5.0,
            trials=2,
            horizon=60.0,
            fidelity="hybrid",
            switch_threshold=2.0,
            runner=runner,
        )
        # Hybrid at threshold 2 escalates every window — a different
        # experiment, so it must miss the flow run's cache entries.
        assert runner.last_telemetry.cache_misses == 2

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            replicate_flow(5, 5.0, trials=0)


class TestCalibrate:
    def test_small_grid_within_tolerance(self):
        report = calibrate(
            id_bits_grid=[5],
            densities=[2.0],
            trials=2,
            horizon=120.0,
            window=20.0,
        )
        assert report.ok
        assert report.max_divergence <= DEFAULT_TOLERANCE
        (point,) = report.points
        assert point.id_bits == 5 and point.density == 2.0
        assert point.divergence == pytest.approx(
            abs(point.flow_rate - point.discrete_rate)
        )

    def test_report_json_and_render(self):
        report = calibrate(
            id_bits_grid=[3], densities=[2.0], trials=1, horizon=60.0,
            window=20.0,
        )
        data = report.to_json()
        assert data["ok"] == report.ok
        assert data["fidelity"] == "flow"
        assert len(data["points"]) == 1
        text = report.render()
        assert "max divergence" in text
        assert ("within" in text) == report.ok

    def test_nan_rate_diverges_infinitely(self):
        point = CalibrationPoint(
            id_bits=5,
            density=2.0,
            flow_rate=float("nan"),
            flow_stdev=0.0,
            discrete_rate=0.1,
            discrete_stdev=0.0,
            model_rate=0.1,
        )
        assert point.divergence == float("inf")


class TestFlowCalibrateCli:
    _ARGS = [
        "flow", "calibrate", "--id-bits", "5", "--density", "2",
        "--trials", "2", "--horizon", "60", "--window", "20",
    ]

    def test_exit_zero_and_artifacts(self, tmp_path, capsys):
        out = tmp_path / "calibration.json"
        summary = tmp_path / "summary.json"
        code = main(
            self._ARGS + ["--out", str(out), "--summary", str(summary)]
        )
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["ok"] is True
        payload = load_envelope(summary, "flow-calibration")
        assert payload["points"][0]["id_bits"] == 5.0

    def test_exit_one_past_budget(self, tmp_path):
        assert main(self._ARGS + ["--tolerance", "0"]) == 1

    def test_exit_two_on_invalid_config(self):
        # A trial count of zero is rejected before any trial runs.
        assert (
            main(
                [
                    "flow", "calibrate", "--id-bits", "5", "--density", "2",
                    "--trials", "0", "--horizon", "60", "--window", "20",
                ]
            )
            == 2
        )
