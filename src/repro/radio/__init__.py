"""Simulated low-power broadcast radio substrate.

Replaces the paper's physical Radiometrix RPC testbed: 27-byte frames,
broadcast to everything in range, simple MACs, per-bit energy costs, and
parametric link-loss models.  See DESIGN.md for the substitution
rationale.
"""

from .channel import (
    BernoulliChannel,
    Channel,
    GilbertElliottChannel,
    PerfectChannel,
)
from .energy import RPC_PROFILE, WIFI_LIKE_PROFILE, EnergyMeter, EnergyModel
from .frame import RPC_MAX_FRAME_BYTES, Frame, FrameTooLargeError
from .impairments import ImpairmentStats, ReceiveImpairments
from .mac import AlohaMac, CsmaMac, Mac, SlottedMac
from .medium import BroadcastMedium, MediumStats, Transmission
from .radio import Radio

__all__ = [
    "AlohaMac",
    "BernoulliChannel",
    "BroadcastMedium",
    "Channel",
    "CsmaMac",
    "EnergyMeter",
    "EnergyModel",
    "Frame",
    "FrameTooLargeError",
    "GilbertElliottChannel",
    "ImpairmentStats",
    "Mac",
    "ReceiveImpairments",
    "MediumStats",
    "PerfectChannel",
    "RPC_MAX_FRAME_BYTES",
    "RPC_PROFILE",
    "Radio",
    "SlottedMac",
    "Transmission",
    "WIFI_LIKE_PROFILE",
]
