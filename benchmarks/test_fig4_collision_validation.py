"""Figure 4: collision rate predicted by the model vs observed in the
implementation, for random and listening identifier selection.

Runs the full simulated stack (the paper's 5 transmitters -> 1 receiver
testbed).  At default fidelity this uses shortened trials; set
REPRO_FULL=1 for the paper's exact 120 s x 10 protocol.

Paper's claims, asserted here:
  * the observed random-selection rate tracks the Eq. 4 model (the model
    is an upper bound, so observations sit at or below it, same regime);
  * the listening heuristic is 'very effective', sitting below random
    selection across identifier sizes.
"""

from conftest import DURATION, TRIALS

from repro.experiments.figures import FIG4_DEFAULT_ID_BITS, figure_4


def test_figure_4(benchmark, publish_figure, trial_runner):
    fig = benchmark.pedantic(
        figure_4,
        kwargs=dict(
            id_bits_list=FIG4_DEFAULT_ID_BITS,
            trials=TRIALS,
            duration=DURATION,
            seed=0,
            runner=trial_runner,
        ),
        rounds=1,
        iterations=1,
    )
    rand_series = fig.series_by_label("measured random")
    listen_series = fig.series_by_label("measured listening")
    publish_figure(
        "figure_4",
        fig,
        metrics={
            "execution": trial_runner.telemetry.summary(),
            "id_bits": list(fig.series_by_label("model T=5").x),
            "model": list(fig.series_by_label("model T=5").y),
            "measured_random": list(rand_series.y),
            "measured_listening": list(listen_series.y),
        },
    )

    model = fig.series_by_label("model T=5")
    rand = fig.series_by_label("measured random")
    listen = fig.series_by_label("measured listening")

    for m, r in zip(model.y, rand.y):
        assert r <= m + 0.05, "Eq. 4 is an upper bound on random selection"
    # Same regime at the contended sizes (the bound is within ~3x).
    for m, r in zip(model.y, rand.y):
        if m > 0.05:
            assert r >= m * 0.25

    # Listening at or below random selection overall, and clearly better
    # in the heavily contended region.
    assert sum(listen.y) < sum(rand.y)
    contended = [i for i, m in enumerate(model.y) if m > 0.1]
    for i in contended:
        assert listen.y[i] <= rand.y[i] + 0.02

    # Rates fall monotonically-ish with identifier size (shape check).
    assert rand.y[-1] < rand.y[0]
    assert listen.y[-1] < listen.y[0]
