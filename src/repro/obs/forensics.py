"""Transaction forensics: per-transaction lifecycles from obs traces.

The paper's central failure mode is invisible at the aggregate level: a
collision rate says *how many* transactions were lost but not *which*,
and never *why*.  This module reconstructs individual transaction
lifecycles from an exported trace (:mod:`repro.obs.envelope`) and
answers the question ``repro obs why <txn-id>`` poses: walk one
transaction's causal chain — identifier draw, fragments, collision
partners, checksum outcome, delivery or loss — and name the *other*
transaction that collided on the same ephemeral identifier, and where.

Three trace vocabularies are understood, keyed by the trace header's
``meta["scenario"]``:

``flow``
    :func:`repro.flow.shard.simulate_traced` exports.  Frame-escalated
    windows carry one ``flow.txn`` record per transaction (arrival
    time, identifier, collided flag); a transaction is addressed
    ``<window>:<ordinal>`` by its arrival order within the window.  The
    collision partner is any other transaction in the *same window*
    that drew the *same identifier* — exactly the reassembly-key
    aliasing the paper's Section 5 instrumentation counted.
``montecarlo``
    :func:`repro.obs.record.record_montecarlo` exports.  Transactions
    are addressed ``<segment>:<owner>`` from their ``txn.begin`` /
    ``txn.end`` records; partners hold the same identifier over an
    overlapping ``[begin, end)`` interval (a transaction ending exactly
    when another begins does **not** contend — half-open intervals,
    matching :class:`repro.core.transactions.TransactionLog`).
``collision``
    :func:`repro.obs.record.record_collision` exports frame-level
    ``frame.tx`` / ``frame.rx`` / ``frame.drop`` records.  A "transaction"
    here is one frame, addressed ``<origin>:<seq>``; per-receiver delay
    is ``receive_time - creation_time`` and RF-collision drops name the
    frames concurrently on the air.

Everything here is read-only and deterministic: lifecycles, partner
lists and rendered explanations are pure functions of the trace bytes
(partners sort by address, floats render with a fixed format), so
explanations can be pinned in tests and diffed across runs.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..sim.trace import TraceRecord
from .envelope import read_header, read_trace

__all__ = [
    "ForensicsError",
    "TraceForensics",
    "TxnEvent",
    "TxnLifecycle",
    "parse_txn_id",
]

PathLike = Union[str, pathlib.Path]

#: Scenarios with a per-transaction vocabulary this module can replay.
SUPPORTED_SCENARIOS: Tuple[str, ...] = ("flow", "montecarlo", "collision")


class ForensicsError(Exception):
    """An unanswerable forensic question (unknown txn, wrong trace kind)."""


def parse_txn_id(text: str) -> Tuple[int, int]:
    """Parse a ``<major>:<minor>`` transaction address.

    ``major`` is the window (flow), segment (montecarlo) or origin node
    (collision); ``minor`` the per-major ordinal, owner or frame seq.
    """
    parts = text.split(":")
    if len(parts) != 2:
        raise ForensicsError(
            f"transaction id {text!r} is not of the form <major>:<minor> "
            "(window:ordinal, segment:owner, or origin:seq)"
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise ForensicsError(
            f"transaction id {text!r}: both parts must be integers"
        ) from exc


@dataclass(frozen=True)
class TxnEvent:
    """One step of a transaction's causal chain."""

    time: float
    what: str
    detail: str


@dataclass
class TxnLifecycle:
    """Everything the trace knows about one transaction."""

    txn_id: str
    scenario: str
    major: int
    minor: int
    identifier: Optional[int]
    begin: float
    end: Optional[float] = None
    collided: bool = False
    fate: str = "unknown"
    events: List[TxnEvent] = field(default_factory=list)
    #: Partner transaction ids that shared this one's identifier in the
    #: contention scope (same window / overlapping interval).
    partners: List[str] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.begin

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe summary (used by ``repro obs why --json``)."""
        return {
            "txn": self.txn_id,
            "scenario": self.scenario,
            "identifier": self.identifier,
            "begin": self.begin,
            "end": self.end,
            "collided": self.collided,
            "fate": self.fate,
            "partners": list(self.partners),
            "events": [
                {"time": e.time, "what": e.what, "detail": e.detail}
                for e in self.events
            ],
        }


def _sorted_txns(txns: Iterable["TxnLifecycle"]) -> List["TxnLifecycle"]:
    """Transactions in numeric ``(major, minor)`` address order."""
    return sorted(txns, key=lambda txn: (txn.major, txn.minor))


def _fmt_time(value: float) -> str:
    return f"t={value:.6f}"


def _fmt_id(identifier: int) -> str:
    return f"0x{identifier:x} ({identifier})"


class TraceForensics:
    """Reconstructed transaction lifecycles of one exported trace."""

    def __init__(self, scenario: str, meta: Dict[str, Any]):
        self.scenario = scenario
        self.meta = meta
        self.lifecycles: Dict[Tuple[int, int], TxnLifecycle] = {}
        #: Flow traces only: window index -> its ``flow.window`` fields.
        self.windows: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, path: PathLike) -> "TraceForensics":
        """Load and reconstruct every transaction lifecycle in ``path``."""
        header = read_header(path)
        meta = header.get("meta") or {}
        scenario = str(meta.get("scenario", ""))
        if scenario not in SUPPORTED_SCENARIOS:
            raise ForensicsError(
                f"{path}: trace scenario {scenario!r} has no per-transaction "
                f"vocabulary (supported: {', '.join(SUPPORTED_SCENARIOS)})"
            )
        forensics = cls(scenario, dict(meta))
        records = list(read_trace(path))
        if scenario == "flow":
            forensics._build_flow(records)
        elif scenario == "montecarlo":
            forensics._build_montecarlo(records)
        else:
            forensics._build_collision(records)
        return forensics

    # ------------------------------------------------------------------
    # Reconstruction, one vocabulary at a time
    # ------------------------------------------------------------------
    def _add(self, txn: TxnLifecycle) -> TxnLifecycle:
        self.lifecycles[(txn.major, txn.minor)] = txn
        return txn

    def _build_flow(self, records: List[TraceRecord]) -> None:
        """``flow.window`` / ``flow.txn`` / ``flow.outcome`` records."""
        ordinals: Dict[int, int] = {}
        by_key: Dict[Tuple[int, int], List[TxnLifecycle]] = {}
        for record in records:
            if record.category == "flow.window":
                self.windows[int(record["window"])] = dict(record.fields)
                continue
            if record.category != "flow.txn":
                continue
            window = int(record["window"])
            ordinal = ordinals.get(window, 0)
            ordinals[window] = ordinal + 1
            identifier = int(record["identifier"])
            collided = bool(record["collided"])
            txn = self._add(
                TxnLifecycle(
                    txn_id=f"{window}:{ordinal}",
                    scenario="flow",
                    major=window,
                    minor=ordinal,
                    identifier=identifier,
                    begin=record.time,
                    collided=collided,
                    fate="lost" if collided else "delivered",
                )
            )
            txn.events.append(
                TxnEvent(
                    record.time,
                    "id draw",
                    f"identifier {_fmt_id(identifier)} in window {window}",
                )
            )
            by_key.setdefault((window, identifier), []).append(txn)
        # Partners: the *collided* co-holders of the identifier in the
        # same window.  Delivered transactions that drew the same
        # identifier never overlapped in time (the frame replay would
        # have flagged them), so they are bystanders, not causes.
        for group in by_key.values():
            contended = _sorted_txns(t for t in group if t.collided)
            if len(contended) < 2:
                continue
            for txn in contended:
                txn.partners = [
                    other.txn_id for other in contended if other is not txn
                ]

    def _build_montecarlo(self, records: List[TraceRecord]) -> None:
        """``txn.begin`` / ``txn.end`` / ``txn.collision`` records."""
        by_id: Dict[int, List[TxnLifecycle]] = {}
        for record in records:
            if record.category == "txn.begin":
                segment = int(record["segment"])
                owner = int(record["owner"])
                identifier = int(record["id"])
                txn = self._add(
                    TxnLifecycle(
                        txn_id=f"{segment}:{owner}",
                        scenario="montecarlo",
                        major=segment,
                        minor=owner,
                        identifier=identifier,
                        begin=record.time,
                        fate="delivered",
                    )
                )
                txn.events.append(
                    TxnEvent(
                        record.time,
                        "id draw",
                        f"identifier {_fmt_id(identifier)}",
                    )
                )
                by_id.setdefault(identifier, []).append(txn)
            elif record.category == "txn.end":
                key = (int(record["segment"]), int(record["owner"]))
                txn_opt = self.lifecycles.get(key)
                if txn_opt is not None:
                    txn_opt.end = record.time
                    txn_opt.events.append(
                        TxnEvent(record.time, "end", "transaction complete")
                    )
            elif record.category == "txn.collision":
                key = (int(record["segment"]), int(record["owner"]))
                txn_opt = self.lifecycles.get(key)
                if txn_opt is not None:
                    txn_opt.collided = True
                    txn_opt.fate = "lost"
                    txn_opt.events.append(
                        TxnEvent(
                            record.time,
                            "collision",
                            "flagged by the collision criterion",
                        )
                    )
        # Partners: same identifier, overlapping [begin, end).  A
        # transaction ending exactly when another begins does not
        # contend (half-open intervals).
        for group in by_id.values():
            if len(group) < 2:
                continue
            ordered = _sorted_txns(group)
            for txn in ordered:
                partners = []
                for other in ordered:
                    if other is txn:
                        continue
                    t_end = txn.end if txn.end is not None else float("inf")
                    o_end = other.end if other.end is not None else float("inf")
                    if txn.begin < o_end and other.begin < t_end:
                        partners.append(other.txn_id)
                txn.partners = partners

    def _build_collision(self, records: List[TraceRecord]) -> None:
        """``frame.tx`` / ``frame.rx`` / ``frame.drop`` records."""
        airborne: List[Tuple[float, TxnLifecycle]] = []
        for record in records:
            if record.category == "frame.tx":
                origin = int(record["origin"])
                seq = int(record["seq"])
                txn = self._add(
                    TxnLifecycle(
                        txn_id=f"{origin}:{seq}",
                        scenario="collision",
                        major=origin,
                        minor=seq,
                        identifier=None,
                        begin=record.time,
                        fate="lost",
                    )
                )
                bits = record.get("bits")
                txn.events.append(
                    TxnEvent(
                        record.time,
                        "frame.tx",
                        f"node {origin} put frame seq={seq} on the air"
                        + (f" ({bits} bits)" if bits is not None else ""),
                    )
                )
                airborne.append((record.time, txn))
                continue
            if record.category not in ("frame.rx", "frame.drop"):
                continue
            key = (int(record["origin"]), int(record["seq"]))
            txn_opt = self.lifecycles.get(key)
            if txn_opt is None:
                continue
            txn_opt.end = record.time
            receiver = record.get("receiver")
            if record.category == "frame.rx":
                txn_opt.fate = "delivered"
                delay = record.time - txn_opt.begin
                txn_opt.events.append(
                    TxnEvent(
                        record.time,
                        "frame.rx",
                        f"delivered to node {receiver} "
                        f"(delay {delay:.6f}s)",
                    )
                )
            else:
                reason = str(record.get("reason", "unknown"))
                txn_opt.events.append(
                    TxnEvent(
                        record.time,
                        "frame.drop",
                        f"dropped at node {receiver} ({reason})",
                    )
                )
                if reason == "rf_collision":
                    # Name the frames sharing the air over this frame's
                    # flight — the RF analogue of an identifier partner.
                    concurrent = [
                        other.txn_id
                        for start, other in airborne
                        if other is not txn_opt
                        and start < record.time
                        and (other.end is None or other.end > txn_opt.begin)
                    ]
                    for partner in concurrent:
                        if partner not in txn_opt.partners:
                            txn_opt.partners.append(partner)
        for txn in self.lifecycles.values():
            txn.partners.sort(key=parse_txn_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lifecycle(self, txn_id: str) -> TxnLifecycle:
        """The lifecycle addressed by ``txn_id``, or a helpful error."""
        major, minor = parse_txn_id(txn_id)
        txn = self.lifecycles.get((major, minor))
        if txn is not None:
            return txn
        if self.scenario == "flow":
            window = self.windows.get(major)
            if window is not None and window.get("fidelity") == "flow":
                raise ForensicsError(
                    f"window {major} ran at flow fidelity — transactions "
                    "there are analytic draws with no individual records; "
                    "re-run with --fidelity frame (or hybrid) to trace them"
                )
        raise ForensicsError(
            f"no transaction {major}:{minor} in this {self.scenario} trace "
            f"({len(self.lifecycles)} transaction(s) known)"
        )

    def lost(self) -> List[str]:
        """Ids of every transaction the trace shows as lost, sorted."""
        return [
            txn.txn_id
            for _key, txn in sorted(self.lifecycles.items())
            if txn.fate == "lost"
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def explain(self, txn_id: str) -> str:
        """The causal chain of ``txn_id``, rendered for humans.

        Deterministic text: event order is trace order, partners sort by
        address, floats use a fixed format — pin it in tests freely.
        """
        txn = self.lifecycle(txn_id)
        lines = [f"transaction {txn.txn_id} — {self.scenario} trace"]
        if txn.identifier is not None:
            lines.append(f"  identifier {_fmt_id(txn.identifier)}")
        for event in txn.events:
            lines.append(f"  {_fmt_time(event.time)}  {event.what}: {event.detail}")
        duration = txn.duration
        if duration is not None:
            lines.append(f"  held the air/identifier for {duration:.6f}s")
        lines.append(f"  outcome: {txn.fate.upper()}")
        if txn.collided or txn.partners:
            lines.extend(self._explain_partners(txn))
        elif txn.fate == "lost":
            lines.append(
                "  no identifier partner found — the loss is not an "
                "identifier collision (see drop reasons above)"
            )
        return "\n".join(lines)

    def _explain_partners(self, txn: TxnLifecycle) -> List[str]:
        lines: List[str] = []
        if not txn.partners:
            lines.append(
                "  flagged as collided, but no partner is visible in this "
                "trace (the partner may sit outside the traced horizon)"
            )
            return lines
        if self.scenario == "flow":
            where = f"in window {txn.major}"
        elif self.scenario == "montecarlo":
            where = "over an overlapping interval"
        else:
            where = "concurrently on the air"
        if txn.identifier is not None:
            noun = f"ephemeral identifier {_fmt_id(txn.identifier)}"
        else:
            noun = "the channel"
        lines.append(f"  shared {noun} {where} with:")
        for partner_id in txn.partners:
            major, minor = parse_txn_id(partner_id)
            partner = self.lifecycles.get((major, minor))
            if partner is None:
                lines.append(f"    {partner_id}")
                continue
            span = _fmt_time(partner.begin)
            if partner.end is not None:
                span += f" .. {_fmt_time(partner.end)}"
            lines.append(
                f"    transaction {partner_id} ({span}, {partner.fate})"
            )
        return lines


def why(path: PathLike, txn_id: str) -> str:
    """One-call convenience: explain ``txn_id`` from the trace at ``path``."""
    return TraceForensics.from_trace(path).explain(txn_id)
