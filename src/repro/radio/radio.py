"""The radio device: a node's transceiver.

Modelled on the paper's Radiometrix RPC packet controller: accepts
frames up to a small maximum size (27 bytes by default), broadcasts them
to everything in range, and hands received frames up to the host.

Two receive paths exist on purpose:

* the **handler** — the bound protocol driver (AFF, static baseline);
* **listeners** — promiscuous taps.  The listening identifier-selection
  heuristic (Section 3.2) registers here: "each transmitter also acts as
  a receiver, listening to packets transmitted by other nodes."

Energy is charged per frame on both transmit and receive via the node's
:class:`~repro.radio.energy.EnergyMeter`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .energy import EnergyMeter, EnergyModel, RPC_PROFILE
from .frame import Frame, FrameTooLargeError, RPC_MAX_FRAME_BYTES
from .mac import AlohaMac, Mac
from .medium import BroadcastMedium

__all__ = ["Radio"]

ReceiveHandler = Callable[[Frame], None]


class Radio:
    """A node's radio, attached to a :class:`BroadcastMedium`.

    Parameters
    ----------
    medium:
        The shared air.
    node_id:
        Must also exist in the medium's topology for anyone to hear us.
    max_frame_bytes:
        Hardware frame cap; :meth:`send` refuses larger frames (the
        protocol layer is responsible for fragmenting to fit).
    mac:
        Medium-access strategy; defaults to a fresh :class:`AlohaMac`.
    energy_model:
        Cost parameters for the node's :class:`EnergyMeter`.
    """

    def __init__(
        self,
        medium: BroadcastMedium,
        node_id: int,
        max_frame_bytes: int = RPC_MAX_FRAME_BYTES,
        mac: Optional[Mac] = None,
        energy_model: EnergyModel = RPC_PROFILE,
    ):
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be >= 1")
        self.medium = medium
        self.node_id = node_id
        self.max_frame_bytes = max_frame_bytes
        self.mac = mac if mac is not None else AlohaMac()
        self.mac.bind(self)
        self.energy = EnergyMeter(energy_model)
        self._handler: Optional[ReceiveHandler] = None
        self._listeners: List[ReceiveHandler] = []
        self._tx_listeners: List[ReceiveHandler] = []
        self.frames_sent = 0
        self.frames_received = 0
        medium.attach(node_id, self)

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Queue a frame for transmission through the MAC.

        Raises
        ------
        FrameTooLargeError
            If the frame exceeds the hardware maximum — fragmentation is
            the layer above's job, exactly as with the real RPC.
        """
        if frame.size_bytes > self.max_frame_bytes:
            raise FrameTooLargeError(
                f"frame is {frame.size_bytes}B; radio max is {self.max_frame_bytes}B"
            )
        if frame.origin != self.node_id:
            raise ValueError(
                f"frame.origin={frame.origin} but this radio is node {self.node_id}"
            )
        self.mac.enqueue(frame)

    def _transmit_now(self, frame: Frame) -> float:
        """(MAC-internal) put the frame on the air.  Returns airtime."""
        self.energy.charge_tx(frame.size_bits)
        self.frames_sent += 1
        airtime = self.medium.transmit(frame)
        for listener in self._tx_listeners:
            listener(frame)
        return airtime

    def add_tx_listener(self, listener: ReceiveHandler) -> None:
        """Tap invoked when one of our frames actually starts transmitting.

        Drivers use this to learn when the MAC drained their fragments
        (the MAC may queue frames arbitrarily long under contention).
        """
        self._tx_listeners.append(listener)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def set_receive_handler(self, handler: ReceiveHandler) -> None:
        """Bind the protocol driver that consumes received frames."""
        self._handler = handler

    def add_listener(self, listener: ReceiveHandler) -> None:
        """Add a promiscuous tap (e.g. the listening id selector)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: ReceiveHandler) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _deliver(self, frame: Frame) -> None:
        """(Medium-internal) a frame arrived intact."""
        self.energy.charge_rx(frame.size_bits)
        self.frames_received += 1
        for listener in self._listeners:
            listener(frame)
        if self._handler is not None:
            self._handler(frame)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Detach from the medium (node failure / power-down)."""
        self.medium.detach(self.node_id)

    def __repr__(self) -> str:
        return (
            f"<Radio node={self.node_id} sent={self.frames_sent} "
            f"recv={self.frames_received}>"
        )
