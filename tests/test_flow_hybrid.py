"""The hybrid fidelity switch.

The stitching contract under test (ISSUE 7 satellite): a hybrid run's
frame-level windows are bit-identical to the same windows of a pure
frame-level run of the same ``(scenario, seed)`` — escalation is
per-window and seed-isolated, so fidelity routing never perturbs a
window's draws.  The frame windows themselves are also checked against
a direct discrete-core replay of the same arrivals.
"""

import pytest

from repro.core.model import collision_probability_mixed
from repro.flow.hybrid import FIDELITY_MODES, frame_window, simulate
from repro.flow.sampler import sample_flow, window_plan
from repro.flow.streams import FlowScenario, TransactionStream, figure4_scenario
from repro.sim.rng import RngRegistry


def _burst_scenario() -> FlowScenario:
    """Low baseline + one contended phase that crosses the threshold."""
    streams = (
        TransactionStream("base", 2.0, 1.0),
        TransactionStream("burst", 18.0, 1.0, start=40.0, stop=60.0),
    )
    return FlowScenario(id_bits=4, horizon=100.0, window=10.0, streams=streams)


class TestFidelityRouting:
    def test_flow_mode_equals_pure_sampler(self):
        scenario = figure4_scenario(4, 5.0, horizon=100.0, window=10.0)
        assert simulate(scenario, 11, fidelity="flow") == sample_flow(
            scenario, 11
        )

    def test_hybrid_escalates_only_contended_windows(self):
        scenario = _burst_scenario()
        result = simulate(scenario, 3, fidelity="hybrid", switch_threshold=8.0)
        by_fidelity = {w.index: w.fidelity for w in result.windows}
        # Burst spans [40, 60): windows 4 and 5 carry density 20, the
        # rest stay at the baseline's density 2.
        assert by_fidelity[4] == "frame" and by_fidelity[5] == "frame"
        assert result.frame_windows == 2
        assert all(
            fidelity == "flow"
            for index, fidelity in by_fidelity.items()
            if index not in (4, 5)
        )

    def test_frame_mode_escalates_everything(self):
        scenario = _burst_scenario()
        result = simulate(scenario, 3, fidelity="frame")
        assert result.frame_windows == len(result.windows)

    def test_rejects_unknown_fidelity(self):
        scenario = _burst_scenario()
        with pytest.raises(ValueError):
            simulate(scenario, 0, fidelity="fluid")
        with pytest.raises(ValueError):
            simulate(scenario, 0, fidelity="hybrid", switch_threshold=0.0)

    def test_fidelity_modes_constant(self):
        assert set(FIDELITY_MODES) == {"flow", "frame", "hybrid"}


class TestFrameWindowBitIdentity:
    """Satellite: hybrid frame windows == pure frame run, bit for bit."""

    def test_hybrid_frame_windows_match_pure_frame_run(self):
        scenario = _burst_scenario()
        hybrid = simulate(scenario, 7, fidelity="hybrid", switch_threshold=8.0)
        frame = simulate(scenario, 7, fidelity="frame")
        frame_by_index = {w.index: w for w in frame.windows}
        escalated = [w for w in hybrid.windows if w.fidelity == "frame"]
        assert escalated, "burst must escalate at least one window"
        for window in escalated:
            assert window == frame_by_index[window.index]

    def test_hybrid_flow_windows_match_pure_flow_run(self):
        scenario = _burst_scenario()
        hybrid = simulate(scenario, 7, fidelity="hybrid", switch_threshold=8.0)
        flow = simulate(scenario, 7, fidelity="flow")
        flow_by_index = {w.index: w for w in flow.windows}
        for window in hybrid.windows:
            if window.fidelity == "flow":
                assert window == flow_by_index[window.index]

    def test_frame_window_is_pure_function_of_seed(self):
        scenario = _burst_scenario()
        spec = window_plan(scenario)[4]
        first = frame_window(scenario, spec, RngRegistry(9))
        again = frame_window(scenario, spec, RngRegistry(9))
        assert first == again
        other = frame_window(scenario, spec, RngRegistry(10))
        assert first != other

    def test_frame_window_independent_of_consumption_order(self):
        # Drawing another window first must not shift this window's
        # streams: registry streams are keyed by name, not call order.
        scenario = _burst_scenario()
        plan = window_plan(scenario)
        registry = RngRegistry(21)
        frame_window(scenario, plan[5], registry)  # consume a neighbour
        perturbed = frame_window(scenario, plan[4], registry)
        fresh = frame_window(scenario, plan[4], RngRegistry(21))
        assert perturbed == fresh


class TestFrameAccuracy:
    def test_frame_rate_tracks_model_in_stationary_window(self):
        scenario = figure4_scenario(4, 5.0, horizon=300.0, window=50.0)
        result = simulate(scenario, 13, fidelity="frame")
        expected = collision_probability_mixed(4, 5.0, [1.0])
        assert result.collision_rate == pytest.approx(expected, abs=0.06)
