"""AFF fragment wire format.

Mirrors the paper's implementation (Section 5): "A 'packet introduction'
fragment is transmitted first, containing the packet's AFF identifier,
total length, and checksum.  Each fragment is then transmitted with the
packet's AFF identifier and the byte offset of the data it carries."

The format is bit-packed so identifier size is paid *exactly*:

======================  =======================================
Introduction fragment    kind(2) | id(H) | total_length(16) | checksum(16)
Data fragment            kind(2) | id(H) | offset(16) | length(8) | payload
======================  =======================================

``H`` (the AFF identifier size in bits) parameterises the codec.  The
encoded frame is the packed bits zero-padded to a whole number of bytes;
per-fragment *logical* header bits (for the efficiency ledger) are
reported separately by :meth:`FragmentCodec.intro_header_bits` and
:meth:`FragmentCodec.data_header_bits`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..util.bits import BitReader, BitWriter, BitstreamError

__all__ = [
    "DataFragment",
    "FragmentCodec",
    "IntroFragment",
    "MalformedFragmentError",
    "NotifyFragment",
    "KIND_INTRO",
    "KIND_DATA",
    "KIND_NOTIFY",
]

KIND_INTRO = 0
KIND_DATA = 1
#: explicit identifier-collision notification (Section 3.2's suggestion for
#: the hidden-terminal problem: the shared receiver tells the senders)
KIND_NOTIFY = 2

#: field widths shared by both fragment kinds
_KIND_BITS = 2
_LENGTH_BITS = 16
_CHECKSUM_BITS = 16
_OFFSET_BITS = 16
_FRAGLEN_BITS = 8

#: the 64 KB packet limit of the paper's driver follows from 16-bit lengths
MAX_PACKET_BYTES = (1 << _LENGTH_BITS) - 1
MAX_FRAGMENT_PAYLOAD = (1 << _FRAGLEN_BITS) - 1


class MalformedFragmentError(ValueError):
    """Raised when bytes off the air do not parse as an AFF fragment."""


@dataclass(frozen=True)
class IntroFragment:
    """The packet introduction: identifier, total length, checksum."""

    identifier: int
    total_length: int
    checksum: int


@dataclass(frozen=True)
class DataFragment:
    """A data-carrying fragment: identifier, byte offset, payload."""

    identifier: int
    offset: int
    payload: bytes


@dataclass(frozen=True)
class NotifyFragment:
    """A receiver's explicit identifier-collision notification.

    Broadcast by a receiver that detected two transactions sharing
    ``identifier``; listening senders treat the identifier as hot and
    avoid it for a while.  This is the paper's proposed mitigation for
    hidden terminals, where passive listening cannot help.
    """

    identifier: int


Fragment = Union[IntroFragment, DataFragment, NotifyFragment]


class FragmentCodec:
    """Encodes/decodes AFF fragments for a given identifier size.

    Parameters
    ----------
    id_bits:
        AFF identifier size ``H``.  The central experimental knob: every
        figure in the paper sweeps it.
    """

    def __init__(self, id_bits: int):
        if not 0 <= id_bits <= 62:
            raise ValueError("id_bits must be in [0, 62]")
        self.id_bits = id_bits

    # ------------------------------------------------------------------
    # Logical header sizes (bits), for the efficiency ledger
    # ------------------------------------------------------------------
    @property
    def intro_header_bits(self) -> int:
        """Bits of protocol header in an introduction fragment."""
        return _KIND_BITS + self.id_bits + _LENGTH_BITS + _CHECKSUM_BITS

    @property
    def data_header_bits(self) -> int:
        """Bits of protocol header in a data fragment (excludes payload)."""
        return _KIND_BITS + self.id_bits + _OFFSET_BITS + _FRAGLEN_BITS

    def max_payload_in_frame(self, frame_bytes: int) -> int:
        """Largest data payload (bytes) that fits a ``frame_bytes`` frame."""
        available_bits = 8 * frame_bytes - self.data_header_bits
        payload = available_bits // 8
        if payload < 1:
            raise ValueError(
                f"{frame_bytes}-byte frames cannot carry any payload with "
                f"{self.data_header_bits}-bit data headers"
            )
        return min(payload, MAX_FRAGMENT_PAYLOAD)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_intro(self, fragment: IntroFragment) -> bytes:
        if fragment.identifier >> self.id_bits:
            raise ValueError(
                f"identifier {fragment.identifier} exceeds {self.id_bits} bits"
            )
        if not 0 <= fragment.total_length <= MAX_PACKET_BYTES:
            raise ValueError(f"total_length {fragment.total_length} out of range")
        writer = BitWriter()
        writer.write(KIND_INTRO, _KIND_BITS)
        writer.write(fragment.identifier, self.id_bits)
        writer.write(fragment.total_length, _LENGTH_BITS)
        writer.write(fragment.checksum & 0xFFFF, _CHECKSUM_BITS)
        return writer.getvalue()

    def encode_data(self, fragment: DataFragment) -> bytes:
        if fragment.identifier >> self.id_bits:
            raise ValueError(
                f"identifier {fragment.identifier} exceeds {self.id_bits} bits"
            )
        if not 0 <= fragment.offset <= MAX_PACKET_BYTES:
            raise ValueError(f"offset {fragment.offset} out of range")
        if len(fragment.payload) > MAX_FRAGMENT_PAYLOAD:
            raise ValueError(f"fragment payload of {len(fragment.payload)}B too long")
        writer = BitWriter()
        writer.write(KIND_DATA, _KIND_BITS)
        writer.write(fragment.identifier, self.id_bits)
        writer.write(fragment.offset, _OFFSET_BITS)
        writer.write(len(fragment.payload), _FRAGLEN_BITS)
        writer.write_bytes(fragment.payload)
        return writer.getvalue()

    def encode_notify(self, fragment: NotifyFragment) -> bytes:
        if fragment.identifier >> self.id_bits:
            raise ValueError(
                f"identifier {fragment.identifier} exceeds {self.id_bits} bits"
            )
        writer = BitWriter()
        writer.write(KIND_NOTIFY, _KIND_BITS)
        writer.write(fragment.identifier, self.id_bits)
        return writer.getvalue()

    @property
    def notify_bits(self) -> int:
        """Bits in a collision notification (all header, no payload)."""
        return _KIND_BITS + self.id_bits

    def encode(self, fragment: Fragment) -> bytes:
        if isinstance(fragment, IntroFragment):
            return self.encode_intro(fragment)
        if isinstance(fragment, DataFragment):
            return self.encode_data(fragment)
        if isinstance(fragment, NotifyFragment):
            return self.encode_notify(fragment)
        raise TypeError(f"not a fragment: {fragment!r}")

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, data: bytes) -> Fragment:
        """Parse bytes off the air.

        Raises
        ------
        MalformedFragmentError
            Truncated input or an unknown kind tag.  A real driver sees
            these from RF corruption; receivers must drop, not crash.
        """
        reader = BitReader(data)
        try:
            kind = reader.read(_KIND_BITS)
            identifier = reader.read(self.id_bits)
            if kind == KIND_INTRO:
                total_length = reader.read(_LENGTH_BITS)
                checksum = reader.read(_CHECKSUM_BITS)
                return IntroFragment(
                    identifier=identifier,
                    total_length=total_length,
                    checksum=checksum,
                )
            if kind == KIND_DATA:
                offset = reader.read(_OFFSET_BITS)
                length = reader.read(_FRAGLEN_BITS)
                payload = reader.read_bytes(length)
                return DataFragment(
                    identifier=identifier, offset=offset, payload=payload
                )
            if kind == KIND_NOTIFY:
                return NotifyFragment(identifier=identifier)
        except BitstreamError as exc:
            raise MalformedFragmentError(f"truncated fragment: {exc}") from exc
        raise MalformedFragmentError(f"unknown fragment kind {kind}")

    def __repr__(self) -> str:
        return f"FragmentCodec(id_bits={self.id_bits})"
