"""Hybrid fidelity: frame-level simulation inside contended windows.

The flow sampler is exact in expectation but summarises each window by
its analytic collision probability; inside heavily contended
neighbourhoods (density near or past the identifier space's capacity)
the frame-level discrete-event core is the ground truth worth paying
for.  :func:`simulate` runs one scenario at a chosen fidelity:

``flow``
    every window sampled analytically (:mod:`repro.flow.sampler`);
``frame``
    every window replayed by the discrete event core
    (:func:`repro.core.montecarlo._replay` against a
    :class:`~repro.core.transactions.TransactionLog`);
``hybrid``
    windows whose offered density reaches ``switch_threshold`` drop to
    frame fidelity, the rest stay flow-level, and the outcomes stitch
    back into one timeline.

The stitching contract is seed isolation: every window — flow or frame
— draws only from its own ``RngRegistry(seed)`` streams
(``flow.window.<k>`` for sampling, ``flow.frame.<k>.*`` for the
discrete replay), so a hybrid run's frame windows are **bit-identical**
to the same windows of an all-frame run of the same ``(scenario,
seed)``, and escalating one window never perturbs another.  The one
approximation hybrid accepts is the window boundary itself: a
transaction spanning a cut contends only inside its own window, so
windows should be sized at least several transaction durations wide
(the default scenarios are hundreds of durations wide).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.identifiers import IdentifierSpace
from ..core.montecarlo import FixedDuration, _generate_arrivals, _replay
from ..core.transactions import TransactionLog
from ..obs.envelope import TraceWriter
from ..obs.metrics import active_metrics
from ..obs.spans import span
from ..sim.rng import RngRegistry
from .sampler import FlowResult, WindowOutcome, WindowSpec, sample_window, window_plan
from .streams import FlowScenario

__all__ = ["FIDELITY_MODES", "frame_window", "simulate", "wants_frame"]

#: Supported fidelity modes, in increasing cost order.
FIDELITY_MODES: Tuple[str, ...] = ("flow", "hybrid", "frame")

#: Default density at which hybrid escalates a window to frame
#: fidelity: past ~8 concurrent transactions, small identifier spaces
#: are deep into the collision knee where the analytic model's
#: worst-case overlap count matters most.
DEFAULT_SWITCH_THRESHOLD = 8.0


def frame_window(
    scenario: FlowScenario,
    spec: WindowSpec,
    registry: RngRegistry,
    writer: Optional[TraceWriter] = None,
) -> WindowOutcome:
    """Replay one window at frame-level fidelity.

    Per-stream Poisson arrivals are generated inside the window's
    active overlap from the stream ``flow.frame.<k>.arrivals.<label>``,
    merged in time order (ties break by the scenario's stream order),
    identifiers drawn in merged arrival order from
    ``flow.frame.<k>.identifiers``, and the whole window replayed
    through the discrete event core's heap merge — the same collision
    criterion, tie rules and all, as the Monte Carlo ground truth.

    With ``writer`` the window streams one record per transaction in
    arrival order (strictly inside ``(t0, t1)``, so a range shard's
    records stay time-sorted around the window boundary records the
    caller emits at ``t0``/``t1``).
    """
    arrivals: List[Tuple[float, int, float]] = []
    for order, stream in enumerate(scenario.streams):
        lo = max(spec.t0, stream.start)
        hi = min(spec.t1, stream.stop)
        if hi <= lo or stream.arrival_rate <= 0:
            continue
        rng = registry.stream(f"flow.frame.{spec.index}.arrivals.{stream.label}")
        starts, durations = _generate_arrivals(
            stream.arrival_rate, FixedDuration(stream.duration), rng, lo, hi
        )
        arrivals.extend(zip(starts, [order] * len(starts), durations))
    arrivals.sort(key=lambda event: (event[0], event[1]))
    starts_merged = [event[0] for event in arrivals]
    durations_merged = [event[2] for event in arrivals]
    space = IdentifierSpace(scenario.id_bits)
    id_rng = registry.stream(f"flow.frame.{spec.index}.identifiers")
    sample = space.sample
    identifiers = [sample(id_rng) for _ in starts_merged]
    log = TransactionLog()
    tracked = _replay(starts_merged, durations_merged, identifiers, log, warmup=0.0)
    collided = sum(1 for txn in tracked if log.collided(txn))
    if writer is not None:
        for when, ident, txn in zip(starts_merged, identifiers, tracked):
            writer.emit(
                when,
                "flow.txn",
                window=spec.index,
                identifier=ident,
                collided=log.collided(txn),
            )
    return WindowOutcome(
        index=spec.index,
        fidelity="frame",
        transactions=len(tracked),
        collisions=collided,
        density=spec.density,
    )


def wants_frame(
    fidelity: str, spec: WindowSpec, switch_threshold: float
) -> bool:
    """Whether ``spec`` escalates to frame fidelity under ``fidelity``.

    Shared with the shard partitioner's cost model
    (:func:`repro.flow.shard.window_cost`), so partitioning and
    execution always agree on which windows pay the frame-replay cost.
    """
    if fidelity == "frame":
        return True
    if fidelity == "hybrid":
        return spec.density >= switch_threshold
    return False


def simulate(
    scenario: FlowScenario,
    seed: int,
    fidelity: str = "flow",
    switch_threshold: float = DEFAULT_SWITCH_THRESHOLD,
    model: str = "mixed",
) -> FlowResult:
    """Run ``scenario`` at the requested fidelity.

    The result is a pure function of every argument; worker count,
    profiling, and which *other* windows escalated never change a
    window's outcome (see module docstring).  ``switch_threshold`` only
    participates under ``fidelity="hybrid"`` but is always part of the
    run's identity — cache keys must include both (satellite rule
    SEED002 covers the wiring in :mod:`repro.flow.calibrate`).
    """
    if fidelity not in FIDELITY_MODES:
        raise ValueError(f"unknown fidelity {fidelity!r}")
    if switch_threshold <= 0:
        raise ValueError("switch_threshold must be positive")
    registry = RngRegistry(seed)
    metrics = active_metrics()
    outcomes: List[WindowOutcome] = []
    for spec in window_plan(scenario):
        escalate = wants_frame(fidelity, spec, switch_threshold)
        if metrics is not None:
            metrics.inc("flow.windows")
            if escalate:
                metrics.inc("flow.escalations")
        if escalate:
            with span("flow.frame"):
                outcomes.append(frame_window(scenario, spec, registry))
        else:
            with span("flow.sample"):
                rng = registry.stream(f"flow.window.{spec.index}")
                outcomes.append(
                    sample_window(spec, scenario.id_bits, rng, model)
                )
        if metrics is not None:
            outcome = outcomes[-1]
            metrics.inc("flow.transactions", outcome.transactions)
            metrics.inc("flow.collisions", outcome.collisions)
    return FlowResult(
        transactions=sum(w.transactions for w in outcomes),
        collisions=sum(w.collisions for w in outcomes),
        windows=tuple(outcomes),
    )

