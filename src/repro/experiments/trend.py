"""Benchmark trend tracking: is a tracked hot path getting slower?

``benchmarks/`` publishes one ``BENCH_<name>.json`` envelope per
benchmark run, but each run *overwrites* the previous file — useful as
"latest numbers", useless as history.  This module closes that loop:

* :func:`record_snapshot` appends the wall-time of every current
  ``BENCH_*.json`` to an append-only JSONL history file
  (``TREND.jsonl`` next to them), tagged with a monotonically
  increasing run index — no timestamps, so the history stays
  deterministic and diffable.
* :func:`analyze` compares each benchmark's latest recorded wall time
  against the best earlier run at the same fidelity and flags
  regressions beyond a relative threshold.

``python -m repro bench-trend`` drives both and exits non-zero when a
regression is flagged, so CI can gate on it.  Comparisons are only
meaningful within one machine's history — the history file is
per-checkout, not shared truth.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "TrendFinding",
    "TrendReport",
    "analyze",
    "counters_of",
    "layers_of",
    "load_history",
    "record_snapshot",
    "utilization_of",
    "wall_time_of",
]

#: default relative slowdown that counts as a regression (25%)
DEFAULT_THRESHOLD = 0.25

HISTORY_NAME = "TREND.jsonl"


def wall_time_of(payload: Dict[str, Any]) -> Optional[float]:
    """The comparable wall-time of one ``BENCH_*.json`` payload.

    Prefers pytest-benchmark's measured ``timing.mean`` (merged in at
    session finish); falls back to a ``wall_time`` the benchmark
    recorded in its metrics (e.g. run telemetry).  None when the
    payload carries neither — such files are skipped, not errors.
    """
    timing = payload.get("timing")
    if isinstance(timing, dict):
        mean = timing.get("mean")
        if isinstance(mean, (int, float)) and mean > 0:
            return float(mean)
    metrics = payload.get("metrics")
    if isinstance(metrics, dict):
        for probe in (metrics, metrics.get("telemetry")):
            if isinstance(probe, dict):
                wall = probe.get("wall_time")
                if isinstance(wall, (int, float)) and wall > 0:
                    return float(wall)
    return None


def utilization_of(payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Worker-utilization figures of one ``BENCH_*.json`` payload.

    Benchmarks that ran through the exec layer embed a telemetry
    summary in their metrics (under ``telemetry`` or ``execution``);
    this extracts the per-worker busy fractions and tasks served and
    condenses them to ``{"util": mean_busy_fraction, "tasks": total}``.
    None when the payload has no worker telemetry — single-process
    benchmarks simply have no utilization story.
    """
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return None
    for probe in (metrics, metrics.get("telemetry"), metrics.get("execution")):
        if not isinstance(probe, dict):
            continue
        utilization = probe.get("worker_utilization")
        if not isinstance(utilization, dict) or not utilization:
            continue
        fractions = [
            float(value)
            for value in utilization.values()
            if isinstance(value, (int, float))
        ]
        if not fractions:
            continue
        out: Dict[str, Any] = {
            "util": round(sum(fractions) / len(fractions), 4),
        }
        tasks = probe.get("worker_tasks")
        if isinstance(tasks, dict):
            served = [
                int(value)
                for value in tasks.values()
                if isinstance(value, (int, float))
            ]
            if served:
                out["tasks"] = sum(served)
        return out
    return None


def layers_of(payload: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """Per-layer wall-time breakdown of one ``BENCH_*.json`` payload.

    Benchmarks run with span profiling on (see :mod:`repro.obs.spans`)
    carry a ``layer_times`` dict in their telemetry summary; this pulls
    it out so the trend history records *where* each run's wall time
    went, not just how much there was.  None when absent or all-zero.
    """
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return None
    for probe in (metrics, metrics.get("telemetry"), metrics.get("execution")):
        if not isinstance(probe, dict):
            continue
        layers = probe.get("layer_times")
        if not isinstance(layers, dict) or not layers:
            continue
        out = {
            str(layer): float(total)
            for layer, total in layers.items()
            if isinstance(total, (int, float))
        }
        if out and any(total > 0 for total in out.values()):
            return out
    return None


def counters_of(payload: Dict[str, Any]) -> Optional[Dict[str, int]]:
    """Deterministic metric counters of one ``BENCH_*.json`` payload.

    Benchmarks that run with a metrics registry collecting (see
    :mod:`repro.obs.metrics`) publish a ``counters`` dict — simulated
    quantities like ``flow.collisions`` or ``aff.checksum_failures``
    that are pure functions of the scenario and seed.  Recording them
    in the trend history catches *behavioural* drift (a benchmark that
    got faster because it simulated less) that wall time alone hides.
    None when absent or empty.
    """
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return None
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        return None
    out = {
        str(name): int(value)
        for name, value in counters.items()
        if isinstance(value, int) and not isinstance(value, bool)
    }
    return out or None


def load_history(history_path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Parse the JSONL history; unparseable lines are dropped."""
    path = pathlib.Path(history_path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and "name" in entry and "wall" in entry:
            entries.append(entry)
    return entries


def record_snapshot(
    results_dir: Union[str, pathlib.Path],
    history_path: Optional[Union[str, pathlib.Path]] = None,
) -> int:
    """Append every current ``BENCH_*.json`` wall time to the history.

    Returns the number of benchmarks recorded.  Recording is a no-op
    for envelopes without a usable wall time (no timing merged yet).
    """
    from .persistence import EnvelopeError, load_envelope

    results = pathlib.Path(results_dir)
    history = pathlib.Path(
        history_path if history_path is not None else results / HISTORY_NAME
    )
    run = 1 + max((e.get("run", 0) for e in load_history(history)), default=0)
    lines = []
    for path in sorted(results.glob("BENCH_*.json")):
        try:
            payload = load_envelope(path, "benchmark")
        except (EnvelopeError, OSError):
            continue
        wall = wall_time_of(payload)
        if wall is None:
            continue
        fidelity = payload.get("fidelity", {})
        entry = {
            "run": run,
            "name": payload.get("name", path.stem),
            "wall": wall,
            "full": bool(
                fidelity.get("full") if isinstance(fidelity, dict) else False
            ),
        }
        utilization = utilization_of(payload)
        if utilization is not None:
            entry.update(utilization)
        layers = layers_of(payload)
        if layers is not None:
            entry["layers"] = {
                layer: round(total, 6) for layer, total in sorted(layers.items())
            }
        counters = counters_of(payload)
        if counters is not None:
            entry["counters"] = dict(sorted(counters.items()))
        lines.append(json.dumps(entry, sort_keys=True))
    if lines:
        history.parent.mkdir(parents=True, exist_ok=True)
        with history.open("a") as out:
            for line in lines:
                out.write(line + "\n")
    return len(lines)


@dataclass
class TrendFinding:
    """One benchmark's latest run vs its best earlier run."""

    name: str
    latest: float
    baseline: Optional[float]  # None = first sighting, nothing to compare
    ratio: Optional[float]
    regressed: bool
    #: mean worker busy fraction of the latest run, when recorded
    util: Optional[float] = None
    #: total tasks served by workers in the latest run, when recorded
    tasks: Optional[int] = None
    #: per-layer wall-time breakdown of the latest run, when recorded
    layers: Optional[Dict[str, float]] = None
    #: deterministic metric counters of the latest run, when recorded
    counters: Optional[Dict[str, int]] = None
    #: counters that changed vs the previous run at the same fidelity
    counter_drift: Optional[Dict[str, tuple]] = None

    def render(self) -> str:
        extra = ""
        if self.util is not None:
            extra = f", {self.util:.0%} worker util"
            if self.tasks is not None:
                extra += f" over {self.tasks} task(s)"
        if self.layers:
            hot = sorted(
                (
                    (layer, total)
                    for layer, total in self.layers.items()
                    if total > 0
                ),
                key=lambda item: (-item[1], item[0]),
            )
            if hot:
                extra += " [" + ", ".join(
                    f"{layer} {total:.3f}s" for layer, total in hot[:3]
                ) + "]"
        if self.counter_drift:
            extra += " {" + ", ".join(
                f"{name} {before}->{after}"
                for name, (before, after) in sorted(self.counter_drift.items())
            ) + "}"
        if self.baseline is None:
            return f"{self.name}: {self.latest:.4f}s (first recorded run){extra}"
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name}: {self.latest:.4f}s vs best {self.baseline:.4f}s "
            f"({self.ratio:+.1%}) {verdict}{extra}"
        )


@dataclass
class TrendReport:
    """Findings for every tracked benchmark."""

    threshold: float
    findings: List[TrendFinding] = field(default_factory=list)

    @property
    def regressions(self) -> List[TrendFinding]:
        return [f for f in self.findings if f.regressed]

    def render(self) -> str:
        if not self.findings:
            return "bench-trend: no benchmark history to compare"
        lines = [f.render() for f in self.findings]
        lines.append(
            f"bench-trend: {len(self.regressions)} regression(s) beyond "
            f"{self.threshold:.0%} across {len(self.findings)} benchmark(s)"
        )
        return "\n".join(lines)


def analyze(
    history: List[Dict[str, Any]], threshold: float = DEFAULT_THRESHOLD
) -> TrendReport:
    """Compare each benchmark's latest run against its best earlier one.

    The baseline is the *minimum* earlier wall time at the same
    fidelity — the best this machine has ever done — so a regression
    means "slower than we know this code can run here", robust to a
    noisy single previous run.  Mixed-fidelity histories never
    cross-contaminate (a REPRO_FULL=1 run is not a regression of a
    reduced run).
    """
    report = TrendReport(threshold=threshold)
    by_key: Dict[tuple, List[Dict[str, Any]]] = {}
    for entry in history:
        by_key.setdefault((entry["name"], bool(entry.get("full"))), []).append(entry)
    for (name, _full), entries in sorted(by_key.items()):
        entries = sorted(entries, key=lambda e: e.get("run", 0))
        newest = entries[-1]
        latest = float(newest["wall"])
        util = newest.get("util")
        tasks = newest.get("tasks")
        util = float(util) if isinstance(util, (int, float)) else None
        tasks = int(tasks) if isinstance(tasks, (int, float)) else None
        layers = newest.get("layers")
        layers = dict(layers) if isinstance(layers, dict) and layers else None
        counters = newest.get("counters")
        counters = (
            dict(counters) if isinstance(counters, dict) and counters else None
        )
        # Counters are pure functions of (scenario, seed): any change
        # vs the previous recorded run means the benchmark simulated
        # something different, which a wall-time ratio cannot explain.
        drift: Optional[Dict[str, tuple]] = None
        if counters is not None:
            for previous in reversed(entries[:-1]):
                before = previous.get("counters")
                if not isinstance(before, dict):
                    continue
                drift = {
                    str(key): (before[key], counters[key])
                    for key in sorted(set(before) & set(counters))
                    if before[key] != counters[key]
                } or None
                break
        earlier = [float(e["wall"]) for e in entries[:-1]]
        if not earlier:
            report.findings.append(
                TrendFinding(
                    name=name,
                    latest=latest,
                    baseline=None,
                    ratio=None,
                    regressed=False,
                    util=util,
                    tasks=tasks,
                    layers=layers,
                    counters=counters,
                    counter_drift=drift,
                )
            )
            continue
        baseline = min(earlier)
        ratio = (latest - baseline) / baseline if baseline > 0 else 0.0
        report.findings.append(
            TrendFinding(
                name=name,
                latest=latest,
                baseline=baseline,
                ratio=ratio,
                regressed=ratio > threshold,
                util=util,
                tasks=tasks,
                layers=layers,
                counters=counters,
                counter_drift=drift,
            )
        )
    return report
