"""Identifier-allocation policies: RETRI vs the alternatives of Section 2.

Every policy answers the same two questions for a protocol driver:

* how many header bits does an identifier cost (``header_bits``), and
* which identifier should this node's next transaction carry
  (:meth:`transaction_identifier`).

Four policies span the paper's design space:

* :class:`RetriPolicy` — ephemeral random identifiers (the paper's
  proposal); may collide, costs nothing to maintain.
* :class:`StaticGlobalPolicy` — Ethernet-style permanent unique
  addresses (48 bits; we also evaluate 32 and 16): collision-free, large.
* :class:`StaticLocalPolicy` — a hypothetical optimal central assignment
  of ``ceil(log2 N)``-bit addresses: the best any static scheme can do,
  and infeasible to maintain in a real decentralised, dynamic network.
* :class:`DynamicLocalPolicy` — decentralised claim/defend address
  allocation (the SDR/MASC/DHCP family of Section 2.2): locally unique
  addresses maintained by *protocol traffic*, whose cost grows with
  churn (Section 2.3's argument for why this loses at low data rates).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, Optional, Set

from ..sim.rng import fallback_stream
from .identifiers import IdentifierSelector, IdentifierSpace, UniformSelector

__all__ = [
    "AllocationPolicy",
    "ColoringLocalPolicy",
    "DynamicLocalPolicy",
    "RetriPolicy",
    "StaticGlobalPolicy",
    "StaticLocalPolicy",
]


class AllocationPolicy:
    """Common interface for identifier allocation schemes."""

    #: bits each transmitted identifier occupies in a header
    header_bits: int

    def transaction_identifier(self, node: int) -> int:
        """The identifier ``node``'s next transaction should carry."""
        raise NotImplementedError

    def transaction_finished(self, node: int, identifier: int) -> None:
        """Hook: the transaction using ``identifier`` completed."""

    @property
    def control_bits_spent(self) -> int:
        """Protocol-maintenance bits transmitted so far (0 for most)."""
        return 0

    @property
    def collision_free(self) -> bool:
        """Whether identifier collisions are impossible by construction."""
        return False


class RetriPolicy(AllocationPolicy):
    """RETRI: a fresh probabilistically unique identifier per transaction.

    Parameters
    ----------
    id_bits:
        Size of the identifier space.
    selector_factory:
        ``(node, space) -> IdentifierSelector``; defaults to per-node
        :class:`UniformSelector` streams seeded from ``rng``.
    """

    def __init__(
        self,
        id_bits: int,
        selector_factory=None,
        rng: Optional[random.Random] = None,
    ):
        self.space = IdentifierSpace(id_bits)
        self.header_bits = id_bits
        self._rng = rng if rng is not None else fallback_stream("core.RetriPolicy")
        self._factory = selector_factory
        self._selectors: Dict[int, IdentifierSelector] = {}

    def selector_for(self, node: int) -> IdentifierSelector:
        selector = self._selectors.get(node)
        if selector is None:
            if self._factory is not None:
                selector = self._factory(node, self.space)
            else:
                seed = self._rng.getrandbits(64)
                selector = UniformSelector(self.space, random.Random(seed))
            self._selectors[node] = selector
        return selector

    def transaction_identifier(self, node: int) -> int:
        return self.selector_for(node).select()

    def transaction_finished(self, node: int, identifier: int) -> None:
        self.selector_for(node).note_transaction_end(identifier)


class StaticGlobalPolicy(AllocationPolicy):
    """Permanent, globally unique addresses (Ethernet-style).

    Addresses are assigned at "manufacture time": node ``i`` gets a
    distinct ``addr_bits``-bit value.  Collision-free by construction.
    """

    def __init__(self, addr_bits: int = 48, rng: Optional[random.Random] = None):
        if addr_bits < 1:
            raise ValueError("addr_bits must be >= 1")
        self.header_bits = addr_bits
        self._space_size = 1 << addr_bits
        self._assigned: Dict[int, int] = {}
        self._used: Set[int] = set()
        self._rng = rng if rng is not None else fallback_stream("core.StaticGlobalPolicy")

    @property
    def collision_free(self) -> bool:
        return True

    def transaction_identifier(self, node: int) -> int:
        address = self._assigned.get(node)
        if address is None:
            if len(self._used) >= self._space_size:
                raise RuntimeError(
                    f"{self.header_bits}-bit global address space exhausted"
                )
            # Distributed manufacture-time assignment: random but unique,
            # like OUI-based Ethernet addresses.
            while True:
                address = self._rng.randrange(self._space_size)
                if address not in self._used:
                    break
            self._assigned[node] = address
            self._used.add(address)
        return address


class StaticLocalPolicy(AllocationPolicy):
    """Idealised optimal local assignment: ``ceil(log2 N)`` bits, dense.

    The paper's "if addresses are assigned optimally, about 16 bits will
    be sufficient" bound.  Requires global coordination the paper argues
    is unavailable in practice; included as the strongest static
    baseline.
    """

    def __init__(self, nodes: Iterable[int]):
        node_list = sorted(set(nodes))
        if not node_list:
            raise ValueError("StaticLocalPolicy needs at least one node")
        self.header_bits = max(1, math.ceil(math.log2(len(node_list))))
        self._assigned = {node: index for index, node in enumerate(node_list)}

    @property
    def collision_free(self) -> bool:
        return True

    def transaction_identifier(self, node: int) -> int:
        try:
            return self._assigned[node]
        except KeyError:
            raise KeyError(
                f"node {node} joined after static assignment; static local "
                "allocation cannot address it without re-running allocation"
            ) from None


class ColoringLocalPolicy(AllocationPolicy):
    """Spatially reused local addresses via 2-hop graph colouring.

    The strongest form of Section 2.2's "explicit scoping to achieve
    spatial reuse of addresses": nodes that could ever be confused at a
    common receiver — neighbours, or nodes sharing a neighbour — get
    distinct addresses; everyone else may reuse them.  Address size is
    then ``ceil(log2(colours))``, which tracks the network's *density*
    (like RETRI) rather than its size (like global addressing).

    The catch, and the paper's argument: computing and *maintaining*
    this colouring needs global knowledge and re-coordination on every
    topology change — exactly what a dynamic, decentralised sensor
    network cannot afford.  ``recolor()`` exposes that cost: callers
    count how often dynamics force it.
    """

    def __init__(self, topology):
        self._topology = topology
        self._assigned: Dict[int, int] = {}
        self.header_bits = 1
        self.colorings_computed = 0
        self.recolor()

    @property
    def collision_free(self) -> bool:
        return True

    @property
    def colors_used(self) -> int:
        return (max(self._assigned.values()) + 1) if self._assigned else 0

    def _conflicts(self, node: int) -> set:
        """Nodes that must not share ``node``'s address (2-hop rule)."""
        neighbors = self._topology.neighbors(node)
        conflicts = set(neighbors)
        for peer in neighbors:
            conflicts |= self._topology.neighbors(peer)
        conflicts.discard(node)
        return conflicts

    def recolor(self) -> int:
        """(Re)compute the colouring for the current topology.

        Greedy, highest-degree first — not optimal, but within the usual
        Δ+1 style bound and deterministic.  Returns the colour count.
        """
        self.colorings_computed += 1
        self._assigned.clear()
        order = sorted(
            self._topology.nodes,
            key=lambda n: (-len(self._topology.neighbors(n)), n),
        )
        for node in order:
            taken = {
                self._assigned[peer]
                for peer in self._conflicts(node)
                if peer in self._assigned
            }
            color = 0
            while color in taken:
                color += 1
            self._assigned[node] = color
        colors = self.colors_used
        self.header_bits = max(1, math.ceil(math.log2(max(2, colors))))
        return colors

    def transaction_identifier(self, node: int) -> int:
        try:
            return self._assigned[node]
        except KeyError:
            raise KeyError(
                f"node {node} is not covered by the current colouring; "
                "topology changed — recolor() required"
            ) from None

    def is_valid(self) -> bool:
        """Check the 2-hop uniqueness invariant against the topology."""
        for node in self._topology.nodes:
            if node not in self._assigned:
                return False
            mine = self._assigned[node]
            for peer in self._conflicts(node):
                if self._assigned.get(peer) == mine:
                    return False
        return True


class DynamicLocalPolicy(AllocationPolicy):
    """Decentralised claim-and-defend local address allocation.

    Joining nodes pick a random candidate address, broadcast a *claim*,
    and listen for *conflict* replies from neighbours already holding
    it; on conflict they retry with a fresh candidate.  This is the
    listen/claim/resolve family the paper cites (SDR, MASC) reduced to
    its cost essentials:

    * every claim broadcast costs ``addr_bits + claim_overhead_bits``;
    * every conflict reply costs the same again (a defending node must
      transmit);
    * every *churn event* (join, or a leave that triggers readdressing)
      forces new protocol traffic.

    The running total is exposed as :attr:`control_bits_spent`, which the
    Section 2.3 benchmark amortises against useful data to show where
    dynamic allocation stops paying for itself.
    """

    def __init__(
        self,
        addr_bits: int,
        claim_overhead_bits: int = 16,
        max_attempts: int = 64,
        rng: Optional[random.Random] = None,
    ):
        if addr_bits < 1:
            raise ValueError("addr_bits must be >= 1")
        if claim_overhead_bits < 0:
            raise ValueError("claim_overhead_bits must be >= 0")
        self.header_bits = addr_bits
        self.claim_overhead_bits = claim_overhead_bits
        self.max_attempts = max_attempts
        self._space_size = 1 << addr_bits
        self._rng = rng if rng is not None else fallback_stream("core.DynamicLocalPolicy")
        self._assigned: Dict[int, int] = {}
        self._control_bits = 0
        self.claims_sent = 0
        self.conflicts_resolved = 0

    @property
    def collision_free(self) -> bool:
        """Collision-free once allocation converges (conflicts resolved)."""
        return True

    @property
    def control_bits_spent(self) -> int:
        return self._control_bits

    def _claim_cost(self) -> int:
        return self.header_bits + self.claim_overhead_bits

    def join(self, node: int, neighbor_addresses: Optional[Set[int]] = None) -> int:
        """Run the allocation protocol for a joining node.

        ``neighbor_addresses`` is the set of addresses in use within
        radio range (what claims/conflicts can actually detect).  When
        None, all currently assigned addresses are considered in range —
        the fully connected worst case.
        """
        if neighbor_addresses is None:
            neighbor_addresses = set(self._assigned.values())
        taken = set(neighbor_addresses)
        for _attempt in range(self.max_attempts):
            candidate = self._rng.randrange(self._space_size)
            self._control_bits += self._claim_cost()  # the claim broadcast
            self.claims_sent += 1
            if candidate in taken:
                # A holder defends: one conflict reply on the air.
                self._control_bits += self._claim_cost()
                self.conflicts_resolved += 1
                continue
            self._assigned[node] = candidate
            return candidate
        raise RuntimeError(
            f"dynamic allocation failed to converge in {self.max_attempts} "
            f"attempts: {len(taken)} of {self._space_size} addresses taken"
        )

    def leave(self, node: int) -> None:
        """Node departed; its address returns to the pool."""
        self._assigned.pop(node, None)

    def address_of(self, node: int) -> Optional[int]:
        return self._assigned.get(node)

    def transaction_identifier(self, node: int) -> int:
        address = self._assigned.get(node)
        if address is None:
            address = self.join(node)
        return address

    def assigned_count(self) -> int:
        return len(self._assigned)
