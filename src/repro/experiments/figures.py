"""Regeneration of every figure in the paper's evaluation.

Each ``figure_N`` function returns the figure's curves as
:class:`~repro.experiments.results.Series` plus a rendered
:class:`~repro.experiments.results.Table`, so benchmarks can both print
the rows and assert on the shapes (peak positions, orderings,
crossovers) the paper claims.

* Figure 1 — analytic efficiency vs identifier bits, 16-bit data;
  AFF at T = 16 / 256 / 65536 against flat 16- and 32-bit static lines.
* Figure 2 — the same with 128-bit data.
* Figure 3 — efficiency vs offered load (transaction density) at fixed
  identifier sizes; static allocation hits its exhaustion cliff, AFF
  degrades gracefully.
* Figure 4 — simulated validation: measured collision-loss rate of the
  real AFF driver stack (uniform and listening selection) vs the Eq. 4
  model at T = 5, with mean ± stddev over replicated trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core import model
from ..exec import TrialRunner
from .harness import CollisionTrialConfig, replicate
from .results import Series, Table

__all__ = [
    "FigureResult",
    "figure_1",
    "figure_2",
    "figure_3",
    "figure_4",
    "FIG1_DENSITIES",
    "FIG4_DEFAULT_ID_BITS",
]

#: the three AFF transaction densities plotted in Figures 1 and 2
FIG1_DENSITIES = (16, 256, 65536)

#: identifier sizes swept by the default Figure 4 run
FIG4_DEFAULT_ID_BITS = (2, 3, 4, 5, 6, 8, 10)


@dataclass
class FigureResult:
    """A regenerated figure: its curves and a printable table."""

    name: str
    series: List[Series]
    table: Table

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"{self.name} has no series {label!r}")

    def render(self) -> str:
        return self.table.render()


# ----------------------------------------------------------------------
# Figures 1 and 2: efficiency vs identifier size (analytic)
# ----------------------------------------------------------------------
def _efficiency_figure(
    name: str,
    data_bits: int,
    densities: Sequence[int] = FIG1_DENSITIES,
    static_bits: Sequence[int] = (16, 32),
    bits_range: Tuple[int, int] = (1, 32),
) -> FigureResult:
    series: List[Series] = []
    for density in densities:
        bits, eff = model.sweep_aff_efficiency(data_bits, density, bits_range)
        series.append(
            Series(label=f"AFF T={density}", x=list(bits), y=[float(e) for e in eff])
        )
    lo, hi = bits_range
    xs = list(range(lo, hi + 1))
    for sb in static_bits:
        e = model.efficiency_static(data_bits, sb)
        series.append(Series(label=f"static {sb}-bit", x=list(map(float, xs)), y=[e] * len(xs)))

    table = Table(
        f"{name}: efficiency vs identifier size ({data_bits}-bit data)",
        ["id bits"] + [s.label for s in series],
    )
    for i, x in enumerate(xs):
        table.add_row(x, *[s.y[i] for s in series])

    # Summary rows the paper quotes: optimum per density.
    summary = Table(
        f"{name} optima",
        ["series", "optimal id bits", "peak efficiency"],
    )
    for density in densities:
        best_bits, best_eff = model.optimal_identifier_bits(data_bits, density)
        summary.add_row(f"AFF T={density}", best_bits, best_eff)
    table.rows.append([""] * len(table.headers))
    for row in summary.rows:
        padded = row + [""] * (len(table.headers) - len(row))
        table.rows.append(padded)
    return FigureResult(name=name, series=series, table=table)


def figure_1(bits_range: Tuple[int, int] = (1, 32)) -> FigureResult:
    """Figure 1: 16-bit data.  AFF(T=16) should peak at 9 identifier bits."""
    return _efficiency_figure("Figure 1", data_bits=16, bits_range=bits_range)


def figure_2(bits_range: Tuple[int, int] = (1, 32)) -> FigureResult:
    """Figure 2: 128-bit data.  Statics rise; AFF optima shift right."""
    return _efficiency_figure("Figure 2", data_bits=128, bits_range=bits_range)


# ----------------------------------------------------------------------
# Figure 3: efficiency vs offered load
# ----------------------------------------------------------------------
def figure_3(
    data_bits: int = 16,
    id_bits_options: Sequence[int] = (9, 16),
    static_bits: int = 16,
    densities: Optional[Sequence[float]] = None,
) -> FigureResult:
    """Figure 3: how efficiency degrades as transaction density grows.

    Static allocation is flat until its address space is exhausted
    (``T > 2^H``), undefined beyond (rendered NaN); AFF keeps operating,
    degrading smoothly.
    """
    if densities is None:
        densities = [float(2**k) for k in range(0, 21)]  # 1 .. ~1M, log-spaced
    series: List[Series] = []
    static_eff = model.efficiency_static(data_bits, static_bits)
    static_series = Series(label=f"static {static_bits}-bit")
    for density in densities:
        exhausted = model.static_space_exhausted(static_bits, density)
        static_series.append(density, float("nan") if exhausted else static_eff)
    series.append(static_series)

    for id_bits in id_bits_options:
        s = Series(label=f"AFF {id_bits}-bit")
        for density in densities:
            s.append(density, model.efficiency_aff(data_bits, id_bits, density))
        series.append(s)

    envelope = Series(label="AFF optimal-H envelope")
    for density in densities:
        _, best = model.optimal_identifier_bits(data_bits, density)
        envelope.append(density, best)
    series.append(envelope)

    table = Table(
        f"Figure 3: efficiency vs load ({data_bits}-bit data)",
        ["density T"] + [s.label for s in series],
    )
    for i, density in enumerate(densities):
        table.add_row(density, *[s.y[i] for s in series])
    return FigureResult(name="Figure 3", series=series, table=table)


# ----------------------------------------------------------------------
# Figure 4: simulated validation of the collision model
# ----------------------------------------------------------------------
def figure_4(
    id_bits_list: Sequence[int] = FIG4_DEFAULT_ID_BITS,
    trials: int = 10,
    duration: float = 120.0,
    n_senders: int = 5,
    seed: int = 0,
    runner: Optional[TrialRunner] = None,
) -> FigureResult:
    """Figure 4: model vs measured collision rate, random vs listening.

    Runs the full simulated stack (radios, MAC, fragmentation driver,
    instrumented receiver).  ``duration`` and ``trials`` default to the
    paper's 120 s x 10; benchmarks shrink them for runtime and note so.
    ``runner`` fans the replicated trials out across worker processes
    (and serves repeats from the result cache) without changing a
    single output byte; see :mod:`repro.exec`.
    """
    model_series = Series(label=f"model T={n_senders}")
    uniform_series = Series(label="measured random")
    listening_series = Series(label="measured listening")

    for id_bits in id_bits_list:
        model_series.append(
            id_bits, float(model.collision_probability(id_bits, n_senders))
        )
        for selector, series in (
            ("uniform", uniform_series),
            ("listening", listening_series),
        ):
            config = CollisionTrialConfig(
                id_bits=id_bits,
                n_senders=n_senders,
                duration=duration,
                selector=selector,
                seed=seed,
            )
            mean, stdev, _results = replicate(config, trials=trials, runner=runner)
            series.append(id_bits, mean, yerr=stdev)

    table = Table(
        f"Figure 4: collision rate, model vs measured "
        f"(T={n_senders}, {trials} trials x {duration:.0f}s)",
        [
            "id bits",
            "model",
            "random mean",
            "random sd",
            "listening mean",
            "listening sd",
        ],
    )
    for i, id_bits in enumerate(id_bits_list):
        table.add_row(
            id_bits,
            model_series.y[i],
            uniform_series.y[i],
            (uniform_series.yerr or [0.0] * len(id_bits_list))[i],
            listening_series.y[i],
            (listening_series.yerr or [0.0] * len(id_bits_list))[i],
        )
    return FigureResult(
        name="Figure 4",
        series=[model_series, uniform_series, listening_series],
        table=table,
    )
