"""Terminal (ASCII) rendering of result series.

The reproduction is a terminal-first artifact: benchmarks print tables,
and this module renders the figures themselves as ASCII charts so a
user can *see* Figure 1's peak or Figure 4's separation without leaving
the shell.  Supports linear and log-x axes, multiple overlaid series
with distinct glyphs, and optional error bars (rendered as vertical
whiskers when they exceed one cell).

No external plotting dependency — the offline environments this targets
rarely have one.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .results import Series

__all__ = ["AsciiChart", "render_series"]

#: glyphs assigned to series in order
_GLYPHS = "ox+*#@%&"


class AsciiChart:
    """A character-cell canvas with data-space axes."""

    def __init__(
        self,
        width: int = 72,
        height: int = 20,
        x_log: bool = False,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
    ):
        if width < 16 or height < 6:
            raise ValueError("chart must be at least 16x6 cells")
        self.width = width
        self.height = height
        self.x_log = x_log
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self._series: List[Series] = []

    def add(self, series: Series) -> None:
        if len(series.x) == 0:
            raise ValueError(f"series {series.label!r} is empty")
        self._series.append(series)

    # ------------------------------------------------------------------
    def _x_transform(self, x: float) -> float:
        if self.x_log:
            if x <= 0:
                raise ValueError("log-x chart cannot plot x <= 0")
            return math.log10(x)
        return x

    def _bounds(self):
        xs = []
        ys = []
        for s in self._series:
            for x, y in zip(s.x, s.y):
                if math.isnan(y):
                    continue
                xs.append(self._x_transform(x))
                ys.append(y)
        if not xs:
            raise ValueError("nothing to plot")
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        # A little vertical headroom so peaks do not sit on the frame.
        pad = 0.05 * (y_hi - y_lo)
        return x_lo, x_hi, y_lo - pad, y_hi + pad

    def render(self) -> str:
        """Draw all series onto the canvas and return the text."""
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def cell(x: float, y: float):
            cx = (self._x_transform(x) - x_lo) / (x_hi - x_lo)
            cy = (y - y_lo) / (y_hi - y_lo)
            col = min(self.width - 1, max(0, round(cx * (self.width - 1))))
            row = min(self.height - 1, max(0, round((1 - cy) * (self.height - 1))))
            return row, col

        for index, series in enumerate(self._series):
            glyph = _GLYPHS[index % len(_GLYPHS)]
            for i, (x, y) in enumerate(zip(series.x, series.y)):
                if math.isnan(y):
                    continue
                row, col = cell(x, y)
                # Error whiskers first so the marker overwrites their center.
                if series.yerr is not None and i < len(series.yerr):
                    err = series.yerr[i]
                    if err > 0:
                        top, _ = cell(x, min(y + err, y_hi))
                        bottom, _ = cell(x, max(y - err, y_lo))
                        for r in range(top, bottom + 1):
                            if grid[r][col] == " ":
                                grid[r][col] = "|"
                grid[row][col] = glyph

        # Assemble with a frame and y-axis tick labels.
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        label_width = 10
        for row_index, row in enumerate(grid):
            frac = 1 - row_index / (self.height - 1)
            value = y_lo + frac * (y_hi - y_lo)
            if row_index % max(1, (self.height - 1) // 4) == 0 or row_index == self.height - 1:
                label = f"{value:>{label_width}.4g} |"
            else:
                label = " " * label_width + " |"
            lines.append(label + "".join(row))
        x_axis = " " * label_width + " +" + "-" * self.width
        lines.append(x_axis)
        left = f"{self._format_x(x_lo)}"
        right = f"{self._format_x(x_hi)}"
        spacer = " " * max(1, self.width - len(left) - len(right))
        lines.append(" " * (label_width + 2) + left + spacer + right)
        if self.x_label:
            lines.append(" " * (label_width + 2) + self.x_label)
        legend = "   ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]} {s.label}" for i, s in enumerate(self._series)
        )
        lines.append("  legend: " + legend)
        return "\n".join(lines)

    def _format_x(self, transformed: float) -> str:
        if self.x_log:
            return f"1e{transformed:.1f}"
        return f"{transformed:.4g}"


def render_series(
    series_list: Sequence[Series],
    title: str = "",
    x_label: str = "",
    width: int = 72,
    height: int = 20,
    x_log: bool = False,
) -> str:
    """Convenience one-shot: overlay ``series_list`` on one chart."""
    chart = AsciiChart(
        width=width, height=height, x_log=x_log, title=title, x_label=x_label
    )
    for series in series_list:
        chart.add(series)
    return chart.render()
