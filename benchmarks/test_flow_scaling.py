"""Extension: flow-level fidelity makes massive scenarios tractable.

The frame-level core replays every individual frame, so a 10k-node
field at sensible duty cycles (~1.2M transactions over ten minutes) is
far beyond an interactive budget.  The flow core samples collisions per
concurrency window from the calibrated analytic model instead
(``docs/flow.md``), and this benchmark quantifies the claim from the
scenario family it ships with: the 10k-node run completes in seconds,
scaling linearly in offered load rather than in frames on the air.

Published metrics carry ``wall_time`` and a ``layer_times`` breakdown
(the ``flow`` bucket), so ``repro bench-trend`` tracks both the wall
time and where it went.
"""

from conftest import FULL_FIDELITY
from repro.experiments.results import Table
from repro.flow import massive_scenario, scenario_peak_density, simulate
from repro.obs.spans import SpanProfiler, layer_breakdown, profiling

SIZES = (2_000, 10_000, 20_000) if FULL_FIDELITY else (1_000, 4_000, 10_000)
HORIZON = 600.0 if FULL_FIDELITY else 120.0
WALL_BUDGET = 60.0  # the ISSUE acceptance bar for the 10k-node run
SEED = 0


def run_flow_scaling():
    clock = SpanProfiler.clock
    profiler = SpanProfiler()
    rows = []
    with profiling(profiler):
        for n_nodes in SIZES:
            scenario = massive_scenario(n_nodes=n_nodes, horizon=HORIZON)
            t0 = clock()
            result = simulate(scenario, SEED, fidelity="flow")
            wall = clock() - t0
            rows.append(
                {
                    "nodes": n_nodes,
                    "peak_density": scenario_peak_density(scenario),
                    "transactions": result.transactions,
                    "collision_rate": result.collision_rate,
                    "wall_time": wall,
                }
            )
    return rows, profiler.to_json()


def test_flow_scaling(benchmark, publish):
    rows, spans = benchmark.pedantic(run_flow_scaling, rounds=1, iterations=1)

    table = Table(
        f"Extension: flow-level wall time vs network size "
        f"({HORIZON:.0f}s horizon)",
        ["nodes", "peak density", "transactions", "collision rate",
         "wall time (s)"],
    )
    for row in rows:
        table.add_row(
            row["nodes"],
            round(row["peak_density"], 1),
            row["transactions"],
            round(row["collision_rate"], 4),
            round(row["wall_time"], 3),
        )
    total_wall = sum(row["wall_time"] for row in rows)
    layers = layer_breakdown(spans)
    publish(
        "flow_scaling",
        table.render(),
        metrics={
            "sizes": list(SIZES),
            "horizon": HORIZON,
            "rows": rows,
            "wall_time": total_wall,
            "layer_times": {k: round(v, 6) for k, v in layers.items()},
            "largest_wall_time": rows[-1]["wall_time"],
        },
    )

    largest = rows[-1]
    # The acceptance bar: the 10k-node family runs in well under a
    # minute at flow fidelity (frame-level replay is ~1.2M transactions
    # and infeasible interactively).
    assert largest["nodes"] >= 10_000
    assert largest["wall_time"] < WALL_BUDGET
    # Offered load scales linearly with the node count...
    ratio = SIZES[-1] / SIZES[0]
    growth = rows[-1]["transactions"] / rows[0]["transactions"]
    assert 0.5 * ratio < growth < 2.0 * ratio
    # ...and the time went to the flow layer, visibly in the breakdown.
    assert layers.get("flow", 0.0) > 0.0
