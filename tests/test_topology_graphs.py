"""Unit tests for connectivity topologies."""

import random

import pytest

from repro.topology.graphs import (
    DiskGraph,
    ExplicitGraph,
    FullMesh,
    Grid,
    Line,
    Star,
)


class TestFullMesh:
    def test_everyone_hears_everyone(self):
        mesh = FullMesh(range(4))
        for node in range(4):
            assert mesh.neighbors(node) == set(range(4)) - {node}

    def test_unknown_node_has_no_neighbors(self):
        assert FullMesh(range(3)).neighbors(99) == set()

    def test_membership_and_len(self):
        mesh = FullMesh([1, 2, 3])
        assert 2 in mesh
        assert 9 not in mesh
        assert len(mesh) == 3

    def test_remove_node(self):
        mesh = FullMesh(range(3))
        mesh.remove_node(1)
        assert mesh.neighbors(0) == {2}

    def test_edge_count(self):
        mesh = FullMesh(range(5))
        assert len(mesh.edges()) == 10  # C(5,2)


class TestExplicitGraph:
    def test_edges_are_symmetric(self):
        g = ExplicitGraph(edges=[(0, 1), (1, 2)])
        assert g.connected(0, 1) and g.connected(1, 0)
        assert not g.connected(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ExplicitGraph(edges=[(1, 1)])

    def test_remove_node_clears_incident_edges(self):
        g = ExplicitGraph(edges=[(0, 1), (1, 2)])
        g.remove_node(1)
        assert g.neighbors(0) == set()
        assert g.neighbors(2) == set()

    def test_remove_edge(self):
        g = ExplicitGraph(edges=[(0, 1)])
        g.remove_edge(0, 1)
        assert not g.connected(0, 1)
        assert 0 in g and 1 in g

    def test_isolated_nodes_allowed(self):
        g = ExplicitGraph(nodes=[5])
        assert 5 in g
        assert g.degree(5) == 0


class TestStar:
    def test_hub_hears_all_leaves(self):
        star = Star(hub=10, leaves=[0, 1, 2])
        assert star.neighbors(10) == {0, 1, 2}

    def test_leaves_do_not_hear_each_other(self):
        star = Star(hub=10, leaves=[0, 1, 2])
        for leaf in (0, 1, 2):
            assert star.neighbors(leaf) == {10}

    def test_leaves_property(self):
        assert Star(hub=9, leaves=range(3)).leaves == {0, 1, 2}


class TestLine:
    def test_interior_node_has_two_neighbors(self):
        line = Line(5)
        assert line.neighbors(2) == {1, 3}

    def test_endpoints_have_one_neighbor(self):
        line = Line(5)
        assert line.neighbors(0) == {1}
        assert line.neighbors(4) == {3}

    def test_single_node_line(self):
        line = Line(1)
        assert len(line) == 1
        assert line.neighbors(0) == set()

    def test_empty_line_rejected(self):
        with pytest.raises(ValueError):
            Line(0)


class TestGrid:
    def test_corner_degree_two(self):
        grid = Grid(3, 3)
        assert grid.degree(grid.node_at(0, 0)) == 2

    def test_center_degree_four(self):
        grid = Grid(3, 3)
        assert grid.degree(grid.node_at(1, 1)) == 4

    def test_node_at_bounds(self):
        grid = Grid(2, 2)
        with pytest.raises(ValueError):
            grid.node_at(2, 0)

    def test_4_connectivity_not_diagonal(self):
        grid = Grid(2, 2)
        assert not grid.connected(grid.node_at(0, 0), grid.node_at(1, 1))


class TestDiskGraph:
    def test_nodes_within_range_connected(self):
        g = DiskGraph(radio_range=0.5)
        g.place(0, 0.0, 0.0)
        g.place(1, 0.3, 0.0)
        g.place(2, 0.9, 0.0)
        assert g.connected(0, 1)
        assert not g.connected(0, 2)
        assert not g.connected(1, 2)  # 0.6 apart, beyond the 0.5 range

    def test_range_boundary_inclusive(self):
        g = DiskGraph(radio_range=1.0)
        g.place(0, 0.0, 0.0)
        g.place(1, 1.0, 0.0)
        assert g.connected(0, 1)

    def test_distance(self):
        g = DiskGraph(radio_range=1.0)
        g.place(0, 0.0, 0.0)
        g.place(1, 3.0, 4.0)
        assert g.distance(0, 1) == pytest.approx(5.0)

    def test_moving_a_node_changes_connectivity(self):
        g = DiskGraph(radio_range=0.5)
        g.place(0, 0.0, 0.0)
        g.place(1, 0.4, 0.0)
        assert g.connected(0, 1)
        g.place(1, 2.0, 0.0)
        assert not g.connected(0, 1)

    def test_random_generation_is_seeded(self):
        a = DiskGraph.random(20, 0.3, rng=random.Random(5))
        b = DiskGraph.random(20, 0.3, rng=random.Random(5))
        assert all(a.position(i) == b.position(i) for i in range(20))

    def test_remove_node_clears_position(self):
        g = DiskGraph(radio_range=1.0)
        g.place(0, 0.5, 0.5)
        g.remove_node(0)
        assert 0 not in g
        assert g.neighbors(0) == set()

    def test_density_scales_with_range(self):
        rng = random.Random(1)
        sparse = DiskGraph.random(50, 0.1, rng=rng)
        rng = random.Random(1)
        dense = DiskGraph.random(50, 0.4, rng=rng)
        assert dense.neighborhood_density() > sparse.neighborhood_density()

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            DiskGraph(radio_range=0.0)
