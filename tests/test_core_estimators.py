"""Unit tests for transaction-density estimators.

Synthetic workloads with known ground-truth density; every estimator
must converge to it within its stated tolerance.
"""

import math
import random

import pytest

from repro.core.estimators import (
    EwmaEstimator,
    InstantaneousEstimator,
    LittlesLawEstimator,
    WindowedTimeAverageEstimator,
)

ALL_ESTIMATORS = [
    InstantaneousEstimator,
    EwmaEstimator,
    WindowedTimeAverageEstimator,
    LittlesLawEstimator,
]


def steady_workload(estimator, density, duration=200.0, txn_length=1.0):
    """Drive ``density`` staggered same-length transactions continuously.

    Lanes are offset so begins/ends interleave; at any instant exactly
    ``density`` transactions are open (after warm-up).
    """
    events = []
    lane_offset = txn_length / density
    t = 0.0
    while t < duration:
        for lane in range(density):
            start = t + lane * lane_offset
            events.append((start, "begin"))
            events.append((start + txn_length, "end"))
        t += txn_length
    # Ends sort before coincident begins (a lane's next transaction starts
    # the instant its previous one finishes), and events at/after the
    # deadline are dropped so the final batch is still open at `duration`.
    events.sort(key=lambda e: (e[0], e[1] == "begin"))
    events = [e for e in events if e[0] < duration]
    for time, kind in events:
        if kind == "begin":
            estimator.observe_begin(time)
        else:
            estimator.observe_end(time)
    return duration


class TestConvergenceOnSteadyLoad:
    @pytest.mark.parametrize("estimator_cls", ALL_ESTIMATORS)
    @pytest.mark.parametrize("density", [1, 3, 8])
    def test_estimates_steady_density(self, estimator_cls, density):
        estimator = estimator_cls()
        end = steady_workload(estimator, density)
        assert estimator.estimate(end) == pytest.approx(density, rel=0.35, abs=0.6)

    @pytest.mark.parametrize("estimator_cls", ALL_ESTIMATORS)
    def test_fresh_estimator_returns_at_least_one(self, estimator_cls):
        assert estimator_cls().estimate(0.0) >= 1.0


class TestAdaptation:
    @pytest.mark.parametrize(
        "estimator_cls",
        [EwmaEstimator, WindowedTimeAverageEstimator, LittlesLawEstimator],
    )
    def test_tracks_density_increase(self, estimator_cls):
        estimator = estimator_cls()
        steady_workload(estimator, 2, duration=100.0)
        low = estimator.estimate(100.0)
        # Jump to 8 lanes for another stretch, offset in time.
        events = []
        for t in range(100, 200):
            for lane in range(8):
                start = float(t) + lane / 8
                events.append((start, "begin"))
                events.append((start + 1.0, "end"))
        events.sort(key=lambda e: (e[0], e[1] == "begin"))
        for time, kind in events:
            if kind == "begin":
                estimator.observe_begin(time)
            else:
                estimator.observe_end(time)
        high = estimator.estimate(200.0)
        assert high > low * 1.5

    def test_windowed_estimator_forgets_old_load(self):
        estimator = WindowedTimeAverageEstimator(window=10.0)
        steady_workload(estimator, 8, duration=50.0)
        assert estimator.estimate(50.0) > 4.0
        # The busy period ends (the 8 open transactions finish) and the
        # network falls silent: the window slides past the load.
        for _ in range(8):
            estimator.observe_end(50.5)
        assert estimator.estimate(75.0) <= 1.5


class TestInstantaneous:
    def test_counts_follow_begin_end(self):
        est = InstantaneousEstimator()
        est.observe_begin(0.0)
        est.observe_begin(0.5)
        assert est.estimate(1.0) == 2.0
        est.observe_end(1.5)
        assert est.estimate(2.0) == 1.0

    def test_never_negative(self):
        est = InstantaneousEstimator()
        est.observe_end(0.0)
        est.observe_end(1.0)
        assert est.estimate(2.0) == 1.0


class TestLittlesLaw:
    def test_uses_rate_times_duration(self):
        est = LittlesLawEstimator(window=100.0)
        # 2 begins/second, each lasting 3 seconds -> T = 6.
        t = 0.0
        while t < 60.0:
            est.observe_begin(t)
            est.observe_end(t + 3.0)  # FIFO matching: same-length txns
            t += 0.5
        assert est.estimate(60.0) == pytest.approx(6.0, rel=0.25)

    def test_falls_back_without_any_end(self):
        est = LittlesLawEstimator()
        est.observe_begin(0.0)
        est.observe_begin(1.0)
        assert est.estimate(2.0) == 2.0  # instantaneous fallback


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(initial=0.5)
        with pytest.raises(ValueError):
            WindowedTimeAverageEstimator(window=0.0)
        with pytest.raises(ValueError):
            LittlesLawEstimator(window=-1.0)
        with pytest.raises(ValueError):
            LittlesLawEstimator(duration_ewma_alpha=1.5)
