"""Unit tests for the 2-hop colouring local-address policy."""

import random

import pytest

from repro.core.policies import ColoringLocalPolicy
from repro.topology.graphs import DiskGraph, ExplicitGraph, FullMesh, Line, Star


class TestColoringCorrectness:
    def test_full_mesh_needs_n_colors(self):
        """In a full mesh everyone conflicts with everyone."""
        policy = ColoringLocalPolicy(FullMesh(range(8)))
        addresses = {policy.transaction_identifier(n) for n in range(8)}
        assert len(addresses) == 8
        assert policy.colors_used == 8
        assert policy.is_valid()

    def test_line_reuses_addresses(self):
        """A long line needs only ~3 colours under the 2-hop rule."""
        policy = ColoringLocalPolicy(Line(50))
        assert policy.colors_used <= 4
        assert policy.header_bits <= 2
        assert policy.is_valid()

    def test_star_separates_all_leaves(self):
        """All leaves share the hub as a receiver: all must differ."""
        policy = ColoringLocalPolicy(Star(hub=10, leaves=range(6)))
        leaf_addresses = {policy.transaction_identifier(n) for n in range(6)}
        assert len(leaf_addresses) == 6
        assert policy.is_valid()

    def test_two_hop_rule_enforced(self):
        # 0-1-2: 0 and 2 share receiver 1, so they must differ even though
        # they are not neighbours.
        policy = ColoringLocalPolicy(ExplicitGraph(edges=[(0, 1), (1, 2)]))
        assert policy.transaction_identifier(0) != policy.transaction_identifier(2)

    def test_disconnected_components_reuse_freely(self):
        graph = ExplicitGraph(edges=[(0, 1), (10, 11)])
        policy = ColoringLocalPolicy(graph)
        assert policy.colors_used == 2  # both pairs use colours {0, 1}
        assert policy.is_valid()

    def test_random_disk_graphs_always_valid(self):
        for seed in range(5):
            graph = DiskGraph.random(40, 0.25, rng=random.Random(seed))
            policy = ColoringLocalPolicy(graph)
            assert policy.is_valid()

    def test_collision_free_flag(self):
        assert ColoringLocalPolicy(Line(3)).collision_free


class TestDynamicsCost:
    def test_new_node_requires_recoloring(self):
        graph = Line(5)
        policy = ColoringLocalPolicy(graph)
        graph.add_edge(4, 5)
        with pytest.raises(KeyError):
            policy.transaction_identifier(5)
        policy.recolor()
        assert policy.transaction_identifier(5) >= 0
        assert policy.is_valid()

    def test_colorings_are_counted(self):
        graph = Line(4)
        policy = ColoringLocalPolicy(graph)
        assert policy.colorings_computed == 1
        for _ in range(5):
            policy.recolor()
        assert policy.colorings_computed == 6

    def test_topology_change_can_invalidate(self):
        graph = ExplicitGraph(edges=[(0, 1)], nodes=[2])
        policy = ColoringLocalPolicy(graph)
        # Nodes 0 and 2 may share a colour while disconnected...
        graph.add_edge(1, 2)
        graph.add_edge(0, 2)
        # ...but after densifying, the old colouring may now be invalid.
        if not policy.is_valid():
            policy.recolor()
        assert policy.is_valid()


class TestScalingProperty:
    def test_bits_track_density_not_size(self):
        """Growing a field at constant density keeps colour bits flat —
        the same scaling RETRI gets without any global computation."""
        import math

        bits_by_size = []
        for n in (30, 120, 480):
            # Keep mean degree constant: area grows with n.
            side = math.sqrt(n / 30.0)
            graph = DiskGraph.random(
                n, radio_range=0.25, side=side, rng=random.Random(7)
            )
            policy = ColoringLocalPolicy(graph)
            bits_by_size.append(policy.header_bits)
        assert max(bits_by_size) - min(bits_by_size) <= 1
