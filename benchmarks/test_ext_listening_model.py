"""Extension: a first-order model of listening, validated in simulation.

The paper defers modelling the listening heuristic to future work.  Our
first-order model (`p_success_listening`) combines a duplicate-corrected
residual pool with a calibrated vulnerability window.  This bench
compares, per identifier size: Eq. 4 (the memoryless bound), the
listening model, and the measured listening rate.

Claims asserted: the listening model is on the right side of Eq. 4 and
predicts the measurements within a factor of ~2.5 across a ~16x range of
rates, where Eq. 4 overestimates them ~3-5x.
"""

from conftest import DURATION, TRIALS

from repro.core.model import collision_probability, p_success_listening
from repro.experiments.harness import CollisionTrialConfig, replicate
from repro.experiments.results import Table

ID_SIZES = (4, 5, 6, 8)
T = 5


def run_all():
    rows = []
    for id_bits in ID_SIZES:
        mean, sd, _ = replicate(
            CollisionTrialConfig(
                id_bits=id_bits, duration=DURATION, selector="listening", seed=3
            ),
            trials=TRIALS,
        )
        eq4 = float(collision_probability(id_bits, T))
        listening_model = 1.0 - p_success_listening(id_bits, T)
        rows.append((id_bits, eq4, listening_model, mean, sd))
    return rows


def test_listening_model(benchmark, publish):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        f"Extension: first-order listening model vs measurement (T={T})",
        ["id bits", "Eq.4 (memoryless)", "listening model",
         "measured listening", "sd"],
    )
    for row in rows:
        table.add_row(*row)
    publish("ext_listening_model", table.render())

    for id_bits, eq4, predicted, measured, _sd in rows:
        # The model sits below the memoryless bound, like the measurements.
        assert predicted < eq4
        # First-order accuracy: within a factor of ~2.5 of the measured
        # rate at every size (Eq. 4 is off by 3-5x here).
        if measured > 0.005:
            ratio = predicted / measured
            assert 0.4 < ratio < 2.5, (id_bits, predicted, measured)
    # And it reproduces the steep decay with identifier size.
    predictions = [p for _b, _e, p, _m, _s in rows]
    assert predictions[0] > 5 * predictions[-1]
