"""Smoke tests: the shipped examples must run and tell their story.

Each example is executed in-process (runpy) with stdout captured; we
assert on the headline facts each one prints, so a behavioural change
that breaks an example's narrative fails here rather than in a user's
terminal.  The long-running validation example is exercised through its
underlying harness elsewhere (tests/test_experiments_harness.py).
"""

import runpy
import sys

import pytest


def run_example(path, capsys):
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestQuickstart:
    def test_prints_the_nine_bit_headline(self, capsys):
        out = run_example("examples/quickstart.py", capsys)
        assert "optimal identifier size : 9 bits" in out
        assert "reassembled" in out
        assert "motion detected in the north-east quadrant" in out


class TestSensorField:
    def test_deploys_and_reports(self, capsys):
        out = run_example("examples/sensor_field.py", capsys)
        assert "Deployed 60 sensors" in out
        assert "packets sent" in out
        assert "join/leave events" in out
        # The scaling argument is printed with concrete numbers.
        assert "log2(N)" in out


class TestFloodWarning:
    def test_prints_the_coverage_table(self, capsys):
        out = run_example("examples/flood_warning.py", capsys)
        assert "RETRI 4-bit ids" in out
        assert "static (src,seq) 14-bit" in out
        # The 10-bit configuration reaches full coverage.
        for line in out.splitlines():
            if line.startswith("RETRI 10-bit ids"):
                assert "1.000" in line
                break
        else:  # pragma: no cover
            pytest.fail("10-bit row missing")


class TestMixedDurations:
    def test_prints_model_vs_monte_carlo(self, capsys):
        out = run_example("examples/mixed_durations.py", capsys)
        assert "Monte Carlo" in out
        assert "heavy-tailed" in out
        assert "Eq. 4's single answer" in out


class TestInterestGradient:
    def test_both_modes_run_and_differentiate_sensors(self, capsys):
        out = run_example("examples/interest_gradient.py", capsys)
        assert "RETRI mode" in out
        assert "static mode" in out
        # Static mode never misdirects.
        static_section = out.split("static mode", 1)[1]
        assert "(0 misdirected)" in static_section
