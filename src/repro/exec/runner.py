"""Deterministic parallel trial execution.

:class:`TrialRunner` fans independent ``(function, kwargs)`` trials out
across forked worker processes and returns their results **in spec
order**, bit-identical to a serial run.  The determinism contract:

1. Every trial's inputs (including its seed, derived via
   :func:`repro.exec.keys.derive_trial_seed`) are fixed before any
   worker starts; nothing about scheduling can influence a result.
2. Sharding is static round-robin — worker ``w`` of ``W`` computes
   trials ``w, w+W, w+2W, ...`` of the pending list — so the
   work assignment itself is a pure function of ``(trials, W)``.
3. Results travel as canonical JSON (the *transport encoding*) whether
   they come from a worker pipe, the in-process serial path, or the
   result cache, so every path yields the same bytes.

Workers are created with ``os.fork`` rather than ``multiprocessing``
so trial closures need not be picklable (sweep call sites routinely
pass lambdas); the fork inherits them by memory.  This is the one
module allowed to fork — lint rule DET006 flags parallelism primitives
anywhere else in the tree.

Failures are data, not control flow: a trial that raises, times out
(per-trial deadline, bounded retry), returns an unserialisable value,
or loses its worker produces a structured :class:`TrialFailure` in its
outcome slot instead of killing the sweep.
"""

from __future__ import annotations

import json
import os
import selectors
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis.sanitizer.runtime import active_sanitizer, state_snapshot
from ..obs.metrics import MetricsRegistry, active_metrics, collecting
from ..obs.spans import SpanProfiler, profiling
from .cache import ResultCache
from .telemetry import RunTelemetry, TrialRecord

if TYPE_CHECKING:  # pool.py imports runner.py; only the annotation needs it
    from .pool import WorkerPool

__all__ = [
    "ExecError",
    "TrialFailure",
    "TrialOutcome",
    "TrialRunner",
    "TrialSpec",
    "TrialTimeout",
    "decode_jsonable",
    "encode_jsonable",
    "execute_call",
]


class ExecError(RuntimeError):
    """Raised by callers when an execution produced no usable results."""


class TrialTimeout(Exception):
    """A trial exceeded its per-attempt deadline."""


# ----------------------------------------------------------------------
# Transport encoding: JSON with non-finite floats tagged unambiguously
# ----------------------------------------------------------------------
def encode_jsonable(value: Any) -> Any:
    """Encode ``value`` for the result pipe / cache (JSON, no NaN)."""
    if isinstance(value, float) and value != value:
        return {"__float__": "nan"}
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return {"__float__": repr(value)}
    if isinstance(value, (list, tuple)):
        return [encode_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_jsonable(item) for key, item in value.items()}
    return value


def decode_jsonable(value: Any) -> Any:
    """Invert :func:`encode_jsonable`."""
    if isinstance(value, dict):
        if set(value) == {"__float__"}:
            return float(value["__float__"])
        return {key: decode_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_jsonable(item) for item in value]
    return value


# ----------------------------------------------------------------------
# Specs and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialSpec:
    """One trial: call ``fn(**kwargs)`` and keep its return value."""

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any]
    label: str = ""
    #: content address for the result cache (None = never cached)
    cache_key: Optional[str] = None


@dataclass(frozen=True)
class TrialFailure:
    """Structured record of why a trial produced no value."""

    label: str
    error_type: str
    message: str
    traceback: str
    attempts: int

    def render(self) -> str:
        return f"{self.label or 'trial'}: {self.error_type}: {self.message}"


@dataclass
class TrialOutcome:
    """Result slot for one spec, in spec order."""

    value: Any
    ok: bool
    cached: bool = False
    duration: float = 0.0
    attempts: int = 0
    worker: Optional[int] = None
    failure: Optional[TrialFailure] = None


# ----------------------------------------------------------------------
# Per-attempt deadline (SIGALRM; main thread only, no-op elsewhere)
# ----------------------------------------------------------------------
def _deadline_unusable(seconds: Optional[float]) -> Optional[str]:
    """Why a requested deadline cannot be enforced here (None = it can).

    ``signal.setitimer``/``SIGALRM`` only work on the main thread of the
    main interpreter; calling them elsewhere raises ``ValueError``.  A
    runner driven from a worker thread therefore degrades to unbounded
    trials — gracefully, with the reason surfaced in run telemetry
    rather than a crash.
    """
    if seconds is None or seconds <= 0:
        return None  # no deadline requested, nothing to enforce
    if not hasattr(signal, "setitimer"):
        return "timeout requested but signal.setitimer is unavailable"
    if threading.current_thread() is not threading.main_thread():
        return (
            "timeout requested off the main thread; SIGALRM deadlines "
            "cannot be armed there, trials run unbounded"
        )
    return None


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    if seconds is None or seconds <= 0 or _deadline_unusable(seconds):
        yield
        return

    def _expired(signum: int, frame: Any) -> None:
        raise TrialTimeout(f"trial exceeded {seconds:.3f}s deadline")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))  # type: ignore[arg-type]
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# One trial attempt loop, shared by every execution path
# ----------------------------------------------------------------------
def execute_call(
    fn: Callable[..., Any],
    kwargs: Mapping[str, Any],
    timeout: Optional[float],
    retries: int,
    profile: bool = False,
    metrics: bool = False,
) -> Dict[str, Any]:
    """Run ``fn(**kwargs)`` with deadline + bounded retry; return a message.

    Messages are plain JSON dicts — the same shape a forked worker or a
    persistent pool worker ships over its pipe — so the serial path,
    the per-run fork path, and :class:`repro.exec.pool.WorkerPool` all
    share one code path from here up.  ``plain`` marks values whose
    encoded form contains no transport tags, letting the parent skip
    the Python-level decode walk (a real cost when a sharded trial
    ships hundreds of kilobytes of packed segment data).

    With ``profile`` a fresh :class:`repro.obs.spans.SpanProfiler` is
    active around the trial call, and the successful message carries its
    span table under ``"spans"`` — that is how per-layer wall time
    crosses the process boundary from workers back to the parent's
    telemetry.  Profiling is observational: the trial's value is
    identical either way.

    ``metrics`` does the same for the deterministic counter layer: a
    fresh :class:`repro.obs.metrics.MetricsRegistry` is active per
    *attempt* (a failed attempt's partial counts never leak into the
    totals), and the successful message carries the table under
    ``"metrics"``.  The trial itself books ``exec.trials`` and
    ``exec.retries`` into that nested registry, so exec-layer counts
    travel and merge exactly like simulation-layer ones.

    Under an active DetSan context the message likewise carries the
    process's drained draw-ledger observations under ``"sanitizer"``
    (see :mod:`repro.analysis.sanitizer.runtime`), and module-state
    snapshots are compared at trial entry (fork-phase drift: state
    mutated *between* trials) and across the call (trial-phase drift).
    Also purely observational.
    """
    san = active_sanitizer()
    pre_state: Dict[str, str] = {}
    if san is not None:
        san.check_fork_drift(state_snapshot())
        pre_state = state_snapshot()
    attempts = 0
    skipped = _deadline_unusable(timeout)
    while True:
        attempts += 1
        prof = SpanProfiler() if profile else None
        registry = MetricsRegistry() if metrics else None
        t0 = time.perf_counter()
        try:
            with _deadline(timeout):
                if prof is not None and registry is not None:
                    with profiling(prof), collecting(registry):
                        value = fn(**dict(kwargs))
                elif prof is not None:
                    with profiling(prof):
                        value = fn(**dict(kwargs))
                elif registry is not None:
                    with collecting(registry):
                        value = fn(**dict(kwargs))
                else:
                    value = fn(**dict(kwargs))
            encoded = encode_jsonable(value)
            text = json.dumps(encoded, allow_nan=False)  # transportability gate
            message: Dict[str, Any] = {
                "ok": True,
                "value": encoded,
                "duration": time.perf_counter() - t0,
                "attempts": attempts,
            }
            if '"__float__"' not in text:
                message["plain"] = True
            if skipped:
                message["deadline_skipped"] = skipped
            if prof is not None:
                prof.add("exec.trial", message["duration"])
                message["spans"] = prof.to_json()
            if registry is not None:
                registry.inc("exec.trials")
                if attempts > 1:
                    registry.inc("exec.retries", attempts - 1)
                message["metrics"] = registry.to_json()
            if san is not None:
                san.record_trial_drift(pre_state, state_snapshot(), _trial_site(fn))
                message["sanitizer"] = san.export_for_message()
            return message
        except Exception as exc:
            if attempts <= retries:
                continue
            message = {
                "ok": False,
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "duration": time.perf_counter() - t0,
                "attempts": attempts,
            }
            if skipped:
                message["deadline_skipped"] = skipped
            if san is not None:
                san.record_trial_drift(pre_state, state_snapshot(), _trial_site(fn))
                message["sanitizer"] = san.export_for_message()
            return message


def _trial_site(fn: Callable[..., Any]) -> Optional[str]:
    """Where ``fn`` is defined, for attributing state drift to a trial."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    return f"{code.co_filename}:{code.co_firstlineno}"


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class TrialRunner:
    """Shards trials over forked workers; caches; collects telemetry.

    Parameters
    ----------
    workers:
        Worker processes to fork.  ``1`` (the default) runs in-process;
        both paths produce identical results.
    cache:
        Optional :class:`~repro.exec.cache.ResultCache`.  Specs with a
        ``cache_key`` are looked up before execution and stored after.
    timeout:
        Per-attempt deadline in seconds (None = unbounded).
    retries:
        Extra attempts after a failed/timed-out one (total attempts =
        ``retries + 1``).  Retries re-run the identical inputs, so they
        only help against nondeterministic externalities (timeouts).
    pool:
        Optional :class:`repro.exec.pool.WorkerPool`.  Pool-transportable
        specs (module-level function, JSON-encodable kwargs) are fed to
        its long-lived workers instead of forking fresh ones per
        :meth:`run`; the rest fall back to the classic fork path, counted
        in telemetry as ``pool_fallbacks``.  Whether a trial runs in the
        pool, a per-run fork, or in-process never changes its result —
        all three paths share the same transport encoding.  The caller
        owns the pool's lifecycle (use it as a context manager).
    profile:
        When True every trial runs under a span profiler and its
        per-layer wall times flow into :attr:`telemetry` (and across
        worker pipes for forked/pooled trials).  Observational only —
        results are bit-identical with profiling on or off.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        pool: Optional["WorkerPool"] = None,
        profile: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.pool = pool
        self.profile = profile
        #: cumulative telemetry over every :meth:`run` on this runner
        self.telemetry = RunTelemetry(workers=workers)
        #: telemetry of the most recent :meth:`run` only
        self.last_telemetry = RunTelemetry(workers=workers)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TrialSpec]) -> List[TrialOutcome]:
        """Execute ``specs``; outcomes align index-for-index with them."""
        started = time.perf_counter()
        telemetry = RunTelemetry(workers=self.workers)
        outcomes: List[TrialOutcome] = [
            TrialOutcome(value=None, ok=False) for _ in specs
        ]

        # Cache traffic is a parent-side decomposition fact, so it books
        # straight into the parent's active registry (cached trials never
        # re-run, hence carry no trial-side metrics of their own).
        registry = active_metrics()
        metrics_on = registry is not None

        pending: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None and spec.cache_key is not None:
                hit, stored = self.cache.get(spec.cache_key)
                if hit:
                    if registry is not None:
                        registry.inc("exec.cache_hits")
                    outcomes[index] = TrialOutcome(
                        value=decode_jsonable(stored), ok=True, cached=True
                    )
                    continue
                telemetry.cache_misses += 1
                if registry is not None:
                    registry.inc("exec.cache_misses")
            pending.append(index)

        effective = max(1, min(self.workers, len(pending)))
        if pending:
            if self.pool is not None and hasattr(os, "fork"):
                messages, unpooled = self.pool.run_specs(
                    specs,
                    pending,
                    timeout=self.timeout,
                    retries=self.retries,
                    profile=self.profile,
                    metrics=metrics_on,
                )
                telemetry.pool_batches += 1
                telemetry.pool_respawns += self.pool.take_respawns()
                effective = self.pool.workers
                if unpooled:
                    # Lambdas / closures / unregistered kwargs cannot
                    # cross the pool's by-name transport; run them on
                    # the classic path (fork inherits them by memory).
                    telemetry.pool_fallbacks += len(unpooled)
                    fb_workers = max(1, min(self.workers, len(unpooled)))
                    if fb_workers == 1:
                        messages.update(
                            self._run_serial(specs, unpooled, metrics_on)
                        )
                    else:
                        messages.update(
                            self._run_forked(
                                specs, unpooled, fb_workers, metrics_on
                            )
                        )
            elif effective == 1 or not hasattr(os, "fork"):
                effective = 1
                messages = self._run_serial(specs, pending, metrics_on)
            else:
                messages = self._run_forked(specs, pending, effective, metrics_on)
            self._collect(specs, pending, messages, outcomes, telemetry)

        telemetry.workers = effective
        for index, outcome in enumerate(outcomes):
            telemetry.record(
                TrialRecord(
                    index=index,
                    label=specs[index].label,
                    cached=outcome.cached,
                    ok=outcome.ok,
                    attempts=outcome.attempts,
                    duration=outcome.duration,
                    worker=outcome.worker,
                    error=(
                        f"{outcome.failure.error_type}: {outcome.failure.message}"
                        if outcome.failure is not None
                        else None
                    ),
                )
            )
        if self.cache is not None:
            telemetry.cache_writes = self.cache.stats.writes
            telemetry.cache_corrupted = self.cache.stats.corrupted
        telemetry.wall_time = time.perf_counter() - started
        self.last_telemetry = telemetry
        self.telemetry.merge(telemetry)
        return outcomes

    # ------------------------------------------------------------------
    def _execute_one(
        self, spec: TrialSpec, metrics: bool = False
    ) -> Dict[str, Any]:
        return execute_call(
            spec.fn,
            spec.kwargs,
            self.timeout,
            self.retries,
            profile=self.profile,
            metrics=metrics,
        )

    def _run_serial(
        self,
        specs: Sequence[TrialSpec],
        pending: Sequence[int],
        metrics: bool = False,
    ) -> Dict[int, Dict[str, Any]]:
        messages: Dict[int, Dict[str, Any]] = {}
        for index in pending:
            message = self._execute_one(specs[index], metrics)
            # Round-trip through JSON so the serial path is byte-for-byte
            # the parallel path (tuples become lists, floats reparse).
            message = json.loads(json.dumps(message, allow_nan=False))
            message["worker"] = 0
            messages[index] = message
        return messages

    def _run_forked(
        self,
        specs: Sequence[TrialSpec],
        pending: Sequence[int],
        workers: int,
        metrics: bool = False,
    ) -> Dict[int, Dict[str, Any]]:
        shards = [list(pending[w::workers]) for w in range(workers)]
        children: List[Tuple[int, int]] = []  # (pid, read_fd)
        for worker_id, shard in enumerate(shards):
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Worker child: compute the shard, stream length-prefixed
                # JSON messages back, and _exit without touching the
                # parent's atexit/pytest machinery.
                status = 0
                try:
                    san = active_sanitizer()
                    if san is not None:
                        # Drop ledger state inherited from the parent by
                        # fork and re-anchor the fork-state baseline, so
                        # this child only ever reports what *it* observed.
                        san.after_fork()
                    os.close(read_fd)
                    with os.fdopen(write_fd, "wb", buffering=0) as out:
                        for index in shard:
                            message = self._execute_one(specs[index], metrics)
                            message["worker"] = worker_id
                            message["index"] = index
                            data = json.dumps(message, allow_nan=False).encode(
                                "utf-8"
                            )
                            out.write(len(data).to_bytes(4, "big") + data)
                except BaseException:
                    status = 1
                finally:
                    os._exit(status)
            os.close(write_fd)
            children.append((pid, read_fd))

        messages = self._drain_pipes([fd for _, fd in children])
        for pid, _ in children:
            os.waitpid(pid, 0)
        return messages

    @staticmethod
    def _drain_pipes(fds: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        """Multiplex reads so no worker blocks on a full pipe buffer."""
        messages: Dict[int, Dict[str, Any]] = {}
        buffers: Dict[int, bytes] = {fd: b"" for fd in fds}
        selector = selectors.DefaultSelector()
        for fd in fds:
            selector.register(fd, selectors.EVENT_READ)
        open_fds = set(fds)
        while open_fds:
            for key, _ in selector.select():
                fd = key.fd
                chunk = os.read(fd, 1 << 16)
                if not chunk:
                    selector.unregister(fd)
                    os.close(fd)
                    open_fds.discard(fd)
                    continue
                buffers[fd] += chunk
                while len(buffers[fd]) >= 4:
                    size = int.from_bytes(buffers[fd][:4], "big")
                    if len(buffers[fd]) < 4 + size:
                        break
                    frame = buffers[fd][4 : 4 + size]
                    buffers[fd] = buffers[fd][4 + size :]
                    message = json.loads(frame.decode("utf-8"))
                    messages[message.pop("index")] = message
        selector.close()
        return messages

    def _collect(
        self,
        specs: Sequence[TrialSpec],
        pending: Sequence[int],
        messages: Dict[int, Dict[str, Any]],
        outcomes: List[TrialOutcome],
        telemetry: Optional[RunTelemetry] = None,
    ) -> None:
        san = active_sanitizer()
        for index in pending:
            spec = specs[index]
            message = messages.get(index)
            if (
                telemetry is not None
                and message is not None
                and message.get("deadline_skipped")
                and message["deadline_skipped"] not in telemetry.warnings
            ):
                telemetry.warnings.append(message["deadline_skipped"])
            if (
                san is not None
                and message is not None
                and message.get("sanitizer") is not None
            ):
                # Fold worker-side draw-ledger observations (tagged with
                # the worker's pid) back into the active context.
                san.absorb(message["sanitizer"])
            if message is None:
                # Worker died (crash, OOM kill, os._exit in the trial)
                # before reporting this trial.
                outcomes[index] = TrialOutcome(
                    value=None,
                    ok=False,
                    failure=TrialFailure(
                        label=spec.label,
                        error_type="WorkerCrashed",
                        message="worker exited before reporting this trial",
                        traceback="",
                        attempts=0,
                    ),
                )
                continue
            if message["ok"]:
                spans = message.get("spans")
                if telemetry is not None and spans:
                    telemetry.add_spans(spans)
                table = message.get("metrics")
                if table:
                    if telemetry is not None:
                        telemetry.add_metrics(table)
                    parent = active_metrics()
                    if parent is not None:
                        parent.merge_json(table)
                # "plain" payloads carry no transport tags; skip the
                # Python-level decode walk (hot for packed segments).
                outcomes[index] = TrialOutcome(
                    value=(
                        message["value"]
                        if message.get("plain")
                        else decode_jsonable(message["value"])
                    ),
                    ok=True,
                    duration=float(message["duration"]),
                    attempts=int(message["attempts"]),
                    worker=message.get("worker"),
                )
                if self.cache is not None and spec.cache_key is not None:
                    self.cache.put(
                        spec.cache_key,
                        message["value"],
                        meta={"label": spec.label},
                    )
            else:
                outcomes[index] = TrialOutcome(
                    value=None,
                    ok=False,
                    duration=float(message["duration"]),
                    attempts=int(message["attempts"]),
                    worker=message.get("worker"),
                    failure=TrialFailure(
                        label=spec.label,
                        error_type=message["error_type"],
                        message=message["message"],
                        traceback=message["traceback"],
                        attempts=int(message["attempts"]),
                    ),
                )
