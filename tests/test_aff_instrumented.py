"""Unit tests for the instrumented receiver (the paper's methodology)."""

import math
import random

import pytest

from repro.aff.driver import AffDriver
from repro.aff.instrumented import InstrumentedReceiver
from repro.core.identifiers import IdentifierSpace, UniformSelector
from repro.net.packets import Packet
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


class _FixedSelector(UniformSelector):
    """Selector that returns a scripted sequence of identifiers."""

    def __init__(self, space, sequence):
        super().__init__(space, random.Random(0))
        self._sequence = list(sequence)

    def select(self):
        self.selections += 1
        return self._sequence.pop(0)


def build(n_senders=2, id_bits=8, sequences=None, bitrate=1000.0):
    sim = Simulator()
    medium = BroadcastMedium(
        sim, FullMesh(range(n_senders + 1)), bitrate=bitrate, rf_collisions=False
    )
    receiver = InstrumentedReceiver(
        Radio(medium, n_senders), id_bits=id_bits, reassembly_timeout=30.0
    )
    drivers = []
    for node in range(n_senders):
        space = IdentifierSpace(id_bits)
        if sequences is not None:
            selector = _FixedSelector(space, sequences[node])
        else:
            selector = UniformSelector(space, random.Random(node))
        drivers.append(AffDriver(Radio(medium, node), selector))
    return sim, drivers, receiver


class TestUniqueDelivery:
    def test_counts_complete_packets(self):
        sim, drivers, receiver = build(sequences=[[1], [2]])
        drivers[0].send(Packet(payload=b"A" * 60, origin=0))
        drivers[1].send(Packet(payload=b"B" * 60, origin=1))
        sim.run()
        assert receiver.counts.received_unique == 2
        assert receiver.counts.would_be_lost == 0
        assert receiver.counts.received_aff == 2
        assert receiver.collision_loss_rate() == 0.0

    def test_no_packets_rate_is_nan(self):
        sim, drivers, receiver = build()
        sim.run()
        assert math.isnan(receiver.collision_loss_rate())


class TestCollisionDetection:
    def test_forced_identifier_collision_detected(self):
        """Both senders scripted onto identifier 5 concurrently: the
        instrumented receiver must flag both packets as would-be-lost."""
        sim, drivers, receiver = build(sequences=[[5], [5]])
        drivers[0].send(Packet(payload=b"A" * 60, origin=0))
        drivers[1].send(Packet(payload=b"B" * 60, origin=1))
        sim.run()
        assert receiver.counts.received_unique == 2
        assert receiver.counts.would_be_lost == 2
        assert receiver.collision_loss_rate() == 1.0
        # End-to-end: the real reassembler delivers at most one of them.
        assert receiver.counts.received_aff <= 1
        assert receiver.e2e_loss_rate() >= 0.5

    def test_sequential_reuse_not_flagged(self):
        """Same identifier used at different times is RETRI working as
        intended, not a collision."""
        sim, drivers, receiver = build(sequences=[[5], [5]])
        drivers[0].send(Packet(payload=b"A" * 60, origin=0))
        sim.run()
        drivers[1].send(Packet(payload=b"B" * 60, origin=1))
        sim.run()
        assert receiver.counts.received_unique == 2
        assert receiver.counts.would_be_lost == 0
        assert receiver.counts.received_aff == 2

    def test_would_be_received_complement(self):
        sim, drivers, receiver = build(sequences=[[5, 1], [5, 2]])
        for _ in range(2):
            drivers[0].send(Packet(payload=b"A" * 60, origin=0))
            drivers[1].send(Packet(payload=b"B" * 60, origin=1))
        sim.run()
        counts = receiver.counts
        assert counts.would_be_received == counts.received_unique - counts.would_be_lost

    def test_uninstrumented_frames_ignored(self):
        sim, drivers, receiver = build()
        from repro.radio.frame import Frame

        drivers[0].radio.send(Frame(payload=b"\x00" * 5, origin=0))
        sim.run()
        assert receiver.uninstrumented_frames == 1
        assert receiver.counts.received_unique == 0


class TestGroundTruthIsolation:
    def test_aff_pipeline_consumes_only_wire_fragments(self):
        """The AFF reassembler sees exactly the decoded wire fragments —
        one per frame — and nothing from the instrumentation channel."""
        sim, drivers, receiver = build(sequences=[[5], [5]])
        drivers[0].send(Packet(payload=b"A" * 60, origin=0))
        drivers[1].send(Packet(payload=b"B" * 60, origin=1))
        sim.run()
        # 60-byte payloads at 22 bytes/fragment: intro + 3 data = 4 frames
        # per packet, 8 total.
        assert receiver.reassembler.stats.fragments_accepted == 8
        # And its conflict counters prove the collision surfaced on the
        # wire alone (no ground truth needed to detect it).
        stats = receiver.reassembler.stats
        assert stats.span_conflicts + stats.intro_conflicts >= 1
