"""Versioned JSONL envelope for :class:`repro.sim.trace.TraceRecord` streams.

Layout (one JSON object per line):

* line 1 — header: ``{"kind": "repro.obs/trace", "schema": 1,
  "writer": <repro version>, "meta": {...}}``;
* lines 2..N+1 — records: ``{"t": time, "c": category, "f": fields}``
  with keys sorted and non-finite floats tagged the same way the exec
  transport tags them (``{"__float__": "nan"}``), so a record has
  exactly one serialized form;
* last line — footer: ``{"end": true, "records": N}``.

The writer streams: each record goes to disk as it is written, so
million-event runs never buffer a trace in RAM.  Writes go to
``<path>.tmp`` and the file is renamed into place only by a successful
:meth:`TraceWriter.close` — a worker that crashes mid-trace leaves an
orphan ``.tmp`` that shard collection ignores, so shards are always
complete-or-excluded, never truncated mid-record.  The footer guards
the remaining window (a complete-looking file that lost its tail some
other way): readers raise :class:`TraceReadError` when it is missing
or disagrees with the record count.

Comparability is the point of the format: two traces of the same
scenario serialize identically byte for byte iff they recorded the
same events, which is what ``python -m repro obs diff`` checks.
"""

from __future__ import annotations

import json
import pathlib
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type, Union

from ..exec.runner import decode_jsonable, encode_jsonable
from ..sim.trace import TraceRecord

__all__ = [
    "SCHEMA_VERSION",
    "TRACE_KIND",
    "TraceReadError",
    "TraceWriter",
    "canonical_number",
    "read_header",
    "read_trace",
    "load_trace",
    "write_trace",
]

#: Bump when a line format changes incompatibly; readers reject unknown
#: versions outright instead of mis-parsing them.
SCHEMA_VERSION = 1

TRACE_KIND = "repro.obs/trace"

PathLike = Union[str, pathlib.Path]


class TraceReadError(ValueError):
    """A file is not a complete, readable trace of the expected schema."""


def canonical_number(
    value: Union[int, float]
) -> Union[int, float, Dict[str, str]]:
    """One canonical JSON form for every number the obs layer emits.

    Span tables, metric snapshots and trace records must all serialize
    a given value to the same bytes, or byte-comparison of artifacts
    becomes format trivia instead of a determinism check.  The rules:

    * ints stay ints (never widened to ``1.0``);
    * finite floats pass through — ``json.dumps`` emits the shortest
      round-tripping decimal, which is already canonical;
    * non-finite floats are tagged exactly the way the exec transport
      and trace lines tag them: ``{"__float__": "nan" | "inf" | "-inf"}``
      (``allow_nan=False`` would otherwise refuse to serialize them).
    """
    if isinstance(value, bool) or not isinstance(value, float):
        return value
    if value != value:
        return {"__float__": "nan"}
    if value in (float("inf"), float("-inf")):
        return {"__float__": repr(value)}
    return value


def _record_line(record: TraceRecord) -> str:
    """The canonical one-line form of a record (deterministic bytes)."""
    body = {
        "t": encode_jsonable(record.time),
        "c": record.category,
        "f": encode_jsonable(dict(record.fields)),
    }
    return json.dumps(body, sort_keys=True, separators=(",", ":"), allow_nan=False)


class TraceWriter:
    """Streaming trace writer with atomic finalization.

    Use as a context manager; the target file appears only when the
    ``with`` block exits cleanly (or :meth:`close` is called).  An
    exception mid-write leaves just the ``.tmp``, which readers and
    shard collection ignore.
    """

    def __init__(self, path: PathLike, meta: Optional[Dict[str, Any]] = None):
        from .. import __version__

        self.path = pathlib.Path(path)
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        self._records = 0
        self._closed = False
        self._out = self._tmp.open("w", encoding="utf-8")
        header = {
            "kind": TRACE_KIND,
            "schema": SCHEMA_VERSION,
            "writer": __version__,
            "meta": encode_jsonable(dict(meta or {})),
        }
        self._out.write(
            json.dumps(header, sort_keys=True, separators=(",", ":"), allow_nan=False)
            + "\n"
        )

    @property
    def records(self) -> int:
        return self._records

    def write(self, record: TraceRecord) -> None:
        self._out.write(_record_line(record) + "\n")
        self._records += 1

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Recorder-shaped convenience: write one record."""
        self.write(TraceRecord(time=time, category=category, fields=fields))

    def close(self) -> None:
        """Write the footer and atomically rename the trace into place."""
        if self._closed:
            return
        self._closed = True
        self._out.write(
            json.dumps(
                {"end": True, "records": self._records},
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
        self._out.close()
        self._tmp.replace(self.path)

    def abort(self) -> None:
        """Drop the partial trace (leaves no file behind)."""
        if self._closed:
            return
        self._closed = True
        self._out.close()
        self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_trace(
    path: PathLike,
    records: Iterator[TraceRecord],
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write an iterable of records as one trace; returns the count."""
    with TraceWriter(path, meta=meta) as writer:
        for record in records:
            writer.write(record)
        return writer.records


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def _parse_header(path: pathlib.Path, line: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceReadError(f"{path}: header is not valid JSON ({exc})") from exc
    if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
        raise TraceReadError(f"{path}: not a {TRACE_KIND} file")
    if header.get("schema") != SCHEMA_VERSION:
        raise TraceReadError(
            f"{path}: schema {header.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return header


def read_header(path: PathLike) -> Dict[str, Any]:
    """The trace's header object (kind/schema/writer/meta), validated."""
    target = pathlib.Path(path)
    with target.open("r", encoding="utf-8") as inp:
        first = inp.readline()
    if not first:
        raise TraceReadError(f"{target}: empty file")
    return _parse_header(target, first)


def read_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream the records of a trace, verifying header and footer.

    Raises :class:`TraceReadError` for a wrong kind/schema, a malformed
    line, or a missing/disagreeing footer (truncation).  The error for
    a truncated file surfaces only after the intact prefix has been
    yielded — callers that must not observe partial traces should drain
    into a list (:func:`load_trace`) or pre-validate.
    """
    target = pathlib.Path(path)
    with target.open("r", encoding="utf-8") as inp:
        first = inp.readline()
        if not first:
            raise TraceReadError(f"{target}: empty file")
        _parse_header(target, first)
        count = 0
        footer: Optional[Dict[str, Any]] = None
        for lineno, line in enumerate(inp, start=2):
            line = line.strip()
            if not line:
                continue
            if footer is not None:
                raise TraceReadError(f"{target}:{lineno}: data after footer")
            try:
                body = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceReadError(
                    f"{target}:{lineno}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(body, dict):
                raise TraceReadError(f"{target}:{lineno}: not an object")
            if body.get("end") is True:
                footer = body
                continue
            if not {"t", "c", "f"} <= set(body):
                raise TraceReadError(f"{target}:{lineno}: malformed record")
            fields = decode_jsonable(body["f"])
            if not isinstance(fields, dict):
                raise TraceReadError(f"{target}:{lineno}: fields not an object")
            count += 1
            yield TraceRecord(
                time=float(decode_jsonable(body["t"])),
                category=str(body["c"]),
                fields=fields,
            )
        if footer is None:
            raise TraceReadError(
                f"{target}: no footer — file truncated after {count} record(s)"
            )
        declared = footer.get("records")
        if declared != count:
            raise TraceReadError(
                f"{target}: footer declares {declared!r} records, read {count}"
            )


def load_trace(path: PathLike) -> Tuple[Dict[str, Any], List[TraceRecord]]:
    """``(header, records)`` of a trace, fully validated before return."""
    header = read_header(path)
    return header, list(read_trace(path))
