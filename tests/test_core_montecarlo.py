"""Tests for the mixed-duration model extension and its Monte Carlo oracle."""

import itertools
import math
import random

import pytest

from repro.core.model import (
    collision_probability,
    collision_probability_mixed,
    effective_density,
    p_success,
    p_success_mixed,
)
from repro.core.montecarlo import (
    ExponentialDuration,
    FixedDuration,
    _generate_arrivals,
    _simulate_collision_rate_reference,
    replicate_collision_rate,
    simulate_collision_rate,
)


class TestEffectiveDensity:
    def test_littles_law(self):
        assert effective_density(5.0, [1.0]) == pytest.approx(5.0)
        assert effective_density(2.0, [0.5, 1.5]) == pytest.approx(2.0)

    def test_weights(self):
        # E[D] = 0.9*0.1 + 0.1*9.1 = 1.0
        assert effective_density(5.0, [0.1, 9.1], weights=[0.9, 0.1]) == (
            pytest.approx(5.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_density(-1.0, [1.0])
        with pytest.raises(ValueError):
            effective_density(1.0, [-0.5])


class TestMixedModel:
    def test_reduces_to_exponential_form_for_single_duration(self):
        # P = exp(-λ·2τ·2^-H) with τ=1, λ=5, H=6
        p = p_success_mixed(6, 5.0, [1.0])
        assert p == pytest.approx(math.exp(-5.0 * 2.0 * 2.0**-6))

    def test_agrees_with_eq4_to_first_order(self):
        """exp(-2T q) vs (1-q)^{2(T-1)} converge as q -> 0."""
        for H in (12, 16, 20):
            mixed = p_success_mixed(H, 8.0, [1.0])
            eq4 = p_success(H, 8)
            assert mixed == pytest.approx(eq4, abs=5e-3)

    def test_probability_bounds(self):
        for H in (0, 1, 4, 16):
            p = p_success_mixed(H, 3.0, [0.2, 1.0, 7.0])
            assert 0.0 <= p <= 1.0

    def test_long_transactions_collide_more(self):
        """P(success | d) falls with d: duration-stratified check."""
        short = p_success_mixed(6, 5.0, [0.1])
        long = p_success_mixed(6, 5.0, [10.0])
        assert long < short

    def test_heavy_tail_lowers_count_weighted_rate(self):
        """Most transactions short + a few very long, same E[D]: the
        count-weighted collision rate drops below the same-length rate —
        the effect Eq. 4's single-T summary cannot express."""
        homogeneous = collision_probability_mixed(6, 5.0, [1.0])
        heavy = collision_probability_mixed(
            6, 5.0, [0.1, 9.1], weights=[0.9, 0.1]
        )
        assert heavy < homogeneous

    def test_validation(self):
        with pytest.raises(ValueError):
            p_success_mixed(-1, 5.0, [1.0])
        with pytest.raises(ValueError):
            p_success_mixed(6, -5.0, [1.0])
        with pytest.raises(ValueError):
            p_success_mixed(6, 5.0, [])
        with pytest.raises(ValueError):
            p_success_mixed(6, 5.0, [-1.0])


class TestMonteCarlo:
    def test_density_matches_littles_law(self):
        mc = simulate_collision_rate(
            8, 5.0, lambda r: 1.0, horizon=500.0, rng=random.Random(1)
        )
        assert mc.measured_density == pytest.approx(5.0, abs=0.4)

    def test_homogeneous_rate_matches_mixed_model(self):
        for H in (4, 6):
            mc = simulate_collision_rate(
                H, 5.0, lambda r: 1.0, horizon=1500.0,
                rng=random.Random(H), warmup=10.0,
            )
            predicted = collision_probability_mixed(H, 5.0, [1.0])
            assert mc.collision_rate == pytest.approx(predicted, abs=0.03)

    def test_homogeneous_rate_near_eq4(self):
        mc = simulate_collision_rate(
            6, 5.0, lambda r: 1.0, horizon=1500.0,
            rng=random.Random(3), warmup=10.0,
        )
        eq4 = float(collision_probability(6, 5))
        assert mc.collision_rate == pytest.approx(eq4, abs=0.05)

    def test_bimodal_matches_mixed_model_not_eq4_direction(self):
        sampler = lambda r: 0.1 if r.random() < 0.9 else 9.1  # noqa: E731
        mc = simulate_collision_rate(
            5, 5.0, sampler, horizon=2000.0, rng=random.Random(4), warmup=20.0
        )
        mixed = collision_probability_mixed(5, 5.0, [0.1, 9.1], weights=[0.9, 0.1])
        assert mc.collision_rate == pytest.approx(mixed, abs=0.04)

    def test_zero_bit_space_always_collides_under_load(self):
        mc = simulate_collision_rate(
            0, 5.0, lambda r: 1.0, horizon=200.0, rng=random.Random(5), warmup=5.0
        )
        assert mc.collision_rate > 0.99

    def test_huge_space_never_collides(self):
        mc = simulate_collision_rate(
            32, 5.0, lambda r: 1.0, horizon=200.0, rng=random.Random(6)
        )
        assert mc.collision_rate == 0.0

    def test_empty_window_gives_nan(self):
        mc = simulate_collision_rate(
            8, 0.001, lambda r: 1.0, horizon=1.0, rng=random.Random(7)
        )
        assert mc.transactions == 0
        assert math.isnan(mc.collision_rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_collision_rate(8, 0.0, lambda r: 1.0)
        with pytest.raises(ValueError):
            simulate_collision_rate(8, 1.0, lambda r: 1.0, horizon=0.0)
        with pytest.raises(ValueError):
            simulate_collision_rate(
                8, 1.0, lambda r: -1.0, horizon=10.0, rng=random.Random(8)
            )


class TestDurationSamplers:
    def test_fixed_duration_is_constant(self):
        sampler = FixedDuration(seconds=2.5)
        assert sampler(random.Random(0)) == 2.5
        assert FixedDuration()(random.Random(0)) == 1.0

    def test_exponential_duration_has_requested_mean(self):
        sampler = ExponentialDuration(mean=3.0)
        rng = random.Random(1)
        draws = [sampler(rng) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(3.0, rel=0.05)

    def test_samplers_are_frozen_and_hashable(self):
        # Cache keys and the pool transport rely on the field dict.
        with pytest.raises(Exception):
            FixedDuration().seconds = 2.0
        assert hash(ExponentialDuration(1.0)) == hash(ExponentialDuration(1.0))


class TestFastCoreGoldenPins:
    """The fast event core must stay bit-identical to the historical
    build-list/double/sort pipeline.  Pins were captured from the
    pre-fast-core implementation."""

    EXP_PINS = [
        # (seed, id_bits, rate, horizon, warmup) -> (txns, rate, density)
        ((1, 8, 5.0, 300.0, 0.0),
         (1462, 0.03146374829001368, 4.803748998642257)),
        ((2, 5, 4.0, 500.0, 10.0),
         (1958, 0.2093973442288049, 3.9340352010342317)),
        ((7, 3, 6.0, 200.0, 5.0),
         (1242, 0.7600644122383253, 6.342172165147807)),
    ]
    FIXED_PINS = [
        ((11, 6, 5.0, 400.0, 2.0),
         (1987, 0.14846502264720685, 4.984371369747749)),
        ((12, 6, 5.0, 400.0, 2.0),
         (1972, 0.15517241379310345, 4.95516201844978)),
    ]

    def test_exponential_duration_pins(self):
        for (seed, bits, rate, horizon, warmup), expected in self.EXP_PINS:
            mc = simulate_collision_rate(
                bits, rate, lambda rr: rr.expovariate(1.0),
                horizon=horizon, rng=random.Random(seed), warmup=warmup,
            )
            assert (mc.transactions, mc.collision_rate, mc.measured_density) == (
                expected
            )

    def test_fixed_duration_pins(self):
        for (seed, bits, rate, horizon, warmup), expected in self.FIXED_PINS:
            mc = simulate_collision_rate(
                bits, rate, FixedDuration(1.0),
                horizon=horizon, rng=random.Random(seed), warmup=warmup,
            )
            assert (mc.transactions, mc.collision_rate, mc.measured_density) == (
                expected
            )

    def test_matches_reference_pipeline_exactly(self):
        for seed in (3, 21):
            fast = simulate_collision_rate(
                6, 5.0, ExponentialDuration(1.0),
                horizon=150.0, rng=random.Random(seed), warmup=1.0,
            )
            ref = _simulate_collision_rate_reference(
                6, 5.0, ExponentialDuration(1.0),
                horizon=150.0, rng=random.Random(seed), warmup=1.0,
            )
            assert (fast.transactions, fast.collision_rate,
                    fast.measured_density) == (
                ref.transactions, ref.collision_rate, ref.measured_density
            )

    def test_seed_kwarg_matches_explicit_rng(self):
        by_seed = simulate_collision_rate(
            6, 5.0, FixedDuration(1.0), horizon=100.0, seed=13
        )
        by_rng = simulate_collision_rate(
            6, 5.0, FixedDuration(1.0), horizon=100.0, rng=random.Random(13)
        )
        assert by_seed == by_rng


class TestSharding:
    PIN_SMALL = (949, 0.12539515279241306, 4.561522717310129)
    PIN_LONG = (24063, 0.02169305572871213, 11.909173485859137)

    def _small(self, runner=None, shards=4):
        return simulate_collision_rate(
            6, 5.0, ExponentialDuration(1.0), horizon=200.0,
            warmup=2.0, seed=42, shards=shards, runner=runner,
        )

    def test_sharded_pins(self):
        mc = self._small()
        assert (mc.transactions, mc.collision_rate, mc.measured_density) == (
            self.PIN_SMALL
        )
        long = simulate_collision_rate(
            10, 12.0, ExponentialDuration(1.0), horizon=2000.0, seed=9, shards=4
        )
        assert (long.transactions, long.collision_rate,
                long.measured_density) == self.PIN_LONG

    def test_deterministic_across_worker_counts_and_repeats(self):
        from repro.exec import TrialRunner

        baseline = self._small()
        for workers in (1, 3):
            assert self._small(runner=TrialRunner(workers=workers)) == baseline
        assert self._small() == baseline

    def test_stitch_matches_brute_force_oracle(self):
        """Sharded collision counts equal O(n^2) overlap ground truth."""
        from repro.core.identifiers import IdentifierSpace
        from repro.exec.keys import segment_seed

        bits, rate, horizon = 5, 4.0, 60.0
        for seed, shards in itertools.product((1, 2, 3), (2, 3, 5)):
            txns = []
            for i in range(shards):
                lo = (horizon * i) / shards
                hi = (horizon * (i + 1)) / shards
                rng = random.Random(segment_seed(seed, i))
                starts, durations = _generate_arrivals(
                    rate, ExponentialDuration(1.0), rng, lo, hi
                )
                space = IdentifierSpace(bits)
                idents = [space.sample(rng) for _ in starts]
                txns += [
                    (starts[k], starts[k] + durations[k], idents[k])
                    for k in range(len(starts))
                ]
            collided = set()
            for a in range(len(txns)):
                for b in range(a + 1, len(txns)):
                    sa, ea, ia = txns[a]
                    sb, eb, ib = txns[b]
                    if ia == ib and sa < eb and sb < ea:
                        collided.add(a)
                        collided.add(b)

            mc = simulate_collision_rate(
                bits, rate, ExponentialDuration(1.0),
                horizon=horizon, seed=seed, shards=shards,
            )
            assert mc.transactions == len(txns)
            assert round(mc.collision_rate * mc.transactions) == len(collided)

    def test_warmup_excludes_early_transactions(self):
        full = simulate_collision_rate(
            6, 5.0, ExponentialDuration(1.0), horizon=100.0, seed=8, shards=2
        )
        warmed = simulate_collision_rate(
            6, 5.0, ExponentialDuration(1.0), horizon=100.0, seed=8,
            shards=2, warmup=50.0,
        )
        assert 0 < warmed.transactions < full.transactions

    def test_empty_segments_give_nan(self):
        mc = simulate_collision_rate(
            8, 0.0001, FixedDuration(1.0), horizon=1.0, seed=1, shards=2
        )
        assert mc.transactions == 0
        assert math.isnan(mc.collision_rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_collision_rate(6, 5.0, FixedDuration(1.0), shards=0)
        with pytest.raises(ValueError):  # shards>1 needs a seed
            simulate_collision_rate(6, 5.0, FixedDuration(1.0), shards=2)
        with pytest.raises(ValueError):  # rng cannot be split into segments
            simulate_collision_rate(
                6, 5.0, FixedDuration(1.0), shards=2, seed=1,
                rng=random.Random(1),
            )

    def test_sharded_failure_surfaces_as_exec_error(self):
        from repro.exec import ExecError

        with pytest.raises(ExecError):
            # A negative-duration sampler fails inside every segment.
            simulate_collision_rate(
                6, 5.0, FixedDuration(-1.0), horizon=10.0, seed=1, shards=2
            )


class TestReplication:
    def test_shards_one_is_the_classic_point(self):
        """shards=1 must not perturb derived seeds or recorded results."""
        classic = replicate_collision_rate(
            6, 5.0, ExponentialDuration(1.0), trials=2, horizon=50.0
        )
        explicit = replicate_collision_rate(
            6, 5.0, ExponentialDuration(1.0), trials=2, horizon=50.0, shards=1
        )
        assert classic == explicit

    def test_sharded_replication_is_deterministic(self):
        first = replicate_collision_rate(
            6, 5.0, ExponentialDuration(1.0), trials=2, horizon=60.0, shards=3
        )
        second = replicate_collision_rate(
            6, 5.0, ExponentialDuration(1.0), trials=2, horizon=60.0, shards=3
        )
        assert first == second
        assert not math.isnan(first[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate_collision_rate(
                6, 5.0, ExponentialDuration(1.0), trials=0
            )
        with pytest.raises(ValueError):
            replicate_collision_rate(
                6, 5.0, ExponentialDuration(1.0), trials=1, shards=0
            )
