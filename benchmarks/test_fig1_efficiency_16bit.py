"""Figure 1: efficiency of AFF vs static allocation, 16-bit data.

Paper's claims, asserted here:
  * AFF(T=16) peaks at 9 identifier bits, above the 16-bit static 50% line;
  * static 16/32-bit lines are flat at 50% / 33%;
  * AFF(T=65536) never beats 16-bit static (the fully utilised case).
"""

import pytest

from repro.experiments.figures import figure_1


def test_figure_1(benchmark, publish_figure):
    fig = benchmark.pedantic(figure_1, rounds=1, iterations=1)
    publish_figure("figure_1", fig)

    aff16 = fig.series_by_label("AFF T=16")
    peak_bits, peak_eff = aff16.peak()
    assert peak_bits == 9, "paper: optimal AFF identifier size is 9 bits at T=16"
    assert peak_eff > 0.5, "paper: AFF at its optimum beats 16-bit static (50%)"

    static16 = fig.series_by_label("static 16-bit")
    static32 = fig.series_by_label("static 32-bit")
    assert static16.y[0] == pytest.approx(0.5)
    assert static32.y[0] == pytest.approx(1 / 3)

    extreme = fig.series_by_label("AFF T=65536")
    assert max(extreme.y) <= 0.5 + 1e-9, "paper: no room for AFF at 64K density"
