"""Integration-style unit tests for the AFF driver over the radio."""

import random

import pytest

from repro.aff.driver import AffDriver
from repro.core.identifiers import IdentifierSpace, ListeningSelector, UniformSelector
from repro.core.transactions import TransactionLog
from repro.net.packets import BitBudget, Packet
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


def build_pair(id_bits=8, listening=False, seed=0, n=2):
    sim = Simulator()
    medium = BroadcastMedium(sim, FullMesh(range(n)), rf_collisions=False)
    drivers = []
    delivered = []
    for node in range(n):
        radio = Radio(medium, node)
        space = IdentifierSpace(id_bits)
        rng = random.Random(seed * 100 + node)
        selector = (
            ListeningSelector(space, rng) if listening else UniformSelector(space, rng)
        )
        driver = AffDriver(
            radio,
            selector,
            listening=listening,
            deliver=(lambda p, node=node: delivered.append((node, p))),
        )
        drivers.append(driver)
    return sim, drivers, delivered


class TestEndToEnd:
    def test_packet_travels_node0_to_node1(self):
        sim, drivers, delivered = build_pair()
        payload = b"temperature=23.5C" * 4
        drivers[0].send(Packet(payload=payload, origin=0))
        sim.run()
        assert (1, payload) in delivered

    def test_large_packet_fragments_and_reassembles(self):
        sim, drivers, delivered = build_pair()
        payload = bytes(i % 251 for i in range(5000))
        drivers[0].send(Packet(payload=payload, origin=0))
        sim.run()
        assert (1, payload) in delivered

    def test_many_packets_all_delivered(self):
        sim, drivers, delivered = build_pair(id_bits=16)
        payloads = [bytes([i]) * 40 for i in range(20)]
        for p in payloads:
            drivers[0].send(Packet(payload=p, origin=0))
        sim.run()
        received = [p for node, p in delivered if node == 1]
        assert received == payloads

    def test_bidirectional_traffic(self):
        sim, drivers, delivered = build_pair(id_bits=16)
        drivers[0].send(Packet(payload=b"ping" * 10, origin=0))
        drivers[1].send(Packet(payload=b"pong" * 10, origin=1))
        sim.run()
        assert (1, b"ping" * 10) in delivered
        assert (0, b"pong" * 10) in delivered

    def test_send_returns_identifier_in_space(self):
        sim, drivers, _ = build_pair(id_bits=4)
        identifier = drivers[0].send(Packet(payload=b"x" * 10, origin=0))
        assert 0 <= identifier < 16


class TestAccounting:
    def test_budget_charges_headers_and_payload(self):
        sim, drivers, _ = build_pair()
        payload = b"\x00" * 80
        drivers[0].send(Packet(payload=payload, origin=0))
        sim.run()
        budget = drivers[0].budget
        assert budget.transmitted("payload") == 8 * 80
        assert budget.transmitted("header") > 0

    def test_total_bits_match_encoded_frames_exactly(self):
        """The ledger must equal the bits that actually crossed the air
        (bit-packing padding included, booked as header)."""
        sim, drivers, _ = build_pair()
        payload = b"\x00" * 80
        identifier = drivers[0].send(Packet(payload=payload, origin=0))
        sim.run()
        budget = drivers[0].budget
        plan = drivers[0].fragmenter.fragment(payload, identifier)
        on_air_bits = sum(
            8 * len(drivers[0].codec.encode(f)) for f in plan.fragments
        )
        assert drivers[0].radio.frames_sent == 5
        assert budget.total_transmitted == on_air_bits

    def test_stats_counters(self):
        sim, drivers, _ = build_pair()
        drivers[0].send(Packet(payload=b"\x00" * 80, origin=0))
        sim.run()
        assert drivers[0].stats.packets_sent == 1
        assert drivers[0].stats.fragments_sent == 5


class TestTransactionLogIntegration:
    def test_transactions_open_and_close(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False)
        log = TransactionLog()
        radio = Radio(medium, 0)
        driver = AffDriver(
            radio, UniformSelector(IdentifierSpace(8), random.Random(1)), txn_log=log
        )
        Radio(medium, 1)  # listener exists so transmission has an audience
        driver.send(Packet(payload=b"\x00" * 80, origin=0))
        assert log.open_count() == 1
        sim.run()
        assert log.open_count() == 0
        assert log.total == 1

    def test_transaction_spans_whole_fragment_train(self):
        sim = Simulator()
        medium = BroadcastMedium(
            sim, FullMesh(range(2)), bitrate=1000.0, rf_collisions=False
        )
        log = TransactionLog()
        driver = AffDriver(
            Radio(medium, 0),
            UniformSelector(IdentifierSpace(8), random.Random(1)),
            txn_log=log,
        )
        Radio(medium, 1)
        driver.send(Packet(payload=b"\x00" * 80, origin=0))
        sim.run()
        txn = log.transactions[0]
        # Encoded frames are 6 + 27 + 27 + 27 + 19 bytes = 848 bits; at
        # 1000 bps the transaction must span at least their total airtime.
        plan = driver.fragmenter.fragment(b"\x00" * 80, 0)
        on_air_bits = sum(8 * len(driver.codec.encode(f)) for f in plan.fragments)
        assert txn.end - txn.start >= on_air_bits / 1000 - 1e-9


class TestListening:
    def test_listening_driver_observes_overheard_intros(self):
        sim, drivers, _ = build_pair(id_bits=8, listening=True, n=3)
        identifier = drivers[0].send(Packet(payload=b"\x00" * 40, origin=0))
        sim.run()
        # Drivers 1 and 2 overheard the introduction.
        for driver in drivers[1:]:
            assert identifier in list(driver.selector._heard)

    def test_listening_selector_avoids_active_identifier(self):
        sim, drivers, _ = build_pair(id_bits=4, listening=True, n=2)
        identifier = drivers[0].send(Packet(payload=b"\x00" * 40, origin=0))
        sim.run()
        # Driver 1 heard it; its next selections must avoid that identifier
        # while it is within the avoidance window.
        picks = {drivers[1].selector.select() for _ in range(50)}
        assert identifier not in picks

    def test_malformed_frames_counted_not_fatal(self):
        sim, drivers, _ = build_pair()
        from repro.radio.frame import Frame

        drivers[0].radio.send(Frame(payload=b"\xff" * 3, origin=0))
        sim.run()
        assert drivers[1].stats.malformed_frames == 1
