"""Monte Carlo validation of the collision models.

A lightweight sampler that needs no radio stack: Poisson transaction
arrivals, per-transaction durations from a caller-supplied sampler,
uniform identifier choice, and the same ground-truth collision criterion
the paper's model uses ("unique with respect to all other transactions
... for the entire duration").  Used to check Eq. 4 and the
mixed-duration extension (:func:`repro.core.model.p_success_mixed`)
against brute-force truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.rng import fallback_stream
from .identifiers import IdentifierSpace
from .transactions import TransactionLog

__all__ = ["MonteCarloResult", "simulate_collision_rate"]

DurationSampler = Callable[[random.Random], float]


@dataclass
class MonteCarloResult:
    """Outcome of one Monte Carlo run."""

    transactions: int
    collision_rate: float
    measured_density: float


def simulate_collision_rate(
    id_bits: int,
    arrival_rate: float,
    duration_sampler: DurationSampler,
    horizon: float = 1000.0,
    rng: Optional[random.Random] = None,
    warmup: float = 0.0,
) -> MonteCarloResult:
    """Ground-truth collision rate under Poisson arrivals.

    Parameters
    ----------
    id_bits:
        Identifier space size ``H``.
    arrival_rate:
        Poisson arrival rate λ (transactions/second), network-wide as
        seen at one point.
    duration_sampler:
        ``rng -> duration``; e.g. ``lambda r: 1.0`` for the paper's
        same-length assumption, or an exponential/bimodal sampler for
        the mixed-length extension.
    horizon:
        Simulated seconds of arrivals.
    warmup:
        Transactions starting before this time are excluded from the
        rate (edge effects: early transactions see a half-empty world).

    Each transaction gets a fresh owner id, so same-owner reuse (which
    the ground-truth log exempts) never occurs — matching the model's
    assumption of distinct contending nodes.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = rng if rng is not None else fallback_stream("core.montecarlo")
    space = IdentifierSpace(id_bits)
    log = TransactionLog()

    # Generate arrivals, then replay begin/end events in time order.
    events = []  # (time, kind, txn_record)
    time = 0.0
    owner = 0
    while True:
        time += rng.expovariate(arrival_rate)
        if time >= horizon:
            break
        duration = duration_sampler(rng)
        if duration < 0:
            raise ValueError("duration sampler returned a negative duration")
        events.append((time, 0, owner, duration))
        owner += 1
    # Interleave ends: build a single sorted stream (ends before begins
    # at exact ties, as a finished transaction no longer contends).
    stream = []
    for start, _, who, duration in events:
        stream.append((start, 1, who, duration))
        stream.append((start + duration, 0, who, duration))
    stream.sort(key=lambda e: (e[0], e[1]))

    open_txns = {}
    tracked = []
    for when, kind, who, duration in stream:
        if kind == 1:
            txn = log.begin(owner=who, identifier=space.sample(rng), time=when)
            open_txns[who] = txn
            if when >= warmup:
                tracked.append(txn)
        else:
            txn = open_txns.pop(who, None)
            if txn is not None:
                log.end(txn, when)

    if not tracked:
        return MonteCarloResult(
            transactions=0,
            collision_rate=float("nan"),
            measured_density=log.measured_density(),
        )
    collided = sum(1 for t in tracked if log.collided(t))
    return MonteCarloResult(
        transactions=len(tracked),
        collision_rate=collided / len(tracked),
        measured_density=log.measured_density(),
    )
