"""Unit tests for the statically addressed fragmentation baseline."""

import random

import pytest

from repro.aff.static_frag import StaticCodec, StaticData, StaticDriver, StaticIntro
from repro.core.policies import StaticGlobalPolicy, StaticLocalPolicy
from repro.net.packets import Packet
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.topology.graphs import FullMesh


class TestStaticCodec:
    def test_intro_round_trip(self):
        codec = StaticCodec(addr_bits=16)
        intro = StaticIntro(source=4000, packet_id=7, total_length=80, checksum=0xAB)
        assert codec.decode(codec.encode(intro)) == intro

    def test_data_round_trip(self):
        codec = StaticCodec(addr_bits=16)
        frag = StaticData(source=4000, packet_id=7, offset=22, payload=b"abc")
        assert codec.decode(codec.encode(frag)) == frag

    def test_header_larger_than_aff(self):
        """The whole point: static headers carry address + packet id."""
        from repro.aff.wire import FragmentCodec

        static = StaticCodec(addr_bits=16)
        aff = FragmentCodec(id_bits=9)
        assert static.data_header_bits > aff.data_header_bits
        assert static.intro_header_bits > aff.intro_header_bits

    def test_payload_capacity_shrinks_with_address_size(self):
        small = StaticCodec(addr_bits=8).max_payload_in_frame(27)
        large = StaticCodec(addr_bits=48).max_payload_in_frame(27)
        assert large < small

    def test_invalid_address_size(self):
        with pytest.raises(ValueError):
            StaticCodec(addr_bits=0)

    def test_truncated_input_raises(self):
        codec = StaticCodec(addr_bits=16)
        data = codec.encode(StaticData(source=1, packet_id=1, offset=0, payload=b"abc"))
        with pytest.raises(ValueError):
            codec.decode(data[:2])


def build(n=3, addr_bits=16):
    sim = Simulator()
    medium = BroadcastMedium(sim, FullMesh(range(n)), rf_collisions=False)
    policy = StaticGlobalPolicy(addr_bits=addr_bits, rng=random.Random(42))
    delivered = []
    drivers = [
        StaticDriver(
            Radio(medium, node),
            policy,
            deliver=(lambda p, node=node: delivered.append((node, p))),
        )
        for node in range(n)
    ]
    return sim, drivers, delivered


class TestStaticDriver:
    def test_end_to_end_delivery(self):
        sim, drivers, delivered = build()
        payload = b"static world" * 5
        drivers[0].send(Packet(payload=payload, origin=0))
        sim.run()
        assert (1, payload) in delivered and (2, payload) in delivered

    def test_senders_have_distinct_addresses(self):
        sim, drivers, _ = build()
        addresses = {d.address for d in drivers}
        assert len(addresses) == 3

    def test_concurrent_senders_never_collide(self):
        """Unlike AFF, simultaneous packets from different sources always
        reassemble: the address disambiguates."""
        sim, drivers, delivered = build()
        a_payload, b_payload = b"A" * 60, b"B" * 60
        drivers[0].send(Packet(payload=a_payload, origin=0))
        drivers[1].send(Packet(payload=b_payload, origin=1))
        sim.run()
        got_at_2 = {p for node, p in delivered if node == 2}
        assert got_at_2 == {a_payload, b_payload}

    def test_many_concurrent_packets_all_delivered(self):
        sim, drivers, delivered = build()
        payloads = [bytes([i]) * 50 for i in range(10)]
        for i, p in enumerate(payloads):
            drivers[i % 2].send(Packet(payload=p, origin=i % 2))
        sim.run()
        got_at_2 = [p for node, p in delivered if node == 2]
        assert sorted(got_at_2) == sorted(payloads)

    def test_budget_header_bits_reflect_address_size(self):
        sim_small, drivers_small, _ = build(addr_bits=8)
        sim_large, drivers_large, _ = build(addr_bits=48)
        payload = b"\x00" * 80
        drivers_small[0].send(Packet(payload=payload, origin=0))
        drivers_large[0].send(Packet(payload=payload, origin=0))
        sim_small.run()
        sim_large.run()
        assert (
            drivers_large[0].budget.transmitted("header")
            > drivers_small[0].budget.transmitted("header")
        )

    def test_packet_id_wraps_safely(self):
        sim, drivers, _ = build()
        drivers[0]._next_packet_id = 65535
        drivers[0].send(Packet(payload=b"x" * 10, origin=0))
        drivers[0].send(Packet(payload=b"y" * 10, origin=0))
        sim.run()
        assert drivers[0].packets_sent == 2

    def test_works_with_static_local_policy(self):
        sim = Simulator()
        medium = BroadcastMedium(sim, FullMesh(range(2)), rf_collisions=False)
        policy = StaticLocalPolicy(range(2))
        delivered = []
        tx = StaticDriver(Radio(medium, 0), policy)
        rx = StaticDriver(Radio(medium, 1), policy, deliver=delivered.append)
        tx.send(Packet(payload=b"local" * 8, origin=0))
        sim.run()
        assert delivered == [b"local" * 8]
