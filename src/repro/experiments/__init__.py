"""Experiment harnesses that regenerate the paper's tables and figures."""

from .figures import (
    FIG1_DENSITIES,
    FIG4_DEFAULT_ID_BITS,
    FigureResult,
    figure_1,
    figure_2,
    figure_3,
    figure_4,
)
from .harness import (
    CollisionTrialConfig,
    TrialResult,
    replicate,
    run_collision_trial,
)
from .plotting import AsciiChart, render_series
from .results import Series, Table, aggregate_trials
from .sweep import SweepPoint, SweepResult, grid_sweep
from .scenarios import (
    EfficiencyMeasurement,
    codebook_scenario,
    density_estimation_accuracy,
    density_step_tracking,
    dynamic_allocation_overhead,
    flooding_scenario,
    hidden_terminal_experiment,
    interest_scenario,
    measured_efficiency,
)

__all__ = [
    "AsciiChart",
    "CollisionTrialConfig",
    "SweepPoint",
    "SweepResult",
    "grid_sweep",
    "render_series",
    "EfficiencyMeasurement",
    "FIG1_DENSITIES",
    "FIG4_DEFAULT_ID_BITS",
    "FigureResult",
    "Series",
    "Table",
    "TrialResult",
    "aggregate_trials",
    "codebook_scenario",
    "density_estimation_accuracy",
    "density_step_tracking",
    "dynamic_allocation_overhead",
    "figure_1",
    "flooding_scenario",
    "figure_2",
    "figure_3",
    "figure_4",
    "hidden_terminal_experiment",
    "interest_scenario",
    "measured_efficiency",
    "replicate",
    "run_collision_trial",
]
