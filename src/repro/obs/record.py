"""Drive a scenario and export its trace (``repro obs record``).

Two recordable scenarios:

* ``montecarlo`` — the ground-truth collision sampler
  (:func:`repro.core.montecarlo.simulate_collision_rate`) with its
  ``trace_spool`` export: every segment streams its ``txn.begin`` /
  ``txn.end`` records to a shard file (in whatever worker process
  computed it) and the parent heap-merges the shards plus the
  post-stitch ``txn.collision`` stream into one ordered trace.  Because
  the shards and the merge order are pure functions of ``(seed,
  shards)``, the exported trace is byte-identical at any worker count —
  which is exactly what ``repro obs diff`` verifies.
* ``collision`` — one Section 5.1 validation trial
  (:func:`repro.experiments.harness.run_collision_trial`) with a real
  :class:`~repro.sim.trace.TraceRecorder` attached to the broadcast
  medium, exporting the ``frame.tx`` / ``frame.rx`` / ``frame.drop``
  stream.

Heavy imports are deferred into the functions: this module sits above
the scenario layers and is imported by the CLI on every invocation.
"""

from __future__ import annotations

import pathlib
import shutil
from typing import Any, Dict, Optional, Union

from .envelope import read_header, read_trace, write_trace

__all__ = [
    "record_collision",
    "record_montecarlo",
    "summarize_trace",
    "write_summary",
]

PathLike = Union[str, pathlib.Path]


def record_montecarlo(
    out: PathLike,
    id_bits: int = 8,
    rate: float = 5.0,
    horizon: float = 100.0,
    warmup: float = 0.0,
    mean_duration: float = 1.0,
    fixed_duration: bool = False,
    seed: int = 0,
    shards: int = 1,
    runner: Any = None,
) -> Dict[str, Any]:
    """Run one Monte Carlo trial, exporting its trace to ``out``.

    The spool directory (``<out>.spool``) holds per-segment shards
    during the run and is removed afterwards; only the merged trace
    survives.  Returns the scenario's result as a JSON-safe dict.
    """
    from ..core.montecarlo import (
        ExponentialDuration,
        FixedDuration,
        simulate_collision_rate,
    )

    sampler = (
        FixedDuration(mean_duration)
        if fixed_duration
        else ExponentialDuration(mean_duration)
    )
    target = pathlib.Path(out)
    target.parent.mkdir(parents=True, exist_ok=True)
    spool = target.with_name(target.name + ".spool")
    try:
        result = simulate_collision_rate(
            id_bits,
            rate,
            sampler,
            horizon=horizon,
            warmup=warmup,
            seed=seed,
            shards=shards,
            runner=runner,
            trace_spool=str(spool),
        )
        (spool / "trace.jsonl").replace(target)
    finally:
        shutil.rmtree(spool, ignore_errors=True)
    return {
        "scenario": "montecarlo",
        "transactions": result.transactions,
        "collision_rate": result.collision_rate,
        "measured_density": result.measured_density,
    }


def record_collision(
    out: PathLike,
    id_bits: int = 4,
    n_senders: int = 5,
    duration: float = 10.0,
    selector: str = "uniform",
    seed: int = 0,
) -> Dict[str, Any]:
    """Run one collision-measurement trial, exporting its frame trace."""
    from ..experiments.harness import CollisionTrialConfig, run_collision_trial
    from ..sim.trace import TraceRecorder

    config = CollisionTrialConfig(
        id_bits=id_bits,
        n_senders=n_senders,
        duration=duration,
        selector=selector,
        seed=seed,
    )
    recorder = TraceRecorder()
    result = run_collision_trial(config, recorder=recorder)
    meta = {
        "scenario": "collision",
        "id_bits": id_bits,
        "n_senders": n_senders,
        "duration": duration,
        "selector": selector,
        "seed": seed,
    }
    target = pathlib.Path(out)
    target.parent.mkdir(parents=True, exist_ok=True)
    write_trace(target, iter(recorder), meta=meta)
    return {
        "scenario": "collision",
        "packets_offered": result.packets_offered,
        "received_unique": result.received_unique,
        "would_be_lost": result.would_be_lost,
        "collision_loss_rate": result.collision_loss_rate,
        "measured_density": result.measured_density,
    }


def summarize_trace(path: PathLike) -> Dict[str, Any]:
    """Streaming summary of a trace: meta, counts per category, time span."""
    header = read_header(path)
    categories: Dict[str, int] = {}
    records = 0
    first: Optional[float] = None
    last: Optional[float] = None
    for record in read_trace(path):
        records += 1
        categories[record.category] = categories.get(record.category, 0) + 1
        if first is None:
            first = record.time
        last = record.time
    return {
        "meta": header.get("meta", {}),
        "writer": header.get("writer"),
        "records": records,
        "categories": {name: categories[name] for name in sorted(categories)},
        "time_span": (
            {"first": first, "last": last} if first is not None else None
        ),
    }


def write_summary(
    path: PathLike,
    trace_path: PathLike,
    result: Dict[str, Any],
    spans: Optional[Dict[str, Dict[str, float]]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write an ``obs-summary`` envelope next to a recorded trace.

    Combines the trace's streaming summary with the scenario result and
    (when profiling was on) the merged span table + per-layer breakdown.
    """
    from ..experiments.persistence import save_envelope
    from .spans import layer_breakdown

    payload: Dict[str, Any] = {
        "trace": str(trace_path),
        "result": result,
        **summarize_trace(trace_path),
    }
    if spans:
        payload["spans"] = spans
        payload["layer_times"] = {
            layer: round(total, 6)
            for layer, total in layer_breakdown(spans).items()
        }
    if telemetry is not None:
        payload["telemetry"] = telemetry
    save_envelope(path, "obs-summary", payload)
    return payload
