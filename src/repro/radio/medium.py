"""The shared broadcast medium.

Models the essential physics of a low-power radio like the paper's
Radiometrix RPC: a transmission occupies the air for ``bits / bitrate``
seconds and is heard by every attached radio within range (per the
topology).  Two things can destroy a frame on a given link:

* an **RF collision** — another transmission audible at the receiver
  overlaps in time (enabled by default; the ALOHA regime), and
* **channel loss** — the per-link :class:`~repro.radio.channel.Channel`
  model drops it.

The medium also exposes :meth:`busy_at` for carrier-sensing MACs, and
emits ``frame.tx`` / ``frame.rx`` / ``frame.drop`` trace records.

The medium never interprets frame payloads; protocol identifiers are
invisible here.  This separation is what lets the instrumented AFF
experiments distinguish RF losses from identifier-collision losses,
exactly as the paper's instrumented driver did.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.metrics import active_metrics
from ..obs.spans import active_profiler
from ..sim.engine import Simulator
from ..sim.rng import fallback_stream
from ..sim.trace import NullRecorder, TraceRecorder
from ..topology.graphs import Topology
from .channel import Channel, PerfectChannel
from .frame import Frame

__all__ = ["BroadcastMedium", "MediumStats", "Transmission"]

#: Default bit rate of an RPC-like radio, bits/second.
DEFAULT_BITRATE = 40_000.0


@dataclass
class Transmission:
    """One in-flight frame occupying the air."""

    frame: Frame
    start: float
    end: float

    def overlaps(self, start: float, end: float) -> bool:
        """True when [start, end) intersects this transmission's window."""
        return self.start < end and start < self.end


@dataclass
class MediumStats:
    """Aggregate medium behaviour over a run."""

    frames_sent: int = 0
    deliveries: int = 0
    rf_collision_drops: int = 0
    channel_drops: int = 0
    out_of_range: int = 0


class BroadcastMedium:
    """Connects radios through a topology with timing-accurate broadcast.

    Parameters
    ----------
    sim:
        The event kernel.
    topology:
        Decides who hears whom.  May mutate during the run (churn).
    bitrate:
        Air bit rate; transmission time is ``size_bits / bitrate``.
    rf_collisions:
        When True, time-overlapping audible transmissions corrupt each
        other at shared receivers.  Turn off to isolate identifier
        collisions from RF collisions in validation runs.
    channel_factory:
        ``(sender, receiver) -> Channel`` for per-link loss; defaults to
        a shared :class:`PerfectChannel`.
    recorder:
        Trace sink; defaults to a counting :class:`NullRecorder`.
    rng:
        Random stream for channel sampling.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        bitrate: float = DEFAULT_BITRATE,
        rf_collisions: bool = True,
        channel_factory: Optional[Callable[[int, int], Channel]] = None,
        recorder: Optional[TraceRecorder] = None,
        rng: Optional[random.Random] = None,
    ):
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        self.sim = sim
        self.topology = topology
        self.bitrate = bitrate
        self.rf_collisions = rf_collisions
        self._channel_factory = channel_factory
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._default_channel = PerfectChannel()
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.rng = rng if rng is not None else fallback_stream("radio.BroadcastMedium")
        self._radios: Dict[int, "object"] = {}
        self._active: List[Transmission] = []
        # Finished transmissions kept until nothing in flight could have
        # overlapped them; needed so a short frame that collided with a
        # longer one still corrupts the longer frame at resolution time.
        self._recent: List[Transmission] = []
        self.stats = MediumStats()
        # Observational-only span profiling, bound at construction.
        self._profiler = active_profiler()
        # Deterministic counters (frames on the air, per-receiver fates);
        # same construction-time binding, one None-check when off.
        self._metrics = active_metrics()

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, node_id: int, radio: "object") -> None:
        """Register ``radio`` as node ``node_id``'s transceiver."""
        if node_id in self._radios:
            raise ValueError(f"node {node_id} already has a radio attached")
        self._radios[node_id] = radio

    def detach(self, node_id: int) -> None:
        self._radios.pop(node_id, None)

    def radio_for(self, node_id: int):
        return self._radios.get(node_id)

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def channel_for(self, sender: int, receiver: int) -> Channel:
        """Per-link channel instance (cached so stateful models persist)."""
        if self._channel_factory is None:
            return self._default_channel
        key = (sender, receiver)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channel_factory(sender, receiver)
            self._channels[key] = channel
        return channel

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def airtime(self, frame: Frame) -> float:
        """Seconds the frame occupies the air."""
        return frame.size_bits / self.bitrate

    def transmit(self, frame: Frame) -> float:
        """Put ``frame`` on the air now.  Returns its airtime.

        Delivery (or drop) at each in-range receiver resolves at the
        frame's end-of-transmission instant.
        """
        prof = self._profiler
        if prof is None:
            return self._transmit(frame)
        t0 = prof.clock()
        airtime = self._transmit(frame)
        prof.add("radio.transmit", prof.clock() - t0)
        return airtime

    def _transmit(self, frame: Frame) -> float:
        start = self.sim.now
        end = start + self.airtime(frame)
        txn = Transmission(frame=frame, start=start, end=end)
        self._active.append(txn)
        self.stats.frames_sent += 1
        if self._metrics is not None:
            self._metrics.inc("radio.frames_tx")
        self.recorder.emit(
            start, "frame.tx", origin=frame.origin, seq=frame.seq, bits=frame.size_bits
        )
        # Snapshot the audience now: churn during flight should not add
        # listeners that were not present at transmission time.
        audience = list(self.topology.neighbors(frame.origin))
        self.sim.schedule(end - start, self._resolve, txn, audience)
        return end - start

    def _resolve(self, txn: Transmission, audience: List[int]) -> None:
        """At end-of-frame: decide per-receiver fate and deliver."""
        metrics = self._metrics
        for receiver in audience:
            radio = self._radios.get(receiver)
            if radio is None:
                self.stats.out_of_range += 1
                continue
            if self.rf_collisions and self._corrupted_at(txn, receiver):
                self.stats.rf_collision_drops += 1
                if metrics is not None:
                    metrics.inc("radio.rf_collisions")
                self.recorder.emit(
                    self.sim.now,
                    "frame.drop",
                    reason="rf_collision",
                    origin=txn.frame.origin,
                    receiver=receiver,
                    seq=txn.frame.seq,
                )
                continue
            if not self.channel_for(txn.frame.origin, receiver).deliver(self.rng):
                self.stats.channel_drops += 1
                if metrics is not None:
                    metrics.inc("radio.channel_drops")
                self.recorder.emit(
                    self.sim.now,
                    "frame.drop",
                    reason="channel",
                    origin=txn.frame.origin,
                    receiver=receiver,
                    seq=txn.frame.seq,
                )
                continue
            self.stats.deliveries += 1
            if metrics is not None:
                metrics.inc("radio.frames_rx")
            self.recorder.emit(
                self.sim.now,
                "frame.rx",
                origin=txn.frame.origin,
                receiver=receiver,
                seq=txn.frame.seq,
                bits=txn.frame.size_bits,
            )
            radio._deliver(txn.frame)
        self._active.remove(txn)
        self._recent.append(txn)
        self._prune_recent()

    def _prune_recent(self) -> None:
        """Drop finished transmissions no in-flight frame can overlap."""
        if not self._active:
            self._recent.clear()
            return
        horizon = min(t.start for t in self._active)
        self._recent = [t for t in self._recent if t.end > horizon]

    def _corrupted_at(self, txn: Transmission, receiver: int) -> bool:
        """True when another audible transmission overlapped ``txn`` there."""
        heard = self.topology.neighbors(receiver)
        for other in self._active + self._recent:
            if other is txn:
                continue
            if not other.overlaps(txn.start, txn.end):
                continue
            if other.frame.origin == receiver:
                # A half-duplex radio transmitting cannot receive; treat
                # own transmission overlap as corruption too.
                return True
            if other.frame.origin in heard:
                return True
        return False

    # ------------------------------------------------------------------
    # Carrier sense
    # ------------------------------------------------------------------
    def busy_at(self, node_id: int) -> bool:
        """True when ``node_id`` can currently hear energy on the air."""
        heard = self.topology.neighbors(node_id)
        now = self.sim.now
        for txn in self._active:
            if txn.end <= now:
                continue
            if txn.frame.origin == node_id or txn.frame.origin in heard:
                return True
        return False

    @property
    def active_count(self) -> int:
        return len(self._active)
