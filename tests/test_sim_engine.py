"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(10):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_zero_delay_runs_after_current_queue_at_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "first")
        sim.schedule(1.0, lambda: sim.schedule(0.0, order.append, "nested"))
        sim.schedule(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_callback_args_are_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(4.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [4.0]

    def test_schedule_at_past_time_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        hits = []
        handle = sim.schedule(1.0, hits.append, "x")
        handle.cancel()
        sim.run()
        assert hits == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancel_via_simulator_method(self):
        sim = Simulator()
        hits = []
        handle = sim.schedule(1.0, hits.append, 1)
        sim.cancel(handle)
        sim.run()
        assert hits == []

    def test_active_flag_tracks_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        handle.cancel()
        assert not handle.active

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending == 1


class TestRunLoop:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, hits.append, "in")
        sim.schedule(10.0, hits.append, "out")
        end = sim.run(until=5.0)
        assert end == 5.0
        assert hits == ["in"]
        assert sim.pending == 1

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        hits = []
        sim.schedule(5.0, hits.append, "edge")
        sim.run(until=5.0)
        assert hits == ["edge"]

    def test_run_with_empty_queue_advances_to_until(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bounds_execution(self):
        sim = Simulator()
        count = []
        for _ in range(100):
            sim.schedule(1.0, count.append, 1)
        sim.run(max_events=10)
        assert len(count) == 10

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_fires_exactly_one_event(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, hits.append, 1)
        sim.schedule(2.0, hits.append, 2)
        assert sim.step() is True
        assert hits == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        hits = []

        def chain(n):
            hits.append(n)
            if n < 5:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 1)
        sim.run()
        assert hits == [1, 2, 3, 4, 5]
        assert sim.now == 5.0

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, recurse)
        sim.run()
        assert len(errors) == 1

    def test_exception_in_callback_propagates(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("boom")

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_clock_never_goes_backwards(self):
        sim = Simulator()
        observed = []
        for delay in (5.0, 1.0, 3.0, 1.0, 4.0):
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
