"""Unit and property tests for MSB-first bit packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import BitReader, BitWriter, BitstreamError


class TestBitWriter:
    def test_single_byte(self):
        w = BitWriter()
        w.write(0xAB, 8)
        assert w.getvalue() == b"\xab"

    def test_msb_first_packing(self):
        w = BitWriter()
        w.write(0b1, 1)
        w.write(0b0000000, 7)
        assert w.getvalue() == b"\x80"

    def test_cross_byte_value(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b111111111, 9)  # 3+9 = 12 bits
        # 1011 1111 1111 0000
        assert w.getvalue() == bytes([0b10111111, 0b11110000])

    def test_final_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write(0b11, 2)
        assert w.getvalue() == bytes([0b11000000])

    def test_bits_written_counter(self):
        w = BitWriter()
        w.write(5, 3)
        w.write_bytes(b"ab")
        assert w.bits_written == 19

    def test_oversized_value_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write(4, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write(-1, 8)

    def test_zero_bits_writes_nothing(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.getvalue() == b""

    def test_chaining(self):
        out = BitWriter().write(1, 1).write(0, 1).write(3, 2).getvalue()
        assert out == bytes([0b10110000])


class TestBitReader:
    def test_read_back_single_values(self):
        data = BitWriter().write(0b101, 3).write(0x1234, 16).getvalue()
        r = BitReader(data)
        assert r.read(3) == 0b101
        assert r.read(16) == 0x1234

    def test_bits_remaining(self):
        r = BitReader(b"\xff\xff")
        assert r.bits_remaining == 16
        r.read(5)
        assert r.bits_remaining == 11

    def test_read_past_end_raises(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(BitstreamError):
            r.read(1)

    def test_read_bytes(self):
        data = BitWriter().write(0b1, 1).write_bytes(b"hi").getvalue()
        r = BitReader(data)
        assert r.read(1) == 1
        assert r.read_bytes(2) == b"hi"

    def test_read_zero_bits(self):
        r = BitReader(b"\x00")
        assert r.read(0) == 0


class TestRoundTrip:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=48), st.randoms()),
            min_size=1,
            max_size=20,
        )
    )
    def test_arbitrary_field_sequences_round_trip(self, specs):
        fields = []
        w = BitWriter()
        for bits, rnd in specs:
            value = rnd.randrange(1 << bits)
            fields.append((value, bits))
            w.write(value, bits)
        r = BitReader(w.getvalue())
        for value, bits in fields:
            assert r.read(bits) == value

    @given(st.binary(min_size=0, max_size=100), st.integers(min_value=0, max_value=15))
    def test_bytes_round_trip_at_any_bit_offset(self, payload, offset_bits):
        w = BitWriter()
        w.write(0, offset_bits)
        w.write_bytes(payload)
        r = BitReader(w.getvalue())
        r.read(offset_bits)
        assert r.read_bytes(len(payload)) == payload

    @given(st.integers(min_value=0, max_value=2**62 - 1))
    def test_wide_values_round_trip(self, value):
        w = BitWriter().write(value, 62)
        assert BitReader(w.getvalue()).read(62) == value
