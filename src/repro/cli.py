"""Command-line interface: regenerate the paper from a shell.

::

    python -m repro figure 1                 # analytic figures 1-3 (instant)
    python -m repro figure 4 --trials 3 --duration 20
    python -m repro figure 4 --trials 10 --workers 4 --cache-dir .repro-cache
    python -m repro model --data-bits 16 --density 16
    python -m repro validate                 # quick Figure 4-style check
    python -m repro scenario hidden-terminal
    python -m repro report                   # everything, into a directory

Figures print both the numeric table and an ASCII chart.

The simulated commands (``figure 4``, ``validate``, ``sweep``,
``report``, ``scenario``) accept execution-layer flags —
``--workers N`` fans trials out across processes, ``--cache-dir``
enables the content-addressed result cache, ``--no-cache`` disables it,
and ``--telemetry PATH`` writes the run's execution telemetry as JSON.
Worker count and cache state never change the computed numbers; see
``docs/parallel.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import model
from .exec import ResultCache, TrialRunner, WorkerPool
from .experiments import figures as figs

from .experiments.plotting import render_series
from .experiments.results import Table

__all__ = ["main"]


def _add_exec_flags(sub: argparse.ArgumentParser, default_cache: Optional[str] = None) -> None:
    """Execution-layer options shared by every simulated subcommand."""
    group = sub.add_argument_group("execution")
    group.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for trial execution (default 1 = serial; "
        "results are identical at any worker count)",
    )
    group.add_argument(
        "--cache-dir", default=default_cache, metavar="DIR",
        help="content-addressed trial-result cache directory"
        + (" (default: %(default)s)" if default_cache else " (default: off)"),
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if --cache-dir is set",
    )
    group.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write run telemetry (timings, cache traffic, worker "
        "utilization) as JSON to PATH",
    )
    group.add_argument(
        "--pool", dest="pool", action="store_true", default=False,
        help="serve trials from a persistent worker pool (reused across "
        "the command's runs; results are identical either way)",
    )
    group.add_argument(
        "--no-pool", dest="pool", action="store_false",
        help="force per-run forked workers (the default)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="profile per-layer wall time inside trials (observational "
        "only; summaries land in telemetry and obs summaries)",
    )
    group.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="collect deterministic counters/histograms across every "
        "layer and write the snapshot (JSONL) to PATH; snapshots are "
        "bit-identical at any worker/shard count",
    )


def _make_runner(args: argparse.Namespace) -> TrialRunner:
    cache = None
    if getattr(args, "cache_dir", None) and not getattr(args, "no_cache", False):
        cache = ResultCache(args.cache_dir)
    pool = None
    workers = getattr(args, "workers", 1)
    if getattr(args, "pool", False):
        pool = WorkerPool(workers=max(2, workers))
    return TrialRunner(
        workers=workers,
        cache=cache,
        pool=pool,
        profile=getattr(args, "profile", False),
    )


def _finish_exec(runner: TrialRunner, args: argparse.Namespace) -> None:
    """Print the one-line execution summary; persist telemetry if asked."""
    if runner.pool is not None:
        runner.pool.close()
    telemetry = runner.telemetry
    if telemetry.trials:
        print(telemetry.render(), file=sys.stderr)
        for record in telemetry.records:
            if record.error is not None:
                print(f"  failed {record.label}: {record.error}", file=sys.stderr)
    if getattr(args, "telemetry", None):
        telemetry.save(args.telemetry)
        print(f"wrote {args.telemetry}", file=sys.stderr)


def _print_figure(result: "figs.FigureResult", x_log: bool = False) -> None:
    print(result.table.render())
    print()
    plottable = [s for s in result.series if any(v == v for v in s.y)]
    print(
        render_series(
            plottable,
            title=result.name,
            x_label="transaction density T" if x_log else "identifier bits",
            x_log=x_log,
        )
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    number = args.number
    if number == 1:
        _print_figure(figs.figure_1())
    elif number == 2:
        _print_figure(figs.figure_2())
    elif number == 3:
        result = figs.figure_3()
        # The envelope and fixed-size curves share axes; log-x shows the cliff.
        _print_figure(result, x_log=True)
    elif number == 4:
        runner = _make_runner(args)
        result = figs.figure_4(
            trials=args.trials, duration=args.duration, seed=args.seed,
            runner=runner,
        )
        _print_figure(result)
        _finish_exec(runner, args)
    else:
        print(f"no figure {number}; the paper has figures 1-4", file=sys.stderr)
        return 2
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    data_bits = args.data_bits
    density = args.density
    best_bits, best_eff = model.optimal_identifier_bits(data_bits, density)
    table = Table(
        f"RETRI model: {data_bits}-bit data, transaction density {density}",
        ["quantity", "value"],
    )
    table.add_row("optimal identifier bits", best_bits)
    table.add_row("efficiency at optimum", best_eff)
    table.add_row("P(success) at optimum", model.p_success(best_bits, density))
    table.add_row(
        "P(success) with listening (1st-order)",
        model.p_success_listening(best_bits, density),
    )
    table.add_row(
        "lifetime gain vs 32-bit static",
        model.network_lifetime_gain(data_bits, 32, density),
    )
    for static_bits in (16, 32, 48):
        table.add_row(
            f"static {static_bits}-bit efficiency",
            model.efficiency_static(data_bits, static_bits),
        )
    crossover = model.crossover_density(data_bits, args.static_bits)
    table.add_row(
        f"density where static {args.static_bits}-bit catches up", crossover
    )
    print(table.render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.harness import CollisionTrialConfig, replicate

    runner = _make_runner(args)
    print(
        f"Validation: 5 senders -> 1 receiver, {args.trials} x "
        f"{args.duration:.0f}s per point (paper: 10 x 120s)"
    )
    table = Table(
        "collision rates",
        ["id bits", "model T=5", "random", "listening"],
    )
    for id_bits in (3, 4, 5, 6, 8):
        row = [id_bits, float(model.collision_probability(id_bits, 5))]
        for selector in ("uniform", "listening"):
            mean, _sd, _ = replicate(
                CollisionTrialConfig(
                    id_bits=id_bits,
                    duration=args.duration,
                    selector=selector,
                    seed=args.seed,
                ),
                trials=args.trials,
                runner=runner,
            )
            row.append(mean)
        table.add_row(*row)
    print(table.render())
    _finish_exec(runner, args)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .experiments.report import SCENARIOS, ReportConfig

    entry = SCENARIOS.get(args.name)
    if entry is None:
        print(
            f"unknown scenario {args.name!r}; choose from: "
            + ", ".join(sorted(SCENARIOS)),
            file=sys.stderr,
        )
        return 2
    scenario_fn, description = entry
    exec_runner = _make_runner(args)
    config = ReportConfig(
        duration=args.duration, seed=args.seed, runner=exec_runner
    )
    result = scenario_fn(config)
    table = Table(f"scenario: {args.name} — {description}", ["metric", "value"])
    for key, value in result.items():
        if key == "samples":
            continue  # trajectories are for the report's JSON, not a table
        table.add_row(key, value)
    print(table.render())
    _finish_exec(exec_runner, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import ReportConfig, generate_report

    runner = _make_runner(args)
    written = generate_report(
        args.output,
        ReportConfig(trials=args.trials, duration=args.duration, seed=args.seed),
        runner=runner,
    )
    for path in written:
        print(f"wrote {path}")
    _finish_exec(runner, args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.harness import CollisionTrialConfig, run_collision_trial
    from .experiments.sweep import grid_sweep

    id_bits_values = [int(v) for v in args.id_bits.split(",")]
    sender_values = [int(v) for v in args.senders.split(",")]

    def trial(id_bits: int, n_senders: int, seed: int) -> float:
        return run_collision_trial(
            CollisionTrialConfig(
                id_bits=id_bits,
                n_senders=n_senders,
                duration=args.duration,
                selector=args.selector,
                seed=seed,
            )
        ).collision_loss_rate

    runner = _make_runner(args)
    result = grid_sweep(
        trial,
        grid={"id_bits": id_bits_values, "n_senders": sender_values},
        trials=args.trials,
        base_seed=args.seed,
        runner=runner,
    )
    table = result.to_table(
        f"collision-rate sweep ({args.selector} selection, "
        f"{args.trials} x {args.duration:.0f}s)",
        value_name="collision rate",
    )
    print(table.render())
    _finish_exec(runner, args)
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from .core.montecarlo import (
        ExponentialDuration,
        FixedDuration,
        replicate_collision_rate,
    )

    sampler = (
        FixedDuration(args.mean_duration)
        if args.fixed_duration
        else ExponentialDuration(args.mean_duration)
    )
    runner = _make_runner(args)
    mean, stdev, results = replicate_collision_rate(
        args.id_bits,
        args.rate,
        sampler,
        trials=args.trials,
        base_seed=args.seed,
        horizon=args.horizon,
        warmup=args.warmup,
        runner=runner,
        shards=args.shards,
    )
    density = args.rate * args.mean_duration
    table = Table(
        f"Monte Carlo: H={args.id_bits} bits, lambda={args.rate}/s, "
        f"horizon={args.horizon:.0f}s x {args.trials} trial(s), "
        f"shards={args.shards}",
        ["quantity", "value"],
    )
    table.add_row("model P(collision), T=lambda*d", float(
        model.collision_probability(args.id_bits, max(density, 1.0))
    ))
    table.add_row("simulated collision rate (mean)", mean)
    table.add_row("simulated collision rate (stdev)", stdev)
    if results:
        table.add_row("transactions per trial", results[0].transactions)
        table.add_row("measured density", results[0].measured_density)
    print(table.render())
    _finish_exec(runner, args)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.disk_stats()
        table = Table(f"result cache at {stats['root']}", ["quantity", "value"])
        table.add_row("entries", stats["entries"])
        table.add_row("bytes", stats["bytes"])
        for version, count in stats["versions"].items():
            table.add_row(f"entries written by {version}", count)
        print(table.render())
    elif args.action == "gc":
        # --keep-current is the only (and default) version policy:
        # entries written by any other version are unreachable by
        # construction.  --max-bytes then evicts least-recently-read
        # entries until the cache fits.
        removed = cache.gc(max_bytes=args.max_bytes)
        print(f"cache gc: removed {removed} entr{'y' if removed == 1 else 'ies'}")
    elif args.action == "purge":
        removed = cache.purge()
        print(f"cache purge: removed {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments import trend

    results = pathlib.Path(args.results)
    history = (
        pathlib.Path(args.history)
        if args.history
        else results / trend.HISTORY_NAME
    )
    if args.record:
        recorded = trend.record_snapshot(results, history)
        print(f"recorded {recorded} benchmark(s) into {history}", file=sys.stderr)
    report = trend.analyze(trend.load_history(history), threshold=args.threshold)
    print(report.render())
    return 1 if report.regressions else 0


def _cmd_lint_argv(lint_args: Sequence[str]) -> int:
    # Deferred import: the analysis package registers every rule pack on
    # import, which `repro figure` never needs.
    from .analysis.cli import main as lint_main

    return lint_main(lint_args)


def _cmd_lint(args: argparse.Namespace) -> int:
    return _cmd_lint_argv(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Random, Ephemeral Transaction Identifiers in "
        "Dynamic Sensor Networks' (ICDCS 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure (1-4)")
    fig.add_argument("number", type=int)
    fig.add_argument("--trials", type=int, default=3)
    fig.add_argument("--duration", type=float, default=20.0)
    fig.add_argument("--seed", type=int, default=0)
    _add_exec_flags(fig)
    fig.set_defaults(func=_cmd_figure)

    mod = sub.add_parser("model", help="query the analytic model")
    mod.add_argument("--data-bits", type=int, default=16)
    mod.add_argument("--density", type=float, default=16.0)
    mod.add_argument("--static-bits", type=int, default=16)
    mod.set_defaults(func=_cmd_model)

    val = sub.add_parser("validate", help="quick model-vs-simulation check")
    val.add_argument("--trials", type=int, default=2)
    val.add_argument("--duration", type=float, default=15.0)
    val.add_argument("--seed", type=int, default=0)
    _add_exec_flags(val)
    val.set_defaults(func=_cmd_validate)

    from .experiments.report import SCENARIOS as _scenario_registry

    scen = sub.add_parser("scenario", help="run an extension scenario")
    scen.add_argument("name", choices=sorted(_scenario_registry))
    scen.add_argument("--duration", type=float, default=30.0)
    scen.add_argument("--seed", type=int, default=0)
    _add_exec_flags(scen)
    scen.set_defaults(func=_cmd_scenario)

    rep = sub.add_parser("report", help="write every figure + scenario to a dir")
    rep.add_argument("--output", default="repro-report")
    rep.add_argument("--trials", type=int, default=2)
    rep.add_argument("--duration", type=float, default=15.0)
    rep.add_argument("--seed", type=int, default=0)
    # Reports cache by default (under the output directory) so a re-run
    # only computes what changed; --no-cache opts out.
    _add_exec_flags(rep, default_cache=None)
    rep.set_defaults(func=_cmd_report)

    swp = sub.add_parser(
        "sweep",
        help="sweep collision trials over identifier sizes and densities",
    )
    swp.add_argument(
        "--id-bits", default="3,4,5,6,8",
        help="comma-separated identifier sizes",
    )
    swp.add_argument(
        "--senders", default="5", help="comma-separated sender counts"
    )
    swp.add_argument("--selector", choices=("uniform", "listening", "oracle"),
                     default="uniform")
    swp.add_argument("--trials", type=int, default=2)
    swp.add_argument("--duration", type=float, default=10.0)
    swp.add_argument("--seed", type=int, default=0)
    _add_exec_flags(swp)
    swp.set_defaults(func=_cmd_sweep)

    mc = sub.add_parser(
        "montecarlo",
        help="ground-truth collision trial (optionally horizon-sharded)",
    )
    mc.add_argument("--id-bits", type=int, default=8)
    mc.add_argument("--rate", type=float, default=5.0,
                    help="Poisson arrival rate (transactions/second)")
    mc.add_argument("--horizon", type=float, default=1000.0)
    mc.add_argument("--warmup", type=float, default=0.0)
    mc.add_argument("--mean-duration", type=float, default=1.0)
    mc.add_argument("--fixed-duration", action="store_true",
                    help="constant durations (paper's same-length case) "
                    "instead of exponential")
    mc.add_argument("--trials", type=int, default=2)
    mc.add_argument("--seed", type=int, default=0)
    mc.add_argument("--shards", type=int, default=1,
                    help="split each trial's horizon into this many "
                    "derived-seed time segments (results depend on "
                    "(seed, shards) only; see docs/parallel.md)")
    _add_exec_flags(mc)
    mc.set_defaults(func=_cmd_montecarlo)

    cch = sub.add_parser("cache", help="inspect or clean the result cache")
    cch.add_argument("action", choices=("stats", "gc", "purge"))
    cch.add_argument("--cache-dir", default=".repro-cache", metavar="DIR")
    cch.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="with gc: evict least-recently-read entries until the "
        "cache is at most N bytes",
    )
    cch.add_argument(
        "--keep-current", action="store_true",
        help="gc policy: keep only entries written by the current "
        "repro version (the default and only policy)",
    )
    cch.set_defaults(func=_cmd_cache)

    trd = sub.add_parser(
        "bench-trend",
        help="compare accumulated BENCH_*.json timings, flag regressions",
    )
    trd.add_argument("--results", default="benchmarks/results",
                     help="directory holding BENCH_*.json envelopes")
    trd.add_argument("--history", default=None,
                     help="JSONL history file (default: TREND.jsonl "
                     "under --results)")
    trd.add_argument("--threshold", type=float, default=0.25,
                     help="relative slowdown flagged as a regression")
    trd.add_argument("--record", dest="record", action="store_true",
                     default=True,
                     help="append the current BENCH files to the history "
                     "before comparing (default)")
    trd.add_argument("--no-record", dest="record", action="store_false",
                     help="compare the existing history only")
    trd.set_defaults(func=_cmd_bench_trend)

    met = sub.add_parser(
        "metrics",
        help="show, export, and diff deterministic metrics snapshots "
        "(repro.obs.metrics)",
    )
    # Deferred import, same pattern as obs below: the metrics CLI only
    # loads when the subcommand is actually built.
    from .obs.metrics_cli import configure_parser as _configure_metrics

    _configure_metrics(met)

    obs = sub.add_parser(
        "obs",
        help="record, summarize, and diff structured traces (repro.obs)",
    )
    # Deferred import: repro.obs.envelope pulls in the exec transport;
    # the obs CLI wires itself onto this parser to keep the dependency
    # one-directional at import time.
    from .obs.cli import configure_parser as _configure_obs

    _configure_obs(obs)

    flow = sub.add_parser(
        "flow",
        help="flow-level / hybrid-fidelity simulation of massive "
        "scenarios (repro.flow)",
    )
    # Deferred import, same reason as obs: the flow CLI pulls in the
    # exec and calibration layers, which `repro figure` never needs.
    from .flow.cli import configure_parser as _configure_flow

    _configure_flow(flow)

    lint = sub.add_parser(
        "lint",
        add_help=False,
        help=(
            "static analysis over the tree (alias for python -m "
            "repro.lint; try `repro lint --ranges --report`)"
        ),
    )
    # REMAINDER hands every following token — including --flags and -h —
    # straight to the lint CLI's own parser, so the two entry points
    # cannot drift apart.
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help=(
            "run the runtime determinism sanitizer (DetSan) over pinned "
            "scenarios, or cross-reference its evidence with static lint"
        ),
    )
    # Same deferred-import dance as obs: the sanitizer CLI pulls in the
    # exec layer and subprocess perturbers, none of which belongs in
    # the import cost of `repro figure`.
    from .analysis.sanitizer.cli import configure_parser as _configure_sanitize

    _configure_sanitize(sanitize)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(argv) if argv is not None else sys.argv[1:]
    # ``lint`` is routed before argparse: REMAINDER cannot capture
    # leading ``--flags`` (they would be rejected as unrecognized), and
    # the lint CLI owns its entire flag surface including -h.
    if arguments and arguments[0] == "lint":
        return _cmd_lint_argv(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    # ``--metrics PATH`` activates the deterministic metrics registry
    # around the whole command (one slot, mirroring span profiling) and
    # snapshots it afterwards.  Centralized here so every subcommand
    # that takes the flag behaves identically.
    metrics_out = getattr(args, "metrics", None)
    if metrics_out:
        from .obs.metrics import MetricsRegistry, collecting, write_snapshot

        registry = MetricsRegistry()
        with collecting(registry):
            code = int(args.func(args))
        written = write_snapshot(metrics_out, registry)
        print(f"wrote {written} metric(s) to {metrics_out}", file=sys.stderr)
        return code
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
