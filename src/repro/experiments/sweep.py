"""Generic parameter sweeps with replication.

The benchmarks all share one shape: run a trial function over a grid of
parameter combinations, replicate each point over seeds, and aggregate a
scalar observable into mean ± stddev.  :func:`grid_sweep` factors that
shape out, so new experiments are a dictionary away::

    result = grid_sweep(
        lambda id_bits, seed: run_collision_trial(
            CollisionTrialConfig(id_bits=id_bits, seed=seed, duration=10.0)
        ).collision_loss_rate,
        grid={"id_bits": [3, 4, 5]},
        trials=5,
    )
    result.mean(id_bits=4)   # aggregated observable at that point

Points are evaluated deterministically: replicate ``k`` of a point gets
``seed = base_seed + 1000*k`` (matching the harness's convention), and
grid order is the cartesian product in the order given.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from .results import Table, aggregate_trials

__all__ = ["SweepPoint", "SweepResult", "grid_sweep"]


@dataclass
class SweepPoint:
    """One evaluated grid point."""

    params: Dict[str, Any]
    values: List[float]
    mean: float
    stdev: float


@dataclass
class SweepResult:
    """All points of a sweep, queryable by parameter values."""

    axes: List[str]
    points: List[SweepPoint] = field(default_factory=list)

    def point(self, **params: Any) -> SweepPoint:
        """The point whose parameters match ``params`` exactly."""
        for point in self.points:
            if all(point.params.get(k) == v for k, v in params.items()):
                return point
        raise KeyError(f"no sweep point matching {params!r}")

    def mean(self, **params: Any) -> float:
        return self.point(**params).mean

    def stdev(self, **params: Any) -> float:
        return self.point(**params).stdev

    def series(self, x_axis: str, **fixed: Any):
        """Extract an (x, mean, stdev) series along one axis."""
        from .results import Series

        out = Series(label=", ".join(f"{k}={v}" for k, v in fixed.items()) or x_axis)
        for point in self.points:
            if all(point.params.get(k) == v for k, v in fixed.items()):
                out.append(point.params[x_axis], point.mean, yerr=point.stdev)
        return out

    def to_table(self, title: str, value_name: str = "value") -> Table:
        table = Table(title, self.axes + [f"{value_name} mean", "stdev", "n"])
        for point in self.points:
            table.add_row(
                *[point.params[axis] for axis in self.axes],
                point.mean,
                point.stdev,
                len(point.values),
            )
        return table


def grid_sweep(
    trial_fn: Callable[..., float],
    grid: Mapping[str, Sequence[Any]],
    trials: int = 1,
    base_seed: int = 0,
    seed_param: str = "seed",
) -> SweepResult:
    """Evaluate ``trial_fn`` over the cartesian grid with replication.

    Parameters
    ----------
    trial_fn:
        Called as ``trial_fn(**params, seed=...)``; must return a float
        observable (NaN replicates are excluded from aggregation).
    grid:
        Mapping of parameter name -> values to sweep.
    trials:
        Replicates per point; replicate ``k`` receives
        ``base_seed + 1000*k`` as its seed.
    seed_param:
        Name of the seed keyword (set to None-like '' to disable seeding
        for deterministic trial functions).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if not grid:
        raise ValueError("grid must have at least one axis")
    axes = list(grid)
    result = SweepResult(axes=axes)
    for combo in itertools.product(*(grid[axis] for axis in axes)):
        params = dict(zip(axes, combo))
        values = []
        for k in range(trials):
            kwargs = dict(params)
            if seed_param:
                kwargs[seed_param] = base_seed + 1000 * k
            values.append(float(trial_fn(**kwargs)))
        mean, stdev = aggregate_trials(values)
        result.points.append(
            SweepPoint(params=params, values=values, mean=mean, stdev=stdev)
        )
    return result
