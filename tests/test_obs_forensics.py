"""Tests for repro.obs.forensics: per-transaction causal explanations.

The acceptance gate is attribution: for a seeded identifier collision,
``repro obs why`` must name the correct partner transaction and the
window (or interval) where the identifiers clashed.
"""

import pytest

from repro.flow.shard import simulate_traced
from repro.flow.streams import massive_scenario
from repro.obs.envelope import TraceWriter, read_trace
from repro.obs.forensics import (
    ForensicsError,
    TraceForensics,
    parse_txn_id,
    why,
)
from repro.obs.record import record_montecarlo


def test_parse_txn_id():
    assert parse_txn_id("3:14") == (3, 14)
    with pytest.raises(ForensicsError):
        parse_txn_id("3")
    with pytest.raises(ForensicsError):
        parse_txn_id("a:b")


# ----------------------------------------------------------------------
# Pinned synthetic flow trace: the attribution is exactly known
# ----------------------------------------------------------------------
def _write_flow_trace(path):
    """Window 2 holds three txns; 2:0 and 2:2 share identifier 9."""
    with TraceWriter(path, meta={"scenario": "flow"}) as writer:
        writer.emit(20.0, "flow.window", window=2, fidelity="frame",
                    arrival_rate=0.3, density=6.0)
        writer.emit(20.5, "flow.txn", window=2, identifier=9, collided=True)
        writer.emit(21.0, "flow.txn", window=2, identifier=5, collided=False)
        writer.emit(21.5, "flow.txn", window=2, identifier=9, collided=True)
        writer.emit(30.0, "flow.outcome", window=2, transactions=3,
                    collisions=2)
        writer.emit(30.0, "flow.window", window=3, fidelity="flow",
                    arrival_rate=0.1, density=1.0)


class TestFlowAttribution:
    def test_partner_and_window_are_named(self, tmp_path):
        path = tmp_path / "flow.jsonl"
        _write_flow_trace(path)
        forensics = TraceForensics.from_trace(path)

        lost = forensics.lost()
        assert lost == ["2:0", "2:2"]
        first = forensics.lifecycle("2:0")
        assert first.identifier == 9
        assert first.partners == ["2:2"]
        assert forensics.lifecycle("2:2").partners == ["2:0"]
        # The bystander that delivered with a different identifier has
        # no partners and is not blamed.
        assert forensics.lifecycle("2:1").partners == []

        text = forensics.explain("2:0")
        assert "outcome: LOST" in text
        assert "identifier 0x9 (9)" in text
        assert "in window 2" in text
        assert "transaction 2:2" in text
        assert "2:1" not in text  # bystanders never appear in the chain

    def test_flow_fidelity_window_is_explained(self, tmp_path):
        path = tmp_path / "flow.jsonl"
        _write_flow_trace(path)
        forensics = TraceForensics.from_trace(path)
        with pytest.raises(ForensicsError, match="flow fidelity"):
            forensics.lifecycle("3:0")

    def test_unknown_txn_is_an_error(self, tmp_path):
        path = tmp_path / "flow.jsonl"
        _write_flow_trace(path)
        with pytest.raises(ForensicsError, match="no transaction"):
            why(path, "9:9")


# ----------------------------------------------------------------------
# Seeded end-to-end flow run: attribution agrees with the trace
# ----------------------------------------------------------------------
def test_seeded_flow_collision_attribution(tmp_path):
    scenario = massive_scenario(
        n_nodes=200, id_bits=5, horizon=40.0, window=10.0,
        packets_per_node=0.4,
    )
    trace = tmp_path / "run.jsonl"
    result = simulate_traced(scenario, 11, trace, fidelity="frame")
    assert result.collisions > 0

    forensics = TraceForensics.from_trace(trace)
    lost = forensics.lost()
    assert len(lost) == result.collisions

    # Index the raw records independently of the reconstruction.
    txns = [r for r in read_trace(trace) if r.category == "flow.txn"]
    ordinals = {}
    raw = {}
    for record in txns:
        window = record["window"]
        ordinal = ordinals.get(window, 0)
        ordinals[window] = ordinal + 1
        raw[f"{window}:{ordinal}"] = record

    for txn_id in lost[:25]:
        txn = forensics.lifecycle(txn_id)
        assert raw[txn_id]["collided"] is True
        assert txn.partners, f"{txn_id} lost without a partner"
        for partner_id in txn.partners:
            partner = raw[partner_id]
            # Correct partner: same window, same ephemeral identifier,
            # itself flagged by the frame replay.
            assert partner["window"] == txn.major
            assert partner["identifier"] == txn.identifier
            assert partner["collided"] is True


# ----------------------------------------------------------------------
# Monte Carlo traces: interval-overlap attribution
# ----------------------------------------------------------------------
def test_montecarlo_attribution(tmp_path):
    trace = tmp_path / "mc.jsonl"
    record_montecarlo(trace, id_bits=4, rate=4.0, horizon=40.0, seed=1,
                      shards=2)
    forensics = TraceForensics.from_trace(trace)
    lost = forensics.lost()
    assert lost

    begins = {}
    for record in read_trace(trace):
        if record.category == "txn.begin":
            begins[(record["segment"], record["owner"])] = record
    for txn_id in lost[:10]:
        txn = forensics.lifecycle(txn_id)
        assert txn.partners, f"{txn_id} lost without a partner"
        for partner_id in txn.partners:
            partner = forensics.lifecycle(partner_id)
            assert partner.identifier == txn.identifier
            # Intervals overlap (half-open).
            assert partner.begin < (txn.end or float("inf"))
            assert txn.begin < (partner.end or float("inf"))
        assert begins[(txn.major, txn.minor)]["id"] == txn.identifier

    text = forensics.explain(lost[0])
    assert "outcome: LOST" in text
    assert "overlapping interval" in text


def test_end_at_begin_does_not_contend(tmp_path):
    path = tmp_path / "mc.jsonl"
    with TraceWriter(path, meta={"scenario": "montecarlo"}) as writer:
        writer.emit(0.0, "txn.begin", segment=0, owner=0, id=7)
        writer.emit(1.0, "txn.end", segment=0, owner=0)
        writer.emit(1.0, "txn.begin", segment=0, owner=1, id=7)
        writer.emit(2.0, "txn.end", segment=0, owner=1)
    forensics = TraceForensics.from_trace(path)
    assert forensics.lifecycle("0:0").partners == []
    assert forensics.lifecycle("0:1").partners == []


# ----------------------------------------------------------------------
# Frame traces: delivery delay
# ----------------------------------------------------------------------
def test_collision_trace_delay(tmp_path):
    path = tmp_path / "col.jsonl"
    with TraceWriter(path, meta={"scenario": "collision"}) as writer:
        writer.emit(1.0, "frame.tx", origin=4, seq=0, bits=40)
        writer.emit(1.25, "frame.rx", origin=4, seq=0, receiver=0, bits=40)
        writer.emit(2.0, "frame.tx", origin=5, seq=0, bits=40)
        writer.emit(2.5, "frame.drop", origin=5, seq=0, receiver=0,
                    reason="channel")
    forensics = TraceForensics.from_trace(path)
    delivered = forensics.lifecycle("4:0")
    assert delivered.fate == "delivered"
    assert "delay 0.250000s" in forensics.explain("4:0")
    dropped = forensics.lifecycle("5:0")
    assert dropped.fate == "lost"
    assert "channel" in forensics.explain("5:0")


def test_unsupported_scenario_rejected(tmp_path):
    path = tmp_path / "other.jsonl"
    with TraceWriter(path, meta={"scenario": "mystery"}) as writer:
        writer.emit(0.0, "x.y", a=1)
    with pytest.raises(ForensicsError, match="mystery"):
        TraceForensics.from_trace(path)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestWhyCli:
    def test_explains_and_lists(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "flow.jsonl"
        _write_flow_trace(path)
        assert main(["obs", "why", "2:0", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "transaction 2:2" in out
        assert main(["obs", "why", "--trace", str(path), "--lost"]) == 0
        assert "2:2" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "flow.jsonl"
        _write_flow_trace(path)
        assert main(["obs", "why", "2:2", "--trace", str(path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["partners"] == ["2:0"]
        assert payload["fate"] == "lost"

    def test_errors_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "flow.jsonl"
        _write_flow_trace(path)
        assert main(["obs", "why", "9:9", "--trace", str(path)]) == 2
        assert main(["obs", "why", "bogus", "--trace", str(path)]) == 2
        missing = tmp_path / "absent.jsonl"
        assert main(["obs", "why", "2:0", "--trace", str(missing)]) == 2
        # A txn id (or --lost) is required.
        assert main(["obs", "why", "--trace", str(path)]) == 2
        capsys.readouterr()
