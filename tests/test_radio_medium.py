"""Unit tests for the broadcast medium."""

import random

import pytest

from repro.radio.channel import BernoulliChannel
from repro.radio.frame import Frame
from repro.radio.mac import AlohaMac
from repro.radio.medium import BroadcastMedium
from repro.radio.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.topology.graphs import ExplicitGraph, FullMesh, Line


def build(topology, **kwargs):
    sim = Simulator()
    medium = BroadcastMedium(sim, topology, **kwargs)
    return sim, medium


class TestDelivery:
    def test_broadcast_reaches_all_neighbors(self):
        sim, medium = build(FullMesh(range(4)))
        radios = {i: Radio(medium, i) for i in range(4)}
        received = {i: [] for i in range(4)}
        for i, radio in radios.items():
            radio.set_receive_handler(lambda f, i=i: received[i].append(f))
        radios[0].send(Frame(payload=b"hello", origin=0))
        sim.run()
        assert received[0] == []  # no loopback
        assert all(len(received[i]) == 1 for i in (1, 2, 3))

    def test_delivery_respects_topology(self):
        sim, medium = build(Line(3))
        radios = {i: Radio(medium, i) for i in range(3)}
        received = {i: [] for i in range(3)}
        for i, radio in radios.items():
            radio.set_receive_handler(lambda f, i=i: received[i].append(f))
        radios[0].send(Frame(payload=b"x", origin=0))
        sim.run()
        assert len(received[1]) == 1
        assert received[2] == []

    def test_airtime_is_bits_over_bitrate(self):
        sim, medium = build(FullMesh(range(2)), bitrate=1000.0)
        frame = Frame(payload=b"\x00" * 10, origin=0)  # 80 bits
        assert medium.airtime(frame) == pytest.approx(0.08)

    def test_delivery_happens_at_end_of_frame(self):
        sim, medium = build(FullMesh(range(2)), bitrate=1000.0)
        Radio(medium, 0)
        rx = Radio(medium, 1)
        arrival = []
        rx.set_receive_handler(lambda f: arrival.append(sim.now))
        medium.radio_for(0).send(Frame(payload=b"\x00" * 10, origin=0))
        sim.run()
        assert arrival == [pytest.approx(0.08)]

    def test_node_without_radio_counts_out_of_range(self):
        sim, medium = build(FullMesh(range(3)))
        Radio(medium, 0)
        Radio(medium, 1)  # node 2 has no radio attached
        medium.radio_for(0).send(Frame(payload=b"x", origin=0))
        sim.run()
        assert medium.stats.out_of_range == 1
        assert medium.stats.deliveries == 1

    def test_detach_stops_delivery(self):
        sim, medium = build(FullMesh(range(2)))
        tx = Radio(medium, 0)
        rx = Radio(medium, 1)
        got = []
        rx.set_receive_handler(got.append)
        rx.shutdown()
        tx.send(Frame(payload=b"x", origin=0))
        sim.run()
        assert got == []

    def test_audience_snapshot_at_transmit_time(self):
        """A node joining mid-flight must not hear a frame already in the air."""
        topo = FullMesh(range(2))
        sim, medium = build(topo, bitrate=100.0)
        tx = Radio(medium, 0)
        Radio(medium, 1)
        tx.send(Frame(payload=b"\x00" * 10, origin=0))  # 0.8 s airtime
        # Node 2 joins while the frame is flying.
        def join():
            topo.add_node(2)
            Radio(medium, 2)
        sim.schedule(0.4, join)
        sim.run()
        assert medium.stats.deliveries == 1  # only node 1


class TestRfCollisions:
    def test_overlapping_frames_corrupt_each_other(self):
        sim, medium = build(FullMesh(range(3)), bitrate=100.0, rf_collisions=True)
        a, b = Radio(medium, 0), Radio(medium, 1)
        rx = Radio(medium, 2)
        got = []
        rx.set_receive_handler(got.append)
        a.send(Frame(payload=b"\x00" * 10, origin=0))
        b.send(Frame(payload=b"\x00" * 10, origin=1))
        sim.run()
        assert got == []
        assert medium.stats.rf_collision_drops >= 2

    def test_rf_collisions_disabled_delivers_both(self):
        sim, medium = build(FullMesh(range(3)), bitrate=100.0, rf_collisions=False)
        a, b = Radio(medium, 0), Radio(medium, 1)
        rx = Radio(medium, 2)
        got = []
        rx.set_receive_handler(got.append)
        a.send(Frame(payload=b"\x00" * 10, origin=0))
        b.send(Frame(payload=b"\x00" * 10, origin=1))
        sim.run()
        assert len(got) == 2

    def test_hidden_terminal_collision(self):
        """Senders out of each other's range still collide at a shared receiver."""
        topo = ExplicitGraph(edges=[(0, 2), (1, 2)])  # 0 and 1 hidden
        sim, medium = build(topo, bitrate=100.0, rf_collisions=True)
        a, b = Radio(medium, 0), Radio(medium, 1)
        rx = Radio(medium, 2)
        got = []
        rx.set_receive_handler(got.append)
        a.send(Frame(payload=b"\x00" * 10, origin=0))
        b.send(Frame(payload=b"\x00" * 10, origin=1))
        sim.run()
        assert got == []

    def test_non_overlapping_frames_both_deliver(self):
        sim, medium = build(FullMesh(range(3)), bitrate=100.0, rf_collisions=True)
        a, b = Radio(medium, 0), Radio(medium, 1)
        rx = Radio(medium, 2)
        got = []
        rx.set_receive_handler(got.append)
        a.send(Frame(payload=b"\x00" * 10, origin=0))
        sim.schedule(2.0, b.send, Frame(payload=b"\x00" * 10, origin=1))
        sim.run()
        assert len(got) == 2

    def test_half_duplex_transmitter_misses_frames(self):
        """A radio transmitting cannot simultaneously receive."""
        sim, medium = build(FullMesh(range(2)), bitrate=100.0, rf_collisions=True)
        a, b = Radio(medium, 0), Radio(medium, 1)
        got_a, got_b = [], []
        a.set_receive_handler(got_a.append)
        b.set_receive_handler(got_b.append)
        a.send(Frame(payload=b"\x00" * 10, origin=0))
        b.send(Frame(payload=b"\x00" * 10, origin=1))
        sim.run()
        assert got_a == [] and got_b == []


class TestChannels:
    def test_total_loss_channel_drops_all(self):
        sim, medium = build(
            FullMesh(range(2)),
            channel_factory=lambda s, r: BernoulliChannel(1.0),
            rng=random.Random(0),
        )
        tx, rx = Radio(medium, 0), Radio(medium, 1)
        got = []
        rx.set_receive_handler(got.append)
        tx.send(Frame(payload=b"x", origin=0))
        sim.run()
        assert got == []
        assert medium.stats.channel_drops == 1

    def test_channel_instances_cached_per_link(self):
        created = []

        def factory(s, r):
            chan = BernoulliChannel(0.0)
            created.append((s, r))
            return chan

        sim, medium = build(FullMesh(range(2)), channel_factory=factory)
        tx, rx = Radio(medium, 0), Radio(medium, 1)
        rx.set_receive_handler(lambda f: None)
        tx.send(Frame(payload=b"x", origin=0))
        sim.run()
        tx.send(Frame(payload=b"y", origin=0))
        sim.run()
        assert created == [(0, 1)]


class TestCarrierSense:
    def test_busy_during_neighbor_transmission(self):
        sim, medium = build(FullMesh(range(2)), bitrate=100.0)
        tx = Radio(medium, 0)
        Radio(medium, 1)
        tx.send(Frame(payload=b"\x00" * 10, origin=0))  # 0.8 s
        states = []
        sim.schedule(0.4, lambda: states.append(medium.busy_at(1)))
        sim.schedule(1.5, lambda: states.append(medium.busy_at(1)))
        sim.run()
        assert states == [True, False]

    def test_not_busy_when_transmitter_out_of_range(self):
        topo = ExplicitGraph(edges=[(0, 1)], nodes=[2])
        sim, medium = build(topo, bitrate=100.0)
        tx = Radio(medium, 0)
        Radio(medium, 1)
        Radio(medium, 2)
        tx.send(Frame(payload=b"\x00" * 10, origin=0))
        states = []
        sim.schedule(0.4, lambda: states.append(medium.busy_at(2)))
        sim.run()
        assert states == [False]


class TestTracing:
    def test_tx_rx_records(self):
        recorder = TraceRecorder()
        sim, medium = build(FullMesh(range(2)), recorder=recorder)
        tx, rx = Radio(medium, 0), Radio(medium, 1)
        rx.set_receive_handler(lambda f: None)
        tx.send(Frame(payload=b"x", origin=0))
        sim.run()
        assert recorder.count("frame.tx") == 1
        assert recorder.count("frame.rx") == 1
