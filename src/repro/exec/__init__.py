"""repro.exec — deterministic parallel trial execution.

The execution layer beneath :mod:`repro.experiments`: it turns lists of
independent ``(params, seed)`` trials into results — across forked
worker processes, through a content-addressed on-disk cache, with
structured failure records and run telemetry — while guaranteeing that
``workers=1`` and ``workers=N`` produce byte-identical results.

See ``docs/parallel.md`` for the architecture, the determinism
contract, and the cache key specification.

* :class:`TrialRunner` / :class:`TrialSpec` — sharded execution
  (:mod:`repro.exec.runner`);
* :class:`ResultCache` — content-addressed JSON result store
  (:mod:`repro.exec.cache`);
* :class:`RunTelemetry` — wall time, per-trial timings, cache traffic,
  worker utilization (:mod:`repro.exec.telemetry`);
* :func:`derive_trial_seed` / :func:`trial_key` — canonical trial
  identities (:mod:`repro.exec.keys`).
"""

from .cache import CacheStats, ResultCache
from .keys import (
    canonical_point,
    canonical_value,
    derive_trial_seed,
    segment_seed,
    trial_key,
)
from .pool import NotPoolable, WorkerPool, register_pool_dataclass
from .runner import (
    ExecError,
    TrialFailure,
    TrialOutcome,
    TrialRunner,
    TrialSpec,
    TrialTimeout,
)
from .telemetry import RunTelemetry, TrialRecord

__all__ = [
    "CacheStats",
    "ExecError",
    "NotPoolable",
    "ResultCache",
    "RunTelemetry",
    "TrialFailure",
    "TrialOutcome",
    "TrialRecord",
    "TrialRunner",
    "TrialSpec",
    "TrialTimeout",
    "WorkerPool",
    "canonical_point",
    "canonical_value",
    "derive_trial_seed",
    "register_pool_dataclass",
    "segment_seed",
    "trial_key",
]
