"""Unit tests for churn and mobility."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.topology.dynamics import ChurnEvent, ChurnProcess, RandomWaypoint
from repro.topology.graphs import DiskGraph, FullMesh


class TestChurnEvent:
    def test_valid_kinds(self):
        ChurnEvent(0.0, "join", 1)
        ChurnEvent(0.0, "leave", 1)
        with pytest.raises(ValueError):
            ChurnEvent(0.0, "explode", 1)


class TestChurnProcess:
    def test_joins_grow_the_network(self):
        sim = Simulator()
        topo = FullMesh(range(3))
        churn = ChurnProcess(
            sim, topo, join_rate=1.0, rng=random.Random(1)
        )
        churn.start()
        sim.run(until=20.0)
        assert len(topo) > 3
        assert all(e.kind == "join" for e in churn.history)

    def test_leaves_shrink_the_network(self):
        sim = Simulator()
        topo = FullMesh(range(10))
        churn = ChurnProcess(sim, topo, leave_rate=1.0, rng=random.Random(2))
        churn.start()
        sim.run(until=50.0)
        assert len(topo) < 10

    def test_join_ids_are_fresh(self):
        sim = Simulator()
        topo = FullMesh(range(5))
        churn = ChurnProcess(sim, topo, join_rate=2.0, rng=random.Random(3))
        churn.start()
        sim.run(until=10.0)
        joined = [e.node for e in churn.history if e.kind == "join"]
        assert all(n >= 5 for n in joined)
        assert len(set(joined)) == len(joined)

    def test_on_change_callback_fires(self):
        sim = Simulator()
        topo = FullMesh(range(2))
        seen = []
        churn = ChurnProcess(
            sim, topo, join_rate=1.0, rng=random.Random(4), on_change=seen.append
        )
        churn.start()
        sim.run(until=10.0)
        assert len(seen) == len(churn.history) > 0

    def test_stop_halts_churn(self):
        sim = Simulator()
        topo = FullMesh(range(2))
        churn = ChurnProcess(sim, topo, join_rate=5.0, rng=random.Random(5))
        churn.start()
        sim.run(until=2.0)
        count = len(churn.history)
        churn.stop()
        sim.run(until=20.0)
        assert len(churn.history) == count

    def test_disk_graph_joins_get_positions(self):
        sim = Simulator()
        graph = DiskGraph.random(3, 0.5, rng=random.Random(6))
        churn = ChurnProcess(sim, graph, join_rate=1.0, rng=random.Random(7))
        churn.start()
        sim.run(until=10.0)
        for event in churn.history:
            if event.kind == "join":
                x, y = graph.position(event.node)
                assert 0 <= x <= 1 and 0 <= y <= 1

    def test_custom_placer(self):
        sim = Simulator()
        graph = DiskGraph(radio_range=0.5)
        graph.place(0, 0.5, 0.5)
        churn = ChurnProcess(
            sim,
            graph,
            join_rate=1.0,
            rng=random.Random(8),
            placer=lambda node: (0.25, 0.75),
        )
        churn.start()
        sim.run(until=5.0)
        joins = [e for e in churn.history if e.kind == "join"]
        assert joins
        assert graph.position(joins[0].node) == (0.25, 0.75)

    def test_events_in_window(self):
        sim = Simulator()
        topo = FullMesh(range(2))
        churn = ChurnProcess(sim, topo, join_rate=2.0, rng=random.Random(9))
        churn.start()
        sim.run(until=10.0)
        window = churn.events_in(2.0, 5.0)
        assert all(2.0 <= e.time < 5.0 for e in window)

    def test_negative_rates_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ChurnProcess(sim, FullMesh(), leave_rate=-1.0)

    def test_zero_rates_mean_no_churn(self):
        sim = Simulator()
        topo = FullMesh(range(4))
        churn = ChurnProcess(sim, topo)
        churn.start()
        sim.run(until=100.0)
        assert churn.history == []
        assert len(topo) == 4


class TestRandomWaypoint:
    def _graph(self):
        g = DiskGraph(radio_range=0.3, side=1.0)
        for i in range(5):
            g.place(i, 0.5, 0.5)
        return g

    def test_nodes_move(self):
        sim = Simulator()
        g = self._graph()
        before = {i: g.position(i) for i in g.nodes}
        walker = RandomWaypoint(sim, g, speed=0.2, step=0.5, rng=random.Random(1))
        walker.start()
        sim.run(until=5.0)
        moved = [i for i in g.nodes if g.position(i) != before[i]]
        assert moved

    def test_positions_stay_in_bounds(self):
        sim = Simulator()
        g = self._graph()
        walker = RandomWaypoint(sim, g, speed=0.5, step=0.25, rng=random.Random(2))
        walker.start()
        sim.run(until=20.0)
        for i in g.nodes:
            x, y = g.position(i)
            assert -1e-9 <= x <= 1.0 + 1e-9
            assert -1e-9 <= y <= 1.0 + 1e-9

    def test_zero_speed_means_static(self):
        sim = Simulator()
        g = self._graph()
        before = {i: g.position(i) for i in g.nodes}
        walker = RandomWaypoint(sim, g, speed=0.0, step=1.0, rng=random.Random(3))
        walker.start()
        sim.run(until=10.0)
        assert all(g.position(i) == before[i] for i in g.nodes)

    def test_stop_freezes_movement(self):
        sim = Simulator()
        g = self._graph()
        walker = RandomWaypoint(sim, g, speed=0.3, step=0.5, rng=random.Random(4))
        walker.start()
        sim.run(until=2.0)
        walker.stop()
        frozen = {i: g.position(i) for i in g.nodes}
        sim.run(until=10.0)
        assert all(g.position(i) == frozen[i] for i in g.nodes)

    def test_movement_per_step_bounded_by_speed(self):
        sim = Simulator()
        g = self._graph()
        speed, step = 0.2, 0.5
        walker = RandomWaypoint(sim, g, speed=speed, step=step, rng=random.Random(5))
        walker.start()
        positions = {i: [g.position(i)] for i in g.nodes}

        def sample():
            for i in g.nodes:
                positions[i].append(g.position(i))
            sim.schedule(step, sample)

        sim.schedule(step, sample)
        sim.run(until=5.0)
        import math

        for trail in positions.values():
            for (x0, y0), (x1, y1) in zip(trail, trail[1:]):
                assert math.hypot(x1 - x0, y1 - y0) <= speed * step + 1e-9

    def test_invalid_parameters(self):
        sim = Simulator()
        g = self._graph()
        with pytest.raises(ValueError):
            RandomWaypoint(sim, g, speed=-1.0)
        with pytest.raises(ValueError):
            RandomWaypoint(sim, g, speed=1.0, step=0.0)
